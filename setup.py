"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) are unavailable.  This
thin ``setup.py`` lets ``pip install -e . --no-use-pep517`` (or
``python setup.py develop``) perform a legacy editable install; all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
