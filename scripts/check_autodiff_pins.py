"""Assert quick-preset experiment results are bit-for-bit identical to the pins.

The pins in ``results/autodiff_pins.json`` were captured immediately before
the autodiff core was rewritten around the VJP primitive registry.  Training
numerics must not move at all — every float in the quick table3/figure4 rows
is canonicalised via ``float.hex`` (lossless) and the rows hashed, so a
single ULP of drift anywhere in the training pipeline fails this check.

Usage::

    PYTHONPATH=src python scripts/check_autodiff_pins.py            # cora only
    PYTHONPATH=src python scripts/check_autodiff_pins.py --full     # all datasets
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

PINS_PATH = Path(__file__).resolve().parent.parent / "results" / "autodiff_pins.json"


def canonical(rows) -> str:
    def encode(value):
        return float.hex(value) if isinstance(value, float) else value

    return json.dumps(
        [{key: encode(value) for key, value in sorted(row.items())} for row in rows],
        sort_keys=True,
    )


def row_hash(rows) -> str:
    return hashlib.sha256(canonical(rows).encode()).hexdigest()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="check all quick-preset datasets instead of cora only",
    )
    options = parser.parse_args()

    from repro.experiments.figures import figure4_attack_auc
    from repro.experiments.tables import table3_accuracy_bias

    pins = json.loads(PINS_PATH.read_text())
    datasets = None if options.full else ["cora"]
    suffix = "all_datasets" if options.full else "cora"

    table3 = table3_accuracy_bias("quick", seed=pins["seed"], datasets=datasets)
    figure4 = figure4_attack_auc("quick", seed=pins["seed"], datasets=datasets)

    failures = []
    for name, rows in (("table3", table3.rows), ("figure4", figure4.rows)):
        digest = row_hash(rows)
        pinned = pins[f"{name}_{suffix}"]
        status = "OK" if digest == pinned else "MISMATCH"
        print(f"{name} ({suffix}): {status} {digest}")
        if digest != pinned:
            failures.append(name)

    if failures:
        print(
            f"training numerics drifted from the pre-rewrite pin: {failures}. "
            "If the change is intentional, re-pin results/autodiff_pins.json.",
            file=sys.stderr,
        )
        return 1
    print("autodiff pins OK: results are bit-for-bit identical to the pre-rewrite tape")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
