"""Continuous perf-regression tracking: run the key benchmark legs, append
structured results to ``BENCH_history.json``, and gate against pinned
baselines.

Four legs, each a scaled-down but shape-faithful version of a benchmark in
``benchmarks/`` (small enough to run on every CI push, large enough that a
real regression in the measured subsystem moves the number):

* ``serving``   — warm-cache and cold-miss requests/sec through the
  ``InferenceEngine`` (mirrors ``test_serving_throughput.py``);
* ``cluster``   — cold-miss requests/sec through a 2-shard process
  ``ShardRouter`` (mirrors ``test_cluster_scaling.py``);
* ``minibatch`` — one neighbour-sampled mini-batch training epoch
  (mirrors ``test_minibatch_scaling.py``);
* ``autodiff``  — tape-recording forward/backward step time and the
  grad-enabled/no-grad forward overhead ratio
  (mirrors ``test_autodiff_overhead.py``).

Each run appends one entry — environment fingerprint plus per-leg metrics —
to the history file, so ``BENCH_history.json`` accumulates a machine-readable
perf timeline across commits.

Usage::

    PYTHONPATH=src python scripts/bench_history.py                # run + append
    PYTHONPATH=src python scripts/bench_history.py --check        # also gate
    PYTHONPATH=src python scripts/bench_history.py --legs serving,autodiff

``--check`` compares the fresh measurements against
``benchmarks/bench_baselines.json``.  Each baseline pins a direction
(throughputs must not drop, times must not grow) and a per-metric tolerance
band; a measurement worse than ``baseline × (1 ± tolerance)`` exits 1.  The
pinned values are deliberately conservative (well below the measured numbers
on the pinning machine) so the gate catches real regressions — a kernel
losing its vectorisation, a cache stopping to hit — without flaking on CI
scheduling noise.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

HISTORY_PATH = REPO_ROOT / "BENCH_history.json"
BASELINES_PATH = REPO_ROOT / "benchmarks" / "bench_baselines.json"

NUM_NODES = 5_000
NUM_FEATURES = 16
NUM_CLASSES = 4
HIDDEN = 16
FANOUTS = (10, 10)


def _graph(average_degree: float = 10.0, seed: int = 0):
    from repro.datasets.synthetic import generate_scaling_graph

    return generate_scaling_graph(
        NUM_NODES,
        num_classes=NUM_CLASSES,
        average_degree=average_degree,
        num_features=NUM_FEATURES,
        seed=seed,
    )


def _model():
    from repro.gnn.models import build_model

    model = build_model(
        "gcn",
        in_features=NUM_FEATURES,
        num_classes=NUM_CLASSES,
        hidden_features=HIDDEN,
        rng=0,
    )
    model.eval()
    return model


# --------------------------------------------------------------------------- #
# Legs — each returns a flat {metric: float} dict.  Repeats keep the best
# (max throughput / min time): the best run is the least-scheduling-noise
# estimate of what the code can do, which is what a regression gate wants.
# --------------------------------------------------------------------------- #
def leg_serving(repeats: int) -> dict:
    from repro.serve.engine import InferenceEngine, ServeConfig
    from repro.serve.session import GraphSession
    from repro.sparse.backend import use_backend

    csr, features, _ = _graph()
    model = _model()
    working_set, warm_requests = 256, 2_000
    best: dict = {}
    with use_backend("sparse"):
        for _ in range(repeats):
            session = GraphSession(csr, features)
            engine = InferenceEngine(model, session, ServeConfig(fanouts=FANOUTS))
            rng = np.random.default_rng(1)
            working = rng.choice(NUM_NODES, size=working_set, replace=False)

            start = time.perf_counter()
            engine.predict_logits(working)  # prime: all-miss cold pass
            cold_rps = working_set / (time.perf_counter() - start)

            stream = rng.choice(working, size=warm_requests, replace=True)
            start = time.perf_counter()
            for node in stream:
                engine.predict_logits(int(node))
            warm_rps = warm_requests / (time.perf_counter() - start)

            best["cold_rps"] = max(best.get("cold_rps", 0.0), cold_rps)
            best["warm_rps"] = max(best.get("warm_rps", 0.0), warm_rps)
    return best


def leg_cluster(repeats: int) -> dict:
    from repro.cluster import ShardRouter
    from repro.serve.engine import ServeConfig
    from repro.serve.session import GraphSession
    from repro.sparse.backend import use_backend

    csr, features, _ = _graph()
    model = _model()
    requests, batch = 512, 128
    rng = np.random.default_rng(1)
    stream = rng.choice(NUM_NODES, size=requests, replace=False)
    batches = [stream[i : i + batch] for i in range(0, requests, batch)]
    best_rps = 0.0
    with use_backend("sparse"):
        # cache=False keeps every repeat on the miss path — otherwise the
        # second pass over the same stream measures the worker logit caches,
        # not the compute fan-out this leg exists to track.
        router = ShardRouter(
            model,
            GraphSession(csr, features),
            num_shards=2,
            strategy="hash",
            config=ServeConfig(fanouts=FANOUTS, cache=False),
            workers="process",
        )
        with router:
            router.predict_logits(batches[0][:8])  # handshake warm-up
            for _ in range(repeats):
                start = time.perf_counter()
                for nodes in batches:
                    router.predict_logits(nodes)
                best_rps = max(
                    best_rps, requests / (time.perf_counter() - start)
                )
    return {"cold_rps": best_rps}


def leg_minibatch(repeats: int) -> dict:
    from repro.gnn.layers import GCNConv
    from repro.gnn.sampling import NeighborSampler
    from repro.nn import functional as F
    from repro.nn.losses import cross_entropy
    from repro.nn.optim import Adam
    from repro.nn.tensor import Tensor
    from repro.utils.rng import ensure_rng, spawn_children

    csr, features, labels = _graph(average_degree=20.0)
    train_idx = np.sort(
        np.random.default_rng(1).choice(NUM_NODES, 512, replace=False)
    ).astype(np.int64)
    fanouts, batch_size = (5, 5), 128

    best_seconds = float("inf")
    for _ in range(repeats):
        rng0, rng1 = spawn_children(ensure_rng(0), 2)
        conv0 = GCNConv(NUM_FEATURES, HIDDEN, rng=rng0)
        conv1 = GCNConv(HIDDEN, NUM_CLASSES, rng=rng1)
        optimizer = Adam(conv0.parameters() + conv1.parameters(), lr=0.01)
        sampler = NeighborSampler(csr, seed=0)
        start = time.perf_counter()
        schedule = sampler.epoch_schedule(train_idx, batch_size, epoch=0)
        for batch_index, seeds in enumerate(schedule):
            optimizer.zero_grad()
            blocks = sampler.sample_blocks(
                seeds, fanouts, epoch=0, batch_index=batch_index
            )
            x = Tensor(features[blocks[0].src_nodes])
            hidden = F.relu(conv0(x, blocks[0].operator("gcn")))
            logits = conv1(hidden, blocks[1].operator("gcn"))
            loss = cross_entropy(logits, labels[seeds])
            loss.backward()
            optimizer.step()
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return {"epoch_seconds": best_seconds}


def leg_autodiff(repeats: int) -> dict:
    from repro.nn import functional as F
    from repro.nn.losses import cross_entropy
    from repro.nn.tensor import Tensor, no_grad

    rng = np.random.default_rng(0)
    x = rng.normal(size=(4_096, 64))
    w0 = rng.normal(size=(64, 64)) * 0.1
    w1 = rng.normal(size=(64, 8)) * 0.1
    labels = rng.integers(0, 8, size=4_096)

    def forward(xt, w0t, w1t):
        return F.relu(xt @ w0t) @ w1t

    best_step, best_fwd, best_nograd = float("inf"), float("inf"), float("inf")
    for _ in range(repeats):
        xt = Tensor(x)
        w0t, w1t = Tensor(w0, requires_grad=True), Tensor(w1, requires_grad=True)

        start = time.perf_counter()
        loss = cross_entropy(forward(xt, w0t, w1t), labels)
        best_fwd = min(best_fwd, time.perf_counter() - start)
        start = time.perf_counter()
        loss.backward()
        best_step = min(best_step, time.perf_counter() - start)

        with no_grad():
            start = time.perf_counter()
            cross_entropy(forward(xt, w0t, w1t), labels)
            best_nograd = min(best_nograd, time.perf_counter() - start)
    return {
        "backward_ms": best_step * 1e3,
        "forward_ms": best_fwd * 1e3,
        # Tape-recording forward vs no-grad forward: how much the autodiff
        # bookkeeping costs on top of the raw kernels.
        "record_overhead": best_fwd / best_nograd,
    }


LEGS = {
    "serving": leg_serving,
    "cluster": leg_cluster,
    "minibatch": leg_minibatch,
    "autodiff": leg_autodiff,
}


# --------------------------------------------------------------------------- #
# History + gating
# --------------------------------------------------------------------------- #
def env_fingerprint() -> dict:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip()
    except Exception:
        rev = ""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cores": cores,
        "git": rev or None,
    }


def append_history(entry: dict, path: Path) -> int:
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except json.JSONDecodeError:
            print(f"warning: {path} was unreadable; starting a fresh history")
    if not isinstance(history, list):
        history = []
    history.append(entry)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return len(history)


def check_against_baselines(legs: dict, baselines: list) -> list:
    """Violation messages (empty = pass) for the pinned regression gates."""
    violations = []
    for pin in baselines:
        leg, metric = pin["leg"], pin["metric"]
        measured = legs.get(leg, {}).get(metric)
        if measured is None:
            if leg in legs:
                violations.append(f"{leg}.{metric}: metric missing from run")
            continue  # leg not selected this run: not a violation
        baseline, tolerance = float(pin["baseline"]), float(pin["tolerance"])
        if pin["kind"] == "higher_is_better":
            floor = baseline * (1.0 - tolerance)
            if measured < floor:
                violations.append(
                    f"{leg}.{metric}: {measured:.3f} < {floor:.3f} "
                    f"(baseline {baseline:.3f} − {tolerance:.0%})"
                )
        else:
            ceiling = baseline * (1.0 + tolerance)
            if measured > ceiling:
                violations.append(
                    f"{leg}.{metric}: {measured:.3f} > {ceiling:.3f} "
                    f"(baseline {baseline:.3f} + {tolerance:.0%})"
                )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--legs",
        default=",".join(LEGS),
        help=f"comma-separated subset of: {', '.join(LEGS)}",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--out", default=str(HISTORY_PATH), help="history file")
    parser.add_argument(
        "--baselines", default=str(BASELINES_PATH), help="pinned baselines file"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when a metric regresses past its pinned tolerance band",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="measure (and --check) without touching the history file",
    )
    args = parser.parse_args(argv)

    selected = [name.strip() for name in args.legs.split(",") if name.strip()]
    unknown = [name for name in selected if name not in LEGS]
    if unknown:
        parser.error(f"unknown legs: {unknown} (choose from {', '.join(LEGS)})")

    results = {}
    for name in selected:
        start = time.perf_counter()
        results[name] = LEGS[name](args.repeats)
        took = time.perf_counter() - start
        metrics = "  ".join(
            f"{key}={value:.3f}" for key, value in results[name].items()
        )
        print(f"{name:10s} {metrics}  ({took:.1f}s, best of {args.repeats})")

    entry = {"time": time.time(), "env": env_fingerprint(), "legs": results}
    if not args.no_append:
        length = append_history(entry, Path(args.out))
        print(f"history: entry {length} appended to {args.out}")

    if args.check:
        baselines_path = Path(args.baselines)
        if not baselines_path.exists():
            print(f"error: no baselines at {baselines_path}", file=sys.stderr)
            return 2
        violations = check_against_baselines(
            results, json.loads(baselines_path.read_text())
        )
        if violations:
            for violation in violations:
                print(f"PERF REGRESSION: {violation}", file=sys.stderr)
            return 1
        print("perf gate OK: all metrics within the pinned tolerance bands")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
