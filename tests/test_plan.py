"""Tests for fused inference plans (:mod:`repro.gnn.plan`).

Acceptance properties:

* **block-diag packing** — ``block_diag_csr`` is exactly the dense block
  diagonal for every edge case the megabatcher produces (zero-row blocks,
  zero-entry blocks, single-node blocks, mixed fanouts);
* **record/replay equality** — a recorded plan replayed over packed blocks
  reproduces ``predict_logits_blocks`` to 1e-8 (bitwise on the sparse
  backend) for GCN (2- and 3-layer) and GraphSAGE, single- and
  multi-segment, on both backends;
* **engine integration** — the fused serving path equals the unfused one
  before and after graph mutations, counters distinguish recording from
  replay, unsupported models fall back transparently, and a registry-style
  parameter hot-swap records a fresh plan instead of replaying stale
  weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.models import build_model
from repro.gnn.plan import (
    BufferPool,
    PlanCache,
    PlanUnsupported,
    pack_blocks,
    plan_params_hash,
    record_plan,
    shared_plan_cache,
)
from repro.gnn.sampling import NeighborSampler
from repro.gnn.trainer import TrainConfig, Trainer
from repro.serve import (
    GraphSession,
    InferenceEngine,
    ModelRegistry,
    RequestBatcher,
    ServeConfig,
)
from repro.sparse.backend import use_backend
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import block_diag_csr


@pytest.fixture(scope="module")
def plan_models(tiny_graph):
    """Trained sampled-path models (one per architecture/depth under test)."""
    models = {}
    for name, kwargs in (
        ("gcn", {}),
        ("gcn3", {"num_layers": 3}),
        ("graphsage", {}),
    ):
        model = build_model(
            "gcn" if name.startswith("gcn") else name,
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
            **kwargs,
        )
        Trainer(model, TrainConfig(epochs=15, patience=None, track_best=False)).fit(
            tiny_graph
        )
        model.eval()
        models[name] = model
    return models


def _dense_block_diag(blocks):
    rows = sum(block.shape[0] for block in blocks)
    cols = sum(block.shape[1] for block in blocks)
    out = np.zeros((rows, cols))
    r = c = 0
    for block in blocks:
        out[r : r + block.shape[0], c : c + block.shape[1]] = block.to_dense()
        r += block.shape[0]
        c += block.shape[1]
    return out


def _random_csr(rng, rows, cols, density=0.3):
    return CSRMatrix.from_dense((rng.random((rows, cols)) < density) * rng.random((rows, cols)))


# --------------------------------------------------------------------- #
# block_diag_csr
# --------------------------------------------------------------------- #
class TestBlockDiagCSR:
    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one block"):
            block_diag_csr([])

    def test_single_block_passthrough(self):
        rng = np.random.default_rng(0)
        block = _random_csr(rng, 5, 7)
        packed = block_diag_csr([block])
        assert packed.shape == block.shape
        np.testing.assert_array_equal(packed.to_dense(), block.to_dense())

    def test_zero_row_block(self):
        """A block with zero rows only shifts the column offset."""
        rng = np.random.default_rng(1)
        blocks = [
            _random_csr(rng, 3, 4),
            CSRMatrix.from_dense(np.zeros((0, 5))),
            _random_csr(rng, 2, 2),
        ]
        packed = block_diag_csr(blocks)
        assert packed.shape == (5, 11)
        np.testing.assert_array_equal(packed.to_dense(), _dense_block_diag(blocks))

    def test_zero_entry_block(self):
        """An isolated-dst block (no neighbours at all) packs as empty rows."""
        rng = np.random.default_rng(2)
        blocks = [
            _random_csr(rng, 4, 4),
            CSRMatrix.from_dense(np.zeros((3, 6))),
            _random_csr(rng, 2, 3),
        ]
        packed = block_diag_csr(blocks)
        assert packed.nnz == blocks[0].nnz + blocks[2].nnz
        np.testing.assert_array_equal(packed.to_dense(), _dense_block_diag(blocks))

    def test_single_node_blocks(self):
        blocks = [
            CSRMatrix.from_dense(np.array([[2.5]])),
            CSRMatrix.from_dense(np.array([[0.0]])),
            CSRMatrix.from_dense(np.array([[1.0]])),
        ]
        packed = block_diag_csr(blocks)
        np.testing.assert_array_equal(packed.to_dense(), _dense_block_diag(blocks))

    def test_all_empty_blocks(self):
        blocks = [
            CSRMatrix.from_dense(np.zeros((2, 3))),
            CSRMatrix.from_dense(np.zeros((1, 4))),
        ]
        packed = block_diag_csr(blocks)
        assert packed.nnz == 0
        assert packed.shape == (3, 7)
        np.testing.assert_array_equal(packed.to_dense(), np.zeros((3, 7)))

    def test_mixed_fanouts_values_exact(self):
        """Values and within-row order survive packing bit-for-bit."""
        rng = np.random.default_rng(3)
        blocks = [_random_csr(rng, rng.integers(1, 9), rng.integers(1, 9)) for _ in range(6)]
        packed = block_diag_csr(blocks)
        np.testing.assert_array_equal(packed.to_dense(), _dense_block_diag(blocks))
        offset = 0
        for block in blocks:
            np.testing.assert_array_equal(
                packed.data[offset : offset + block.nnz], block.data
            )
            offset += block.nnz

    def test_spmm_equals_per_block_spmm(self):
        rng = np.random.default_rng(4)
        blocks = [_random_csr(rng, 5, 6), _random_csr(rng, 3, 2), _random_csr(rng, 4, 7)]
        feats = [rng.random((block.shape[1], 3)) for block in blocks]
        packed = block_diag_csr(blocks)
        got = packed.matmul_dense(np.vstack(feats))
        expected = np.vstack([b.matmul_dense(f) for b, f in zip(blocks, feats)])
        np.testing.assert_array_equal(got, expected)


# --------------------------------------------------------------------- #
# Recording
# --------------------------------------------------------------------- #
class TestRecording:
    def test_gcn_plan_shape(self, plan_models):
        plan = record_plan(plan_models["gcn"])
        assert plan.kinds == ("gcn", "gcn")
        # matmul+prop+bias per layer, relu between layers
        assert [op for op, _ in plan.ops] == [
            "matmul", "prop", "bias", "relu", "matmul", "prop", "bias",
        ]

    def test_gcn3_plan_depth(self, plan_models):
        plan = record_plan(plan_models["gcn3"])
        assert plan.num_layers == 3
        assert plan.kinds == ("gcn", "gcn", "gcn")

    def test_sage_plan_shape(self, plan_models):
        plan = record_plan(plan_models["graphsage"])
        assert plan.kinds == ("mean_noself", "mean_noself")
        assert [op for op, _ in plan.ops] == ["sage", "relu", "normalize", "sage"]

    def test_gat_unsupported(self, tiny_graph):
        model = build_model(
            "gat",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        with pytest.raises(PlanUnsupported):
            record_plan(model)

    def test_params_hash_tracks_content(self, plan_models):
        model = plan_models["gcn"]
        before = plan_params_hash(model)
        state = model.state_dict()
        perturbed = {k: v + 1e-3 for k, v in state.items()}
        model.load_state_dict(perturbed)
        try:
            assert plan_params_hash(model) != before
        finally:
            model.load_state_dict(state)
        assert plan_params_hash(model) == before


# --------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------- #
class TestReplay:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("name", ["gcn", "gcn3", "graphsage"])
    def test_replay_matches_unfused(self, tiny_graph, plan_models, backend, name):
        model = plan_models[name]
        plan = record_plan(model)
        csr = CSRMatrix.from_dense(tiny_graph.adjacency)
        sampler = NeighborSampler(csr, seed=0)
        fanouts = (None,) * plan.num_layers
        rng = np.random.default_rng(5)
        nodes = rng.choice(tiny_graph.num_nodes, size=48, replace=False)
        with use_backend(backend):
            # Single segment and a 4-way megabatch must agree with the
            # unfused forward over exactly the same blocks.
            whole = sampler.ego_blocks(nodes, fanouts, key=3)
            reference = model.predict_logits_blocks(tiny_graph.features, whole)
            packed = pack_blocks([whole], plan.kinds, dense=backend == "dense")
            np.testing.assert_allclose(
                plan.replay(tiny_graph.features, packed, BufferPool()),
                reference,
                rtol=0,
                atol=1e-8,
            )
            stacks = [
                sampler.ego_blocks(chunk, fanouts, key=3)
                for chunk in np.array_split(nodes, 4)
            ]
            packed = pack_blocks(stacks, plan.kinds, dense=backend == "dense")
            fused = plan.replay(tiny_graph.features, packed, BufferPool())
            unfused = np.vstack(
                [
                    model.predict_logits_blocks(tiny_graph.features, stack)
                    for stack in stacks
                ]
            )
            np.testing.assert_allclose(fused, unfused, rtol=0, atol=1e-8)
            if backend == "sparse":
                np.testing.assert_array_equal(fused, unfused)

    def test_replay_sampled_fanouts(self, tiny_graph, plan_models):
        model = plan_models["graphsage"]
        plan = record_plan(model)
        csr = CSRMatrix.from_dense(tiny_graph.adjacency)
        sampler = NeighborSampler(csr, seed=1)
        nodes = np.arange(30)
        with use_backend("sparse"):
            stacks = [
                sampler.ego_blocks(chunk, (3, 3), key=9)
                for chunk in np.array_split(nodes, 3)
            ]
            packed = pack_blocks(stacks, plan.kinds, dense=False)
            fused = plan.replay(tiny_graph.features, packed, BufferPool())
            unfused = np.vstack(
                [
                    model.predict_logits_blocks(tiny_graph.features, stack)
                    for stack in stacks
                ]
            )
        np.testing.assert_array_equal(fused, unfused)

    def test_pack_rejects_mismatched_depth(self, tiny_graph, plan_models):
        plan = record_plan(plan_models["gcn"])
        csr = CSRMatrix.from_dense(tiny_graph.adjacency)
        sampler = NeighborSampler(csr, seed=0)
        stack = sampler.ego_blocks(np.arange(4), (None,) * 2, key=0)
        with pytest.raises(ValueError, match="depth"):
            pack_blocks([stack[:1]], plan.kinds)
        with pytest.raises(ValueError, match="at least one segment"):
            pack_blocks([], plan.kinds)

    def test_buffer_pool_buckets(self):
        pool = BufferPool()
        first = pool.take(5, 3)
        assert first.shape == (5, 3)
        again = pool.take(7, 3)
        # 5 and 7 share the rows-8 bucket: one underlying buffer.
        assert again.base is first.base or again.base is first
        assert len(pool) == 1
        other = pool.take(9, 3)
        assert other.shape == (9, 3)
        assert len(pool) == 2


# --------------------------------------------------------------------- #
# Engine integration
# --------------------------------------------------------------------- #
class TestEnginePlans:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("name", ["gcn", "graphsage"])
    def test_fused_serving_matches_unfused(
        self, tiny_graph, plan_models, backend, name
    ):
        """Fused == unfused through the whole engine, across mutations."""
        model = plan_models[name]
        with use_backend(backend):
            fused_session = GraphSession.from_graph(tiny_graph.copy())
            unfused_session = GraphSession.from_graph(tiny_graph.copy())
            fused = InferenceEngine(
                model,
                fused_session,
                ServeConfig(cache=False, megabatch_segment=16),
                plan_cache=PlanCache(),
            )
            unfused = InferenceEngine(
                model, unfused_session, ServeConfig(cache=False, plan=False)
            )
            nodes = np.arange(tiny_graph.num_nodes)
            np.testing.assert_allclose(
                fused.predict_logits(nodes),
                unfused.predict_logits(nodes),
                rtol=0,
                atol=1e-8,
            )
            pairs = tiny_graph.non_edge_sample(3, np.random.default_rng(0))
            fused_session.add_edges(pairs)
            unfused_session.add_edges(pairs)
            np.testing.assert_allclose(
                fused.predict_logits(nodes),
                unfused.predict_logits(nodes),
                rtol=0,
                atol=1e-8,
            )
            removed = tiny_graph.edge_list()[:2]
            fused_session.remove_edges(removed)
            unfused_session.remove_edges(removed)
            np.testing.assert_allclose(
                fused.predict_logits(nodes),
                unfused.predict_logits(nodes),
                rtol=0,
                atol=1e-8,
            )

    def test_counters_record_once_then_replay(self, tiny_graph, plan_models):
        model = plan_models["gcn"]
        session = GraphSession.from_graph(tiny_graph.copy())
        engine = InferenceEngine(
            model,
            session,
            ServeConfig(cache=False, megabatch_segment=8),
            plan_cache=PlanCache(),
        )
        engine.predict_logits(np.arange(20))
        stats = engine.cache_stats
        assert stats.plans_recorded == 1
        assert stats.plan_replays == 0
        assert stats.megabatches == 1
        assert stats.megabatch_nodes == 20
        for start in (20, 40, 60):
            engine.predict_logits(np.arange(start, start + 20))
        stats = engine.cache_stats
        assert stats.plans_recorded == 1, "plan must be recorded exactly once"
        assert stats.plan_replays == 3
        assert stats.plan_fallbacks == 0
        assert stats.megabatch_nodes == 80
        assert stats.mean_megabatch_size == 20.0

    def test_plan_shared_across_engines(self, tiny_graph, plan_models):
        """Replicas with one plan cache record once between them."""
        model = plan_models["gcn"]
        cache = PlanCache()
        engines = [
            InferenceEngine(
                model,
                GraphSession.from_graph(tiny_graph.copy()),
                ServeConfig(cache=False),
                plan_cache=cache,
            )
            for _ in range(2)
        ]
        engines[0].predict_logits(np.arange(10))
        engines[1].predict_logits(np.arange(10))
        assert engines[0].cache_stats.plans_recorded == 1
        assert engines[1].cache_stats.plans_recorded == 0
        assert engines[1].cache_stats.plan_replays == 1
        assert len(cache) == 1
        np.testing.assert_array_equal(
            engines[0].predict_logits(np.arange(10)),
            engines[1].predict_logits(np.arange(10)),
        )

    def test_hot_swap_records_fresh_plan(self, tiny_graph, plan_models, tmp_path):
        """A registry hot-swap must not replay the old weights' plan."""
        model = build_model(
            "gcn",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        model.load_state_dict(plan_models["gcn"].state_dict())
        model.eval()
        session = GraphSession.from_graph(tiny_graph.copy())
        cache = PlanCache()
        engine = InferenceEngine(
            model, session, ServeConfig(cache=False), plan_cache=cache
        )
        nodes = np.arange(12)
        before = engine.predict_logits(nodes)
        assert engine.cache_stats.plans_recorded == 1

        # Hot-swap: load different weights in place (what a registry reload
        # does to a serving replica's model object).
        registry = ModelRegistry(str(tmp_path))
        other = build_model(
            "gcn",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=1,
        )
        registry.save("swap", other)
        loaded, _ = registry.load("swap")
        model.load_state_dict(loaded.state_dict())

        after = engine.predict_logits(nodes)
        stats = engine.cache_stats
        assert stats.plans_recorded == 2, "swap must record a fresh plan"
        assert len(cache) == 2
        assert not np.allclose(before, after), "swap must change predictions"
        expected = InferenceEngine(
            loaded,
            GraphSession.from_graph(tiny_graph.copy()),
            ServeConfig(cache=False, plan=False),
        ).predict_logits(nodes)
        np.testing.assert_allclose(after, expected, rtol=0, atol=1e-8)

    def test_plan_cache_invalidate(self, tiny_graph, plan_models):
        cache = PlanCache()
        engine = InferenceEngine(
            plan_models["gcn"],
            GraphSession.from_graph(tiny_graph.copy()),
            ServeConfig(cache=False),
            plan_cache=cache,
        )
        engine.predict_logits(np.arange(5))
        assert len(cache) == 1
        key = next(iter(cache._entries))
        assert cache.invalidate(signature_hash="no-such-model") == 0
        assert cache.invalidate(signature_hash=key[0]) == 1
        assert len(cache) == 0
        engine.predict_logits(np.arange(5, 10))
        assert engine.cache_stats.plans_recorded == 2

    def test_unsupported_model_falls_back(self, tiny_graph, plan_models):
        """A model without a plan serves unfused and counts the fallback."""
        from repro.gnn.models import GCN

        class OpaqueGCN(GCN):
            def record_inference_plan(self, recorder):
                raise NotImplementedError("opaque by construction")

        model = OpaqueGCN(
            in_features=tiny_graph.num_features,
            hidden_features=8,
            num_classes=tiny_graph.num_classes,
            rng=0,
        )
        model.load_state_dict(plan_models["gcn"].state_dict())
        model.eval()
        session = GraphSession.from_graph(tiny_graph.copy())
        engine = InferenceEngine(
            model, session, ServeConfig(cache=False), plan_cache=PlanCache()
        )
        nodes = np.arange(15)
        got = engine.predict_logits(nodes)
        stats = engine.cache_stats
        assert stats.plan_fallbacks == 1
        assert stats.plans_recorded == 0 and stats.plan_replays == 0
        reference = InferenceEngine(
            plan_models["gcn"],
            GraphSession.from_graph(tiny_graph.copy()),
            ServeConfig(cache=False, plan=False),
        ).predict_logits(nodes)
        np.testing.assert_allclose(got, reference, rtol=0, atol=1e-8)
        # The unsupported verdict is cached: no re-probe per batch.
        engine.predict_logits(np.arange(15, 30))
        assert engine.cache_stats.plan_fallbacks == 2

    def test_registry_exposes_shared_cache(self):
        assert ModelRegistry.plan_cache() is shared_plan_cache()


# --------------------------------------------------------------------- #
# Batcher coalescing
# --------------------------------------------------------------------- #
class TestBatcherCoalescing:
    def test_megabatch_pop_and_stats(self, tiny_graph, plan_models):
        model = plan_models["gcn"]
        session = GraphSession.from_graph(tiny_graph.copy())
        engine = InferenceEngine(
            model, session, ServeConfig(cache=False), plan_cache=PlanCache()
        )
        batcher = RequestBatcher(engine, max_batch_size=8, coalesce_batches=4)
        futures = [batcher.submit(node) for node in range(30)]
        assert batcher.flush() == 30
        stats = batcher.stats
        # 30 requests, megabatch limit 32: one pop serves them all.
        assert stats.batches == 1
        assert stats.megabatches == 1
        assert stats.largest_batch == 30
        reference = engine.predict_proba(np.arange(30))
        for future, row in zip(futures, reference):
            np.testing.assert_allclose(future.result(), row, atol=0)

    def test_coalesce_one_restores_micro_batches(self, tiny_graph, plan_models):
        engine = InferenceEngine(
            plan_models["gcn"],
            GraphSession.from_graph(tiny_graph.copy()),
            ServeConfig(cache=False),
            plan_cache=PlanCache(),
        )
        batcher = RequestBatcher(engine, max_batch_size=8, coalesce_batches=1)
        for node in range(30):
            batcher.submit(node)
        batcher.flush()
        stats = batcher.stats
        assert stats.batches == 4
        assert stats.megabatches == 0
        assert stats.largest_batch == 8

    def test_coalesce_validation(self, tiny_graph, plan_models):
        engine = InferenceEngine(
            plan_models["gcn"],
            GraphSession.from_graph(tiny_graph.copy()),
            ServeConfig(cache=False),
            plan_cache=PlanCache(),
        )
        with pytest.raises(ValueError, match="coalesce_batches"):
            RequestBatcher(engine, coalesce_batches=0)
