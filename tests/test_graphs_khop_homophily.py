"""Tests for k-hop utilities, homophily statistics and Proposition V.2 inputs."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.homophily import (
    class_linking_probabilities,
    edge_homophily,
    is_sparse_and_homophilous,
    node_homophily,
)
from repro.graphs.khop import (
    INF_HOPS,
    connected_unconnected_split,
    khop_pairs,
    pair_hop_histogram,
    shortest_path_hops,
    two_hop_ratio_empirical,
    two_hop_ratio_theoretical,
)


def random_adjacency(num_nodes, edge_probability, seed):
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((num_nodes, num_nodes)) < edge_probability, k=1)
    adjacency = (upper | upper.T).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


class TestShortestPathHops:
    def test_matches_networkx(self):
        adjacency = random_adjacency(20, 0.12, seed=0)
        hops = shortest_path_hops(adjacency)
        graph = nx.from_numpy_array(adjacency)
        lengths = dict(nx.all_pairs_shortest_path_length(graph))
        for i in range(20):
            for j in range(20):
                expected = lengths.get(i, {}).get(j, INF_HOPS)
                assert hops[i, j] == expected

    def test_disconnected_pair_marked_infinite(self):
        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        hops = shortest_path_hops(adjacency)
        assert hops[0, 3] == INF_HOPS

    def test_diagonal_zero(self):
        hops = shortest_path_hops(random_adjacency(8, 0.3, seed=1))
        np.testing.assert_array_equal(np.diag(hops), 0)


class TestKhopPairs:
    def test_one_hop_pairs_are_edges(self):
        adjacency = random_adjacency(15, 0.2, seed=2)
        pairs = khop_pairs(adjacency, 1)
        for i, j in pairs:
            assert adjacency[i, j] == 1.0

    def test_histogram_counts_all_pairs(self):
        adjacency = random_adjacency(12, 0.2, seed=3)
        histogram = pair_hop_histogram(adjacency)
        assert sum(histogram.values()) == 12 * 11 // 2

    def test_connected_unconnected_split_partitions(self):
        adjacency = random_adjacency(12, 0.25, seed=4)
        connected, unconnected = connected_unconnected_split(adjacency)
        assert connected.shape[0] + unconnected.shape[0] == 12 * 11 // 2
        for i, j in connected:
            assert adjacency[i, j] == 1.0
        for i, j in unconnected:
            assert adjacency[i, j] == 0.0


class TestTwoHopRatio:
    def test_theoretical_formula(self):
        assert two_hop_ratio_theoretical(0.05, 0.01) == pytest.approx(0.06**2 / 0.94)

    def test_theoretical_rejects_invalid(self):
        with pytest.raises(ValueError):
            two_hop_ratio_theoretical(0.01, 0.05)
        with pytest.raises(ValueError):
            two_hop_ratio_theoretical(0.7, 0.5)

    def test_sparse_graph_has_small_ratio(self):
        """Eq. (5): for sparse homophilous graphs the 2-hop fraction is small."""
        adjacency = random_adjacency(150, 0.02, seed=5)
        assert two_hop_ratio_empirical(adjacency) < 0.25

    def test_empirical_ratio_on_surrogate(self, tiny_graph):
        ratio = two_hop_ratio_empirical(tiny_graph.adjacency)
        assert 0.0 <= ratio < 0.5

    @given(
        p=st.floats(min_value=0.01, max_value=0.2),
        q=st.floats(min_value=0.0, max_value=0.01),
    )
    @settings(max_examples=30, deadline=None)
    def test_theoretical_ratio_monotone_in_p(self, p, q):
        base = two_hop_ratio_theoretical(p, q)
        larger = two_hop_ratio_theoretical(min(p * 1.5, 0.4), q)
        assert larger >= base


class TestHomophily:
    def test_edge_homophily_path_graph(self):
        adjacency = np.zeros((4, 4))
        for i in range(3):
            adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
        labels = np.array([0, 0, 1, 1])
        assert edge_homophily(adjacency, labels) == pytest.approx(2 / 3)

    def test_empty_graph(self):
        assert edge_homophily(np.zeros((3, 3)), np.array([0, 1, 2])) == 0.0

    def test_node_homophily_range(self, tiny_graph):
        value = node_homophily(tiny_graph.adjacency, tiny_graph.labels)
        assert 0.0 <= value <= 1.0

    def test_class_linking_probabilities_detect_homophily(self, tiny_graph):
        p, q = class_linking_probabilities(tiny_graph.adjacency, tiny_graph.labels)
        assert p > q > 0.0

    def test_surrogate_satisfies_proposition_assumptions(self, tiny_graph):
        assert is_sparse_and_homophilous(tiny_graph.adjacency, tiny_graph.labels)

    def test_surrogate_homophily_close_to_spec(self, tiny_graph, weak_graph):
        strong = edge_homophily(tiny_graph.adjacency, tiny_graph.labels)
        weak = edge_homophily(weak_graph.adjacency, weak_graph.labels)
        assert strong == pytest.approx(0.8, abs=0.1)
        assert weak == pytest.approx(0.6, abs=0.12)
        assert strong > weak
