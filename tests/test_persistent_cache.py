"""Tests for the persistent artifact-cache tier (:mod:`repro.utils.cache`).

The disk tier must extend deduplication across cache instances (standing in
for CLI invocations and process-pool workers) without ever changing results,
and must recover transparently from corrupt entries.
"""

from __future__ import annotations

import os
import pickle
import threading

import numpy as np
import pytest

from repro.experiments.grid import GridRunner
from repro.experiments.presets import ExperimentPreset
from repro.experiments.tables import table3_accuracy_bias
from repro.utils.cache import ArtifactCache


TINY_PRESET = ExperimentPreset(
    name="persist-test",
    dataset_scale=0.45,
    epochs=8,
    models=("gcn",),
    hidden_features=8,
    cg_iterations=3,
)


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        first = ArtifactCache(directory=str(tmp_path))
        value = {"array": np.arange(5.0), "n": 3}
        built = first.get_or_create("cell:test:abc", lambda: value)
        assert built is value

        second = ArtifactCache(directory=str(tmp_path))
        calls = []
        reloaded = second.get_or_create("cell:test:abc", lambda: calls.append(1))
        assert not calls, "disk hit must not invoke the factory"
        assert np.array_equal(reloaded["array"], value["array"])
        assert second.stats.disk_hits == 1
        assert second.stats.hits == 1 and second.stats.misses == 0

    def test_get_and_contains_consult_disk(self, tmp_path):
        ArtifactCache(directory=str(tmp_path)).put("k:1", [1, 2, 3])
        fresh = ArtifactCache(directory=str(tmp_path))
        assert fresh.contains("k:1")
        assert fresh.get("k:1") == [1, 2, 3]
        assert fresh.get("k:absent", "fallback") == "fallback"

    def test_corrupt_entry_recovered(self, tmp_path):
        cache = ArtifactCache(directory=str(tmp_path))
        cache.put("train:x:vanilla", {"ok": True})
        (path,) = [
            os.path.join(tmp_path, name)
            for name in os.listdir(tmp_path)
            if name.endswith(".pkl")
        ]
        with open(path, "wb") as handle:
            handle.write(b"\x80\x05 definitely not a pickle")

        fresh = ArtifactCache(directory=str(tmp_path))
        rebuilt = fresh.get_or_create("train:x:vanilla", lambda: {"rebuilt": True})
        assert rebuilt == {"rebuilt": True}
        # The corrupt file was deleted and replaced by the rebuilt artifact.
        third = ArtifactCache(directory=str(tmp_path))
        assert third.get("train:x:vanilla") == {"rebuilt": True}

    def test_truncated_entry_recovered(self, tmp_path):
        cache = ArtifactCache(directory=str(tmp_path))
        cache.put("k", np.ones(100))
        (path,) = [
            os.path.join(tmp_path, n) for n in os.listdir(tmp_path) if n.endswith(".pkl")
        ]
        with open(path, "rb") as handle:
            payload = handle.read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        fresh = ArtifactCache(directory=str(tmp_path))
        assert fresh.get("k", "miss") == "miss"
        assert not os.path.exists(path)

    def test_unpicklable_artifact_stays_memory_only(self, tmp_path):
        cache = ArtifactCache(directory=str(tmp_path))
        unpicklable = {"lock": threading.Lock()}
        with pytest.raises((TypeError, pickle.PicklingError)):
            pickle.dumps(unpicklable)
        built = cache.get_or_create("k", lambda: unpicklable)
        assert built is unpicklable
        assert cache.get("k") is unpicklable  # memory tier still serves it
        assert cache.stats.disk_skipped == 1
        assert ArtifactCache(directory=str(tmp_path)).get("k") is None

    def test_memory_only_cache_unchanged(self, tmp_path):
        cache = ArtifactCache()
        cache.put("k", 1)
        assert cache.directory is None
        assert not list(tmp_path.iterdir())


class TestGridRunnerPersistence:
    def test_cache_dir_reuses_cells_across_runners(self, tmp_path):
        """Two runners (≈ two CLI invocations) sharing a directory train once."""
        cache_dir = str(tmp_path / "cache")
        first_runner = GridRunner(cache_dir=cache_dir)
        first = table3_accuracy_bias(
            TINY_PRESET, seed=0, datasets=["cora"], runner=first_runner
        )
        assert first_runner.cache_stats.misses > 0

        second_runner = GridRunner(cache_dir=cache_dir)
        second = table3_accuracy_bias(
            TINY_PRESET, seed=0, datasets=["cora"], runner=second_runner
        )
        stats = second_runner.cache_stats
        assert stats.misses == 0, f"expected full disk reuse, got {stats}"
        assert stats.disk_hits > 0
        assert first.rows == second.rows, "disk-served payloads must be identical"

    def test_cache_dir_implies_cache(self, tmp_path):
        runner = GridRunner(cache=False, cache_dir=str(tmp_path / "c"))
        assert runner.cache_enabled and runner.artifact_cache is not None

    def test_unpickled_graph_revision_is_fresh(self, tmp_path):
        """Disk-cached graphs must re-tag: stored revisions are process-local."""
        import pickle as pkl

        from repro.datasets import load_dataset

        graph = load_dataset("cora", seed=0, scale=0.45)
        clone = pkl.loads(pkl.dumps(graph))
        assert clone.revision != graph.revision
        assert np.array_equal(clone.adjacency, graph.adjacency)
        # The clone's CSR view is rebuilt lazily and tagged with the fresh id.
        assert clone.csr().allclose(graph.adjacency)
