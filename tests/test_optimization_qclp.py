"""Tests for the QCLP solver and the projection primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optimization.projections import (
    project_onto_ball,
    project_onto_box,
    project_onto_halfspace,
)
from repro.optimization.qclp import QCLPProblem, solve_qclp


class TestProjections:
    def test_box_projection(self):
        np.testing.assert_allclose(
            project_onto_box(np.array([-2.0, 0.5, 3.0]), -1.0, 1.0), [-1.0, 0.5, 1.0]
        )

    def test_box_invalid_bounds(self):
        with pytest.raises(ValueError):
            project_onto_box(np.zeros(2), 1.0, -1.0)

    def test_ball_projection_inside_is_identity(self):
        x = np.array([0.3, 0.4])
        np.testing.assert_allclose(project_onto_ball(x, 1.0), x)

    def test_ball_projection_outside_scales_to_radius(self):
        projected = project_onto_ball(np.array([3.0, 4.0]), 1.0)
        assert np.linalg.norm(projected) == pytest.approx(1.0)

    def test_ball_negative_radius(self):
        with pytest.raises(ValueError):
            project_onto_ball(np.ones(2), -1.0)

    def test_halfspace_projection(self):
        normal = np.array([1.0, 0.0])
        inside = project_onto_halfspace(np.array([0.5, 2.0]), normal, 1.0)
        np.testing.assert_allclose(inside, [0.5, 2.0])
        outside = project_onto_halfspace(np.array([3.0, 2.0]), normal, 1.0)
        np.testing.assert_allclose(outside, [1.0, 2.0])

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_property_projections_land_in_sets(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=6) * 5
        assert np.all(np.abs(project_onto_box(x, -1, 1)) <= 1 + 1e-12)
        assert np.linalg.norm(project_onto_ball(x, 2.0)) <= 2.0 + 1e-9
        normal = rng.normal(size=6)
        projected = project_onto_halfspace(x, normal, 0.5)
        assert float(normal @ projected) <= 0.5 + 1e-8


class TestQCLPProblem:
    def test_validation(self):
        with pytest.raises(ValueError):
            QCLPProblem(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            QCLPProblem(np.ones(3), np.ones(3), alpha=0.0)
        with pytest.raises(ValueError):
            QCLPProblem(np.ones((2, 2)), np.ones((2, 2)))

    def test_budgets(self):
        problem = QCLPProblem(np.ones(4), np.array([1.0, -1.0, 2.0, 0.0]), alpha=0.5, beta=0.2)
        assert problem.ball_radius_squared == pytest.approx(2.0)
        assert problem.utility_budget == pytest.approx(0.2 * 3.0)


class TestSolveQCLP:
    def _random_problem(self, seed, size=30):
        rng = np.random.default_rng(seed)
        return QCLPProblem(
            bias_influence=rng.normal(size=size),
            utility_influence=rng.normal(size=size) * 0.1,
            alpha=0.9,
            beta=0.1,
        )

    def test_solution_is_feasible(self):
        problem = self._random_problem(0)
        solution = solve_qclp(problem)
        weights = solution.weights
        assert solution.feasible
        assert np.all(weights >= -1.0 - 1e-6) and np.all(weights <= 1.0 + 1e-6)
        assert float(weights @ weights) <= problem.ball_radius_squared * 1.001
        assert float(problem.utility_influence @ weights) <= problem.utility_budget + 1e-6

    def test_objective_not_worse_than_zero(self):
        """w = 0 is always feasible, so the optimum must be ≤ 0."""
        for seed in range(5):
            solution = solve_qclp(self._random_problem(seed))
            assert solution.objective <= 1e-9

    def test_backends_agree(self):
        problem = self._random_problem(3)
        slsqp = solve_qclp(problem, backend="slsqp")
        projected = solve_qclp(problem, backend="projected", max_iterations=500)
        assert projected.feasible
        # The projected solver is a fallback: it must reach a comparable optimum.
        assert projected.objective <= 0.7 * slsqp.objective or projected.objective <= slsqp.objective + 1e-6

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            solve_qclp(self._random_problem(0), backend="gurobi")

    def test_empty_problem(self):
        solution = solve_qclp(QCLPProblem(np.zeros(0), np.zeros(0)))
        assert solution.weights.size == 0 and solution.feasible

    def test_matches_brute_force_on_tiny_problem(self):
        """With a loose utility constraint the optimum is the box/ball LP solution."""
        c = np.array([1.0, -2.0, 0.5])
        u = np.zeros(3)
        problem = QCLPProblem(c, u, alpha=10.0, beta=1.0)  # ball constraint inactive
        solution = solve_qclp(problem)
        expected = np.array([-1.0, 1.0, -1.0])  # sign pattern minimising c·w in the box
        np.testing.assert_allclose(solution.weights, expected, atol=1e-4)

    def test_ball_constraint_binds(self):
        c = -np.ones(100)
        u = np.zeros(100)
        problem = QCLPProblem(c, u, alpha=0.25, beta=1.0)  # ‖w‖² ≤ 25 < 100
        solution = solve_qclp(problem)
        assert float(solution.weights @ solution.weights) <= 25.0 * 1.01
        assert float(solution.weights @ solution.weights) >= 20.0  # constraint is active

    def test_utility_constraint_binds(self):
        c = -np.ones(10)
        u = np.ones(10)  # any positive weight costs utility
        problem = QCLPProblem(c, u, alpha=10.0, beta=0.1)
        solution = solve_qclp(problem)
        assert float(u @ solution.weights) <= problem.utility_budget + 1e-6

    def test_summary_keys(self):
        solution = solve_qclp(self._random_problem(1))
        summary = solution.summary()
        assert {"objective", "feasible", "backend", "weight_norm"} <= set(summary)

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_property_feasibility_random_problems(self, seed):
        problem = self._random_problem(seed, size=15)
        solution = solve_qclp(problem)
        assert solution.feasible
