"""Tests for the sharded serving subsystem (:mod:`repro.cluster`).

Acceptance properties:

* **partitioner** — both strategies produce a complete, bounded-balance
  ownership; every shard's row-subset structure carries the exact global
  rows of its owned ∪ halo nodes and nothing else;
* **exhaustive equivalence** — router predictions equal the single-process
  engine (and therefore the offline full-graph forward) to 1e-8 on the dense
  and sparse backends, for GCN and GraphSAGE, through in-process and
  child-process workers alike;
* **cross-shard consistency** — after ``add_edges`` / ``remove_edges`` /
  ``add_node`` spanning shard boundaries, router answers equal a *fresh*
  single-process engine over the mutated structure (no stale logits from
  halo-invalidation gaps), under serial and background-drain batching;
* **determinism** — keyed-sampled cluster serving matches a single-process
  engine with the same seed because version-sync ticks keep every shard's
  sampling key equal to the global session's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterWorkerError,
    ShardRouter,
    ShardWorker,
    WorkerInit,
    assign_owners,
    partition_graph,
)
from repro.datasets.synthetic import generate_scaling_graph
from repro.gnn.models import build_model
from repro.graphs.khop import khop_frontier
from repro.serve import GraphSession, InferenceEngine, RequestBatcher, ServeConfig
from repro.sparse.backend import use_backend

NUM_NODES = 320
NUM_FEATURES = 8
NUM_CLASSES = 3


@pytest.fixture(scope="module")
def small_graph():
    csr, features, labels = generate_scaling_graph(
        NUM_NODES,
        num_classes=NUM_CLASSES,
        average_degree=5.0,
        num_features=NUM_FEATURES,
        seed=0,
    )
    return csr, features


@pytest.fixture(scope="module")
def gcn_model():
    model = build_model(
        "gcn",
        in_features=NUM_FEATURES,
        num_classes=NUM_CLASSES,
        hidden_features=8,
        rng=0,
    )
    model.eval()
    return model


@pytest.fixture(scope="module")
def sage_model():
    model = build_model(
        "graphsage",
        in_features=NUM_FEATURES,
        num_classes=NUM_CLASSES,
        hidden_features=8,
        rng=1,
    )
    model.eval()
    return model


def _cross_shard_absent_pairs(csr, owners, count, seed=0):
    """Non-adjacent pairs whose endpoints live on different shards."""
    dense = csr.to_dense()
    rng = np.random.default_rng(seed)
    pairs = []
    while len(pairs) < count:
        i, j = (int(v) for v in rng.integers(0, csr.shape[0], size=2))
        if i != j and owners[i] != owners[j] and dense[i, j] == 0.0:
            pairs.append((i, j))
    return np.asarray(pairs, dtype=np.int64)


def _fresh_reference(model, session, config=None):
    """A brand-new single-process engine over the session's current state."""
    return InferenceEngine(
        model,
        GraphSession(session.csr, session.features),
        config or ServeConfig(),
    )


# --------------------------------------------------------------------- #
# Partitioner
# --------------------------------------------------------------------- #
class TestPartitioner:
    @pytest.mark.parametrize("strategy", ["hash", "greedy"])
    def test_owners_cover_all_nodes(self, small_graph, strategy):
        csr, _ = small_graph
        owners = assign_owners(csr, 4, strategy=strategy)
        assert owners.shape == (NUM_NODES,)
        assert owners.min() >= 0 and owners.max() < 4
        # Deterministic: same inputs, same assignment.
        assert np.array_equal(owners, assign_owners(csr, 4, strategy=strategy))

    def test_greedy_is_capacity_balanced(self, small_graph):
        csr, _ = small_graph
        owners = assign_owners(csr, 4, strategy="greedy")
        sizes = np.bincount(owners, minlength=4)
        assert sizes.max() <= int(np.ceil(NUM_NODES / 4))

    def test_greedy_cuts_fewer_edges_than_hash(self, small_graph):
        csr, _ = small_graph

        def cut(owners):
            return int(np.count_nonzero(owners[csr.row_indices()] != owners[csr.indices]))

        assert cut(assign_owners(csr, 4, "greedy")) < cut(assign_owners(csr, 4, "hash"))

    def test_shard_structure_is_exact_row_subset(self, small_graph):
        csr, features = small_graph
        partition = partition_graph(csr, features, 3, strategy="greedy", halo_hops=2)
        dense = csr.to_dense()
        assert np.array_equal(np.sort(np.concatenate([s.owned for s in partition.shards])),
                              np.arange(NUM_NODES))
        for shard in partition.shards:
            expected_local = khop_frontier(csr, shard.owned, 2)
            assert np.array_equal(shard.local, expected_local)
            assert np.array_equal(
                shard.halo, np.setdiff1d(expected_local, shard.owned)
            )
            shard_dense = shard.csr.to_dense()
            mask = np.zeros(NUM_NODES, dtype=bool)
            mask[shard.local] = True
            assert np.array_equal(shard_dense[mask], dense[mask])
            assert not shard_dense[~mask].any()
            np.testing.assert_array_equal(shard.features, features[shard.local])
            padded = shard.padded_features()
            np.testing.assert_array_equal(padded[shard.local], features[shard.local])
            assert not padded[~mask].any()

    def test_stats_report(self, small_graph):
        csr, features = small_graph
        partition = partition_graph(csr, features, 4, strategy="greedy", halo_hops=1)
        stats = partition.stats(csr)
        assert stats["num_shards"] == 4
        assert 0.0 <= stats["edge_cut"] <= 1.0
        assert stats["replication"] >= 1.0
        assert stats["balance"] >= 1.0

    def test_validation_errors(self, small_graph):
        csr, features = small_graph
        with pytest.raises(ValueError, match="strategy"):
            assign_owners(csr, 2, strategy="metis")
        with pytest.raises(ValueError, match="num_shards"):
            assign_owners(csr, 0)
        with pytest.raises(ValueError, match="shards"):
            assign_owners(csr, NUM_NODES + 1)
        with pytest.raises(ValueError, match="halo_hops"):
            partition_graph(csr, features, 2, halo_hops=-1)
        with pytest.raises(ValueError, match="owner ids"):
            partition_graph(
                csr, features, 2, owners=np.full(NUM_NODES, 7, dtype=np.int64)
            )

    def test_explicit_owners_override(self, small_graph):
        csr, features = small_graph
        owners = np.arange(NUM_NODES, dtype=np.int64) % 2
        partition = partition_graph(csr, features, 2, owners=owners)
        assert partition.strategy == "explicit"
        assert np.array_equal(partition.shards[0].owned, np.arange(0, NUM_NODES, 2))


# --------------------------------------------------------------------- #
# Shard worker
# --------------------------------------------------------------------- #
class TestShardWorker:
    def test_rejects_unowned_nodes(self, small_graph, gcn_model):
        csr, features = small_graph
        partition = partition_graph(csr, features, 2, halo_hops=2)
        worker = ShardWorker(
            WorkerInit(partition=partition.shards[0], model=gcn_model)
        )
        stray = int(partition.shards[1].owned[0])
        with pytest.raises(ClusterWorkerError, match="does not own"):
            worker.predict_logits(np.asarray([stray]))

    def test_stats_shape(self, small_graph, gcn_model):
        csr, features = small_graph
        partition = partition_graph(csr, features, 2, halo_hops=2)
        worker = ShardWorker(
            WorkerInit(partition=partition.shards[0], model=gcn_model)
        )
        worker.predict_logits(partition.shards[0].owned[:5])
        stats = worker.stats()
        assert stats["requests"] == 5
        assert stats["owned"] == partition.shards[0].owned.size
        assert stats["halo"] == partition.shards[0].halo.size
        assert stats["version"] == 0


# --------------------------------------------------------------------- #
# Router: exhaustive equivalence
# --------------------------------------------------------------------- #
class TestRouterEquivalence:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("model_name", ["gcn", "sage"])
    def test_matches_single_process_engine(
        self, small_graph, gcn_model, sage_model, backend, model_name
    ):
        csr, features = small_graph
        model = gcn_model if model_name == "gcn" else sage_model
        rng = np.random.default_rng(1)
        nodes = rng.integers(0, NUM_NODES, size=80)
        with use_backend(backend):
            session = GraphSession(csr, features)
            with ShardRouter(model, session, 3, workers="inproc") as router:
                reference = _fresh_reference(model, session)
                np.testing.assert_allclose(
                    router.predict_logits(nodes),
                    reference.predict_logits(nodes),
                    atol=1e-8,
                )

    def test_matches_offline_full_graph_forward(self, small_graph, gcn_model):
        csr, features = small_graph
        session = GraphSession(csr, features)
        with ShardRouter(gcn_model, session, 4, workers="inproc") as router:
            offline = gcn_model.predict_logits(features, csr)
            nodes = np.arange(NUM_NODES)
            np.testing.assert_allclose(
                router.predict_logits(nodes), offline, atol=1e-8
            )

    def test_keyed_sampled_serving_matches_single_engine(self, small_graph, gcn_model):
        csr, features = small_graph
        config = ServeConfig(fanouts=(3, 3), seed=9)
        session = GraphSession(csr, features)
        nodes = np.random.default_rng(2).integers(0, NUM_NODES, size=60)
        with ShardRouter(gcn_model, session, 3, workers="inproc", config=config) as router:
            reference = _fresh_reference(gcn_model, session, config)
            np.testing.assert_allclose(
                router.predict_logits(nodes),
                reference.predict_logits(nodes),
                atol=1e-8,
            )

    def test_gat_full_graph_fallback_is_exact(self, small_graph):
        """GAT has no sampled path; the shard-local full forward still equals
        the single-process one on owned rows (L-local receptive fields)."""
        csr, features = small_graph
        model = build_model(
            "gat",
            in_features=NUM_FEATURES,
            num_classes=NUM_CLASSES,
            hidden_features=8,
            rng=2,
        )
        model.eval()
        session = GraphSession(csr, features)
        nodes = np.random.default_rng(4).integers(0, NUM_NODES, size=50)
        with ShardRouter(model, session, 2, workers="inproc") as router:
            reference = _fresh_reference(model, session)
            np.testing.assert_allclose(
                router.predict_logits(nodes),
                reference.predict_logits(nodes),
                atol=1e-8,
            )
            session.add_edges(
                _cross_shard_absent_pairs(csr, router.owners, 2, seed=9)
            )
            np.testing.assert_allclose(
                router.predict_logits(nodes),
                _fresh_reference(model, session).predict_logits(nodes),
                atol=1e-8,
            )

    def test_prediction_surface(self, small_graph, gcn_model):
        csr, features = small_graph
        session = GraphSession(csr, features)
        with ShardRouter(gcn_model, session, 2, workers="inproc") as router:
            proba = router.predict_proba([0, 1, 2])
            np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)
            labels = router.predict_labels([0, 1, 2])
            assert labels.shape == (3,)
            with pytest.raises(ValueError, match="out of bounds"):
                router.predict_logits([NUM_NODES])
            with pytest.raises(ValueError, match="non-empty"):
                router.predict_logits(np.empty(0, dtype=np.int64))

    def test_shallow_halo_rejected(self, small_graph, gcn_model):
        csr, features = small_graph
        session = GraphSession(csr, features)
        with pytest.raises(ValueError, match="halo"):
            ShardRouter(gcn_model, session, 2, halo_hops=1, workers="inproc")


# --------------------------------------------------------------------- #
# Cross-shard consistency under mutation
# --------------------------------------------------------------------- #
class TestCrossShardConsistency:
    @pytest.mark.parametrize("strategy", ["hash", "greedy"])
    def test_cross_shard_edge_mutations(self, small_graph, gcn_model, strategy):
        csr, features = small_graph
        session = GraphSession(csr, features)
        rng = np.random.default_rng(3)
        nodes = rng.integers(0, NUM_NODES, size=100)
        with ShardRouter(
            gcn_model, session, 3, strategy=strategy, workers="inproc"
        ) as router:
            router.predict_logits(nodes)  # warm every shard cache
            pairs = _cross_shard_absent_pairs(csr, router.owners, 6)

            session.add_edges(pairs)
            np.testing.assert_allclose(
                router.predict_logits(nodes),
                _fresh_reference(gcn_model, session).predict_logits(nodes),
                atol=1e-8,
            )
            session.remove_edges(pairs[:3])
            np.testing.assert_allclose(
                router.predict_logits(nodes),
                _fresh_reference(gcn_model, session).predict_logits(nodes),
                atol=1e-8,
            )

    def test_add_node_across_shards(self, small_graph, gcn_model):
        csr, features = small_graph
        session = GraphSession(csr, features)
        with ShardRouter(gcn_model, session, 3, workers="inproc") as router:
            owners = router.owners
            # neighbours on two different shards: the new node's halo spans both
            first = 0
            second = int(np.flatnonzero(owners != owners[first])[0])
            warm = np.arange(0, NUM_NODES, 4)
            router.predict_logits(warm)
            node = session.add_node(
                np.ones(NUM_FEATURES), neighbors=np.asarray([first, second])
            )
            assert router.owner_of(node) >= 0
            # the public ownership views grow with the session
            assert router.owners.size == session.num_nodes
            assert router.partition.owners.size == session.num_nodes
            assert node in router.partition.shards[router.owner_of(node)].owned
            query = np.concatenate([[node, first, second], warm[:20]])
            np.testing.assert_allclose(
                router.predict_logits(query),
                _fresh_reference(gcn_model, session).predict_logits(query),
                atol=1e-8,
            )

    def test_mutation_keeps_untouched_entries_warm(self, small_graph, gcn_model):
        """Ticked shards revalidate instead of dropping their caches."""
        csr, features = small_graph
        session = GraphSession(csr, features)
        with ShardRouter(gcn_model, session, 3, workers="inproc") as router:
            nodes = np.arange(NUM_NODES)
            router.predict_logits(nodes)
            pairs = _cross_shard_absent_pairs(csr, router.owners, 2)
            session.add_edges(pairs)
            misses_before = router.stats().misses
            router.predict_logits(nodes)
            stats = router.stats()
            # Only the dirty k-hop region recomputes; everything else hits.
            recomputed = stats.misses - misses_before
            dirty = khop_frontier(session.csr, pairs.reshape(-1), 2)
            assert 0 < recomputed <= dirty.size
            assert stats.invalidated > 0

    def test_router_on_session_with_prior_history(self, small_graph, gcn_model):
        """Regression: shard replicas must inherit the session's mutation
        counter, or every post-construction mutation drifts and fails."""
        csr, features = small_graph
        session = GraphSession(csr, features)
        session.add_edges(np.array([[0, 100], [7, 200]]))
        session.remove_edges(np.array([[0, 100]]))
        assert session.version == 2
        config = ServeConfig(fanouts=(3, 3), seed=4)
        with ShardRouter(gcn_model, session, 3, workers="inproc", config=config) as router:
            # A single-process engine on the SAME session draws the same keys.
            engine = InferenceEngine(
                gcn_model,
                GraphSession(
                    session.csr, session.features, initial_version=session.version
                ),
                config,
            )
            nodes = np.random.default_rng(8).integers(0, NUM_NODES, size=60)
            np.testing.assert_allclose(
                router.predict_logits(nodes), engine.predict_logits(nodes), atol=1e-8
            )
            pairs = _cross_shard_absent_pairs(
                session.csr, router.owners, 3, seed=11
            )
            session.add_edges(pairs)  # raised ClusterWorkerError before the fix
            versions = [s["version"] for s in router.stats().shards]
            assert versions == [session.version] * 3

    def test_versions_stay_synchronised(self, small_graph, gcn_model):
        csr, features = small_graph
        session = GraphSession(csr, features)
        with ShardRouter(gcn_model, session, 3, workers="inproc") as router:
            pairs = _cross_shard_absent_pairs(csr, router.owners, 4)
            session.add_edges(pairs[:2])
            session.remove_edges(pairs[:1])
            session.add_node(np.zeros(NUM_FEATURES), neighbors=[5])
            versions = [s["version"] for s in router.stats().shards]
            assert versions == [session.version] * 3

    @pytest.mark.parametrize("drain", ["serial", "background"])
    def test_consistency_under_batching(self, small_graph, gcn_model, drain):
        """Satellite: cross-shard mutations with the RequestBatcher in front."""
        csr, features = small_graph
        session = GraphSession(csr, features)
        rng = np.random.default_rng(7)
        nodes = rng.integers(0, NUM_NODES, size=80)
        with ShardRouter(gcn_model, session, 3, workers="inproc") as router:
            batcher = RequestBatcher(router, max_batch_size=16)
            if drain == "background":
                batcher.start()

            def answer(batch):
                futures = [batcher.submit(int(node)) for node in batch]
                if drain == "serial":
                    batcher.flush()
                return np.stack([future.result(timeout=30) for future in futures])

            answer(nodes)  # warm
            pairs = _cross_shard_absent_pairs(csr, router.owners, 5)
            session.add_edges(pairs)
            node = session.add_node(np.ones(NUM_FEATURES), neighbors=pairs[0])
            session.remove_edges(pairs[2:3])
            query = np.concatenate([nodes, [node]])
            got = answer(query)
            batcher.stop()
            expected = _fresh_reference(gcn_model, session).predict_proba(query)
            np.testing.assert_allclose(got, expected, atol=1e-8)


# --------------------------------------------------------------------- #
# Process workers (pipe protocol end to end)
# --------------------------------------------------------------------- #
class TestProcessWorkers:
    def test_process_cluster_matches_engine(self, tmp_path, small_graph, gcn_model):
        from repro.serve import ModelRegistry

        csr, features = small_graph
        registry = ModelRegistry(str(tmp_path))
        version = registry.save("cluster-gcn", gcn_model, graph=csr)
        session = GraphSession(csr, features)
        nodes = np.random.default_rng(5).integers(0, NUM_NODES, size=50)
        with ShardRouter(
            gcn_model,
            session,
            2,
            workers="process",
            model_ref=(str(tmp_path), "cluster-gcn", version),
        ) as router:
            reference = _fresh_reference(gcn_model, session)
            np.testing.assert_allclose(
                router.predict_logits(nodes),
                reference.predict_logits(nodes),
                atol=1e-8,
            )
            pairs = _cross_shard_absent_pairs(csr, router.owners, 3)
            session.add_edges(pairs)
            np.testing.assert_allclose(
                router.predict_logits(nodes),
                _fresh_reference(gcn_model, session).predict_logits(nodes),
                atol=1e-8,
            )
            stats = router.stats()
            assert stats.requests == 100
        with pytest.raises(RuntimeError, match="closed"):
            router.predict_logits(nodes)

    def test_bad_registry_reference_fails_fast(self, tmp_path, small_graph, gcn_model):
        csr, features = small_graph
        session = GraphSession(csr, features)
        with pytest.raises(ClusterWorkerError):
            ShardRouter(
                gcn_model,
                session,
                2,
                workers="process",
                model_ref=(str(tmp_path), "absent-model", None),
            )


# --------------------------------------------------------------------- #
# Fused plan replay across shards
# --------------------------------------------------------------------- #
class TestClusterPlans:
    def test_two_shard_serve_under_plan_replay(self, small_graph, gcn_model):
        """2-shard fused serving equals a single-process engine, with the
        plan demonstrably replayed (not re-recorded) after its first use."""
        csr, features = small_graph
        session = GraphSession(csr, features)
        nodes = np.random.default_rng(3).integers(0, NUM_NODES, size=90)
        with ShardRouter(gcn_model, session, 2, workers="inproc") as router:
            reference = _fresh_reference(gcn_model, session)
            np.testing.assert_allclose(
                router.predict_logits(nodes),
                reference.predict_logits(nodes),
                atol=1e-8,
            )
            router.predict_logits(nodes[::-1])
            stats = router.stats()
            assert stats.plan_fallbacks == 0
            assert stats.plans_recorded + stats.plan_replays >= 2
            assert stats.plan_replays >= 1, "warm batches must replay"
            assert stats.megabatches == stats.plans_recorded + stats.plan_replays
            assert stats.megabatch_nodes > 0
            # After mutation the replay path stays consistent too.
            pairs = _cross_shard_absent_pairs(csr, router.owners, 2, seed=5)
            session.add_edges(pairs)
            np.testing.assert_allclose(
                router.predict_logits(nodes),
                _fresh_reference(gcn_model, session).predict_logits(nodes),
                atol=1e-8,
            )

    def test_worker_stats_carry_plan_counters(self, small_graph, gcn_model):
        csr, features = small_graph
        partition = partition_graph(csr, features, 2, halo_hops=2)
        worker = ShardWorker(
            WorkerInit(partition=partition.shards[0], model=gcn_model)
        )
        worker.predict_logits(partition.shards[0].owned[:6])
        stats = worker.stats()
        for key in (
            "plans_recorded",
            "plan_replays",
            "plan_fallbacks",
            "megabatches",
            "megabatch_nodes",
        ):
            assert key in stats
        assert stats["plans_recorded"] + stats["plan_replays"] == 1
        assert stats["megabatch_nodes"] >= 6
