"""Tests for GNN layers, models, normalisation, trainer and evaluation."""

import numpy as np
import pytest

from repro.gnn.evaluation import evaluate_accuracy, predict_labels, predict_probabilities
from repro.gnn.layers import GATConv, GCNConv, SAGEConv
from repro.gnn.models import GAT, GCN, MODEL_REGISTRY, GraphSAGE, build_model
from repro.gnn.normalization import (
    attention_mask,
    gcn_norm,
    left_norm,
    mean_aggregation_matrix,
    row_normalize_features,
)
from repro.gnn.trainer import TrainConfig, Trainer
from repro.fairness.inform import inform_regularizer
from repro.nn.tensor import Tensor


class TestNormalization:
    def test_gcn_norm_symmetric(self, tiny_graph):
        propagation = gcn_norm(tiny_graph.adjacency)
        np.testing.assert_allclose(propagation, propagation.T)

    def test_left_norm_row_stochastic(self, tiny_graph):
        propagation = left_norm(tiny_graph.adjacency)
        np.testing.assert_allclose(propagation.sum(axis=1), 1.0)

    def test_mean_aggregation_without_self(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        operator = mean_aggregation_matrix(adjacency, include_self=False)
        np.testing.assert_allclose(operator, [[0.0, 1.0], [1.0, 0.0]])

    def test_mean_aggregation_isolated_node_zero_row(self):
        adjacency = np.zeros((3, 3))
        operator = mean_aggregation_matrix(adjacency, include_self=False)
        np.testing.assert_allclose(operator, np.zeros((3, 3)))

    def test_attention_mask_allows_self_and_neighbors(self):
        adjacency = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        mask = attention_mask(adjacency)
        assert not mask[0, 0] and not mask[0, 1]
        assert mask[0, 2] and mask[2, 1]

    def test_row_normalize_features(self):
        features = np.array([[2.0, 2.0], [0.0, 0.0]])
        normalized = row_normalize_features(features)
        np.testing.assert_allclose(normalized[0], [0.5, 0.5])
        np.testing.assert_allclose(normalized[1], [0.0, 0.0])


class TestLayers:
    def test_gcn_conv_shape_and_grad(self):
        layer = GCNConv(6, 4, rng=0)
        propagation = Tensor(np.eye(5))
        out = layer(Tensor(np.random.default_rng(0).normal(size=(5, 6))), propagation)
        assert out.shape == (5, 4)
        out.sum().backward()
        assert layer.weight.grad is not None

    def test_gat_conv_multi_head_concat(self):
        layer = GATConv(6, 4, heads=2, concat_heads=True, rng=0)
        mask = attention_mask(np.ones((5, 5)) - np.eye(5))
        out = layer(Tensor(np.random.default_rng(0).normal(size=(5, 6))), mask)
        assert out.shape == (5, 8)

    def test_gat_conv_average_heads(self):
        layer = GATConv(6, 3, heads=2, concat_heads=False, rng=0)
        mask = attention_mask(np.ones((4, 4)) - np.eye(4))
        out = layer(Tensor(np.random.default_rng(0).normal(size=(4, 6))), mask)
        assert out.shape == (4, 3)

    def test_gat_invalid_heads(self):
        with pytest.raises(ValueError):
            GATConv(4, 4, heads=0)

    def test_sage_conv_shape(self):
        layer = SAGEConv(6, 4, rng=0)
        aggregation = Tensor(mean_aggregation_matrix(np.ones((5, 5)) - np.eye(5), include_self=False))
        out = layer(Tensor(np.random.default_rng(0).normal(size=(5, 6))), aggregation)
        assert out.shape == (5, 4)


class TestModels:
    def test_registry(self):
        assert set(MODEL_REGISTRY) == {"gcn", "gat", "graphsage"}
        with pytest.raises(KeyError):
            build_model("transformer", 4, 2)

    @pytest.mark.parametrize("name", ["gcn", "gat", "graphsage"])
    def test_forward_shapes(self, name, tiny_graph):
        model = build_model(
            name, tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=0
        )
        logits = model(tiny_graph.features, tiny_graph.adjacency)
        assert logits.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_predict_proba_rows_sum_to_one(self, trained_gcn, tiny_graph):
        probabilities = trained_gcn.predict_proba(tiny_graph.features, tiny_graph.adjacency)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        assert probabilities.min() >= 0.0

    def test_predict_labels_range(self, trained_gcn, tiny_graph):
        labels = trained_gcn.predict_labels(tiny_graph.features, tiny_graph.adjacency)
        assert labels.min() >= 0 and labels.max() < tiny_graph.num_classes

    def test_gcn_structure_matters(self, trained_gcn, tiny_graph):
        """Predictions must depend on the adjacency (it is the attack surface)."""
        original = trained_gcn.predict_proba(tiny_graph.features, tiny_graph.adjacency)
        empty = trained_gcn.predict_proba(tiny_graph.features, np.zeros_like(tiny_graph.adjacency))
        assert not np.allclose(original, empty)

    def test_gat_requires_divisible_hidden(self):
        with pytest.raises(ValueError):
            GAT(in_features=4, hidden_features=5, num_classes=2, heads=2)

    def test_graphsage_sampling_changes_training_forward(self, tiny_graph):
        model = GraphSAGE(
            tiny_graph.num_features, 8, tiny_graph.num_classes, num_samples=2, rng=0
        )
        model.train()
        first = model(tiny_graph.features, tiny_graph.adjacency).data
        second = model(tiny_graph.features, tiny_graph.adjacency).data
        assert not np.allclose(first, second)
        # Inference is deterministic (no sampling, no dropout).
        det1 = model.predict_proba(tiny_graph.features, tiny_graph.adjacency)
        det2 = model.predict_proba(tiny_graph.features, tiny_graph.adjacency)
        np.testing.assert_allclose(det1, det2)

    def test_invalid_num_layers(self):
        with pytest.raises(ValueError):
            GCN(4, 8, 2, num_layers=0)


class TestTrainer:
    def test_training_beats_random_guessing(self, trained_gcn, tiny_graph):
        accuracy = evaluate_accuracy(trained_gcn, tiny_graph)
        assert accuracy > 1.5 / tiny_graph.num_classes

    def test_training_improves_over_init(self, tiny_graph):
        model = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=1)
        before = evaluate_accuracy(model, tiny_graph)
        Trainer(model, TrainConfig(epochs=40, patience=None, track_best=False)).fit(tiny_graph)
        after = evaluate_accuracy(model, tiny_graph)
        assert after > before

    def test_history_recorded(self, tiny_graph):
        model = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=2)
        result = Trainer(model, TrainConfig(epochs=5, patience=None, track_best=False)).fit(tiny_graph)
        assert len(result.history["loss"]) == 5
        assert result.epochs_run == 5

    def test_early_stopping_respects_patience(self, tiny_graph):
        model = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=3)
        config = TrainConfig(epochs=200, patience=3, min_epochs=5)
        result = Trainer(model, config).fit(tiny_graph)
        assert result.epochs_run < 200

    def test_sample_weight_validation(self, tiny_graph):
        model = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=4)
        trainer = Trainer(model, TrainConfig(epochs=2, patience=None))
        with pytest.raises(ValueError):
            trainer.fit(tiny_graph, sample_weights=np.ones(3))
        with pytest.raises(ValueError):
            trainer.fit(tiny_graph, sample_weights=-np.ones(int(tiny_graph.train_mask.sum())))

    def test_fine_tune_runs_exact_epochs(self, tiny_graph):
        model = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=5)
        trainer = Trainer(model, TrainConfig(epochs=10, patience=None, track_best=False))
        trainer.fit(tiny_graph)
        result = trainer.fine_tune(tiny_graph, epochs=4)
        assert result.epochs_run == 4
        # The trainer's base config must be restored after fine-tuning.
        assert trainer.config.epochs == 10

    def test_fine_tune_lr_scale_validation(self, tiny_graph):
        model = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=6)
        trainer = Trainer(model, TrainConfig(epochs=2, patience=None))
        trainer.fit(tiny_graph)
        with pytest.raises(ValueError):
            trainer.fine_tune(tiny_graph, epochs=1, learning_rate_scale=0.0)

    def test_regularizer_is_applied(self, tiny_graph):
        """Training with the fairness regulariser lowers the bias term vs vanilla."""
        from repro.fairness.inform import bias_from_graph

        vanilla = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=7)
        Trainer(vanilla, TrainConfig(epochs=60, patience=None, track_best=False)).fit(tiny_graph)
        fair = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=7)
        Trainer(fair, TrainConfig(epochs=60, patience=None, track_best=False)).fit(
            tiny_graph, regularizers=[inform_regularizer(weight=100.0)]
        )
        bias_vanilla = bias_from_graph(
            vanilla.predict_proba(tiny_graph.features, tiny_graph.adjacency), tiny_graph
        )
        bias_fair = bias_from_graph(
            fair.predict_proba(tiny_graph.features, tiny_graph.adjacency), tiny_graph
        )
        assert bias_fair < bias_vanilla

    def test_adjacency_override_changes_training(self, tiny_graph):
        model = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=8)
        trainer = Trainer(model, TrainConfig(epochs=3, patience=None, track_best=False))
        result = trainer.fit(tiny_graph, adjacency_override=np.zeros_like(tiny_graph.adjacency))
        assert len(result.history["loss"]) == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(optimizer="rmsprop")
        with pytest.raises(ValueError):
            TrainConfig(patience=0)


class TestEvaluation:
    def test_predict_probabilities_and_labels(self, trained_gcn, tiny_graph):
        probabilities = predict_probabilities(trained_gcn, tiny_graph)
        labels = predict_labels(trained_gcn, tiny_graph)
        np.testing.assert_array_equal(labels, probabilities.argmax(axis=1))

    def test_evaluate_accuracy_custom_mask(self, trained_gcn, tiny_graph):
        mask = np.zeros(tiny_graph.num_nodes, dtype=bool)
        mask[tiny_graph.train_indices()] = True
        train_accuracy = evaluate_accuracy(trained_gcn, tiny_graph, mask=mask)
        assert 0.0 <= train_accuracy <= 1.0

    def test_evaluate_accuracy_requires_labels(self, trained_gcn, tiny_graph):
        unlabeled = tiny_graph.copy()
        unlabeled.labels = None
        with pytest.raises(ValueError):
            evaluate_accuracy(trained_gcn, unlabeled)
