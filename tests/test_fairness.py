"""Tests for the individual-fairness metric, regulariser and reweighting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fairness.inform import bias_from_graph, bias_metric, bias_tensor, inform_regularizer
from repro.fairness.metrics import (
    individual_fairness_report,
    lipschitz_violations,
    pairwise_prediction_distance,
)
from repro.fairness.reweighting import FairnessReweightingConfig, compute_fairness_weights
from repro.graphs.laplacian import laplacian
from repro.graphs.similarity import jaccard_similarity
from repro.influence.functions import InfluenceConfig
from repro.nn.tensor import Tensor


class TestBiasMetric:
    def test_identical_predictions_have_zero_bias(self, tiny_graph):
        predictions = np.tile(np.array([0.2, 0.3, 0.5]), (tiny_graph.num_nodes, 1))
        assert bias_from_graph(predictions, tiny_graph) == pytest.approx(0.0, abs=1e-12)

    def test_bias_matches_pairwise_formula(self):
        rng = np.random.default_rng(0)
        adjacency = np.zeros((6, 6))
        for i, j in [(0, 1), (1, 2), (3, 4), (4, 5), (2, 3)]:
            adjacency[i, j] = adjacency[j, i] = 1.0
        similarity = jaccard_similarity(adjacency)
        predictions = rng.random((6, 3))
        manual = 0.0
        for i in range(6):
            for j in range(6):
                manual += 0.5 * similarity[i, j] * np.sum((predictions[i] - predictions[j]) ** 2)
        assert bias_metric(predictions, similarity, normalize=False) == pytest.approx(manual)

    def test_normalized_smaller_than_raw(self, tiny_graph):
        rng = np.random.default_rng(1)
        predictions = rng.random((tiny_graph.num_nodes, 3))
        similarity = jaccard_similarity(tiny_graph.adjacency)
        raw = bias_metric(predictions, similarity, normalize=False)
        normalized = bias_metric(predictions, similarity, normalize=True)
        assert normalized < raw

    def test_bias_non_negative(self, tiny_graph):
        rng = np.random.default_rng(2)
        predictions = rng.random((tiny_graph.num_nodes, 4))
        assert bias_from_graph(predictions, tiny_graph) >= 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            bias_metric(np.zeros((3, 2)), np.zeros((4, 4)))

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_property_scaling_predictions_scales_bias(self, seed):
        rng = np.random.default_rng(seed)
        adjacency = np.zeros((5, 5))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[2, 3] = adjacency[3, 2] = 1.0
        similarity = jaccard_similarity(adjacency)
        predictions = rng.random((5, 2))
        base = bias_metric(predictions, similarity, normalize=False)
        doubled = bias_metric(2 * predictions, similarity, normalize=False)
        assert doubled == pytest.approx(4 * base, rel=1e-9, abs=1e-12)


class TestBiasTensorAndRegularizer:
    def test_bias_tensor_matches_metric(self, tiny_graph):
        rng = np.random.default_rng(3)
        predictions = rng.random((tiny_graph.num_nodes, 3))
        similarity = jaccard_similarity(tiny_graph.adjacency)
        lap = laplacian(similarity)
        tensor_value = bias_tensor(Tensor(predictions), lap).item()
        assert tensor_value == pytest.approx(bias_metric(predictions, similarity, normalize=False))

    def test_bias_tensor_gradient_flows(self, tiny_graph):
        similarity = jaccard_similarity(tiny_graph.adjacency)
        lap = laplacian(similarity)
        predictions = Tensor(
            np.random.default_rng(4).random((tiny_graph.num_nodes, 3)), requires_grad=True
        )
        bias_tensor(predictions, lap).backward()
        assert predictions.grad is not None
        assert np.any(predictions.grad != 0)

    def test_regularizer_returns_scalar_tensor(self, tiny_graph):
        regularizer = inform_regularizer(weight=10.0)
        logits = Tensor(np.random.default_rng(5).normal(size=(tiny_graph.num_nodes, 3)))
        value = regularizer(logits, tiny_graph)
        assert value.size == 1
        assert value.item() >= 0.0

    def test_regularizer_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            inform_regularizer(weight=0.0)


class TestFairnessDiagnostics:
    def test_pairwise_prediction_distance(self):
        predictions = np.array([[0.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        distances = pairwise_prediction_distance(predictions, np.array([[0, 1], [0, 2]]))
        np.testing.assert_allclose(distances, [np.sqrt(2.0), 0.0])

    def test_pairwise_distance_empty(self):
        assert pairwise_prediction_distance(np.zeros((3, 2)), np.zeros((0, 2))).size == 0

    def test_lipschitz_violations_counts(self):
        similarity = np.array([[0.0, 0.9], [0.9, 0.0]])
        far_predictions = np.array([[1.0, 0.0], [0.0, 1.0]])
        close_predictions = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert lipschitz_violations(far_predictions, similarity) == 1
        assert lipschitz_violations(close_predictions, similarity) == 0

    def test_report_keys(self, trained_gcn, tiny_graph):
        posteriors = trained_gcn.predict_proba(tiny_graph.features, tiny_graph.adjacency)
        report = individual_fairness_report(posteriors, tiny_graph)
        assert {"bias", "mean_similar_pair_distance", "lipschitz_violations"} <= set(report)
        assert report["num_similar_pairs"] > 0


class TestFairnessReweighting:
    @pytest.fixture(scope="class")
    def weights(self, trained_gcn, tiny_graph):
        config = FairnessReweightingConfig(
            influence=InfluenceConfig(damping=0.1, cg_iterations=8)
        )
        return compute_fairness_weights(trained_gcn, tiny_graph, config=config)

    def test_shapes_align_with_train_nodes(self, weights, tiny_graph):
        num_train = int(tiny_graph.train_mask.sum())
        assert weights.raw_weights.shape == (num_train,)
        assert weights.loss_multipliers.shape == (num_train,)
        assert weights.train_indices.shape == (num_train,)

    def test_raw_weights_in_box(self, weights):
        assert weights.raw_weights.min() >= -1.0 - 1e-6
        assert weights.raw_weights.max() <= 1.0 + 1e-6

    def test_multipliers_non_negative(self, weights):
        assert weights.loss_multipliers.min() >= 0.0

    def test_qclp_solution_feasible(self, weights, tiny_graph):
        num_train = int(tiny_graph.train_mask.sum())
        assert weights.qclp.feasible
        assert np.sum(weights.raw_weights**2) <= 0.9 * num_train * 1.001

    def test_predicted_bias_change_is_non_positive(self, weights):
        """The QCLP objective (predicted Δbias) must not be positive at the optimum."""
        assert weights.qclp.objective <= 1e-9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FairnessReweightingConfig(alpha=0.0)
        with pytest.raises(ValueError):
            FairnessReweightingConfig(beta=-0.1)
