"""Tests for the online inference serving subsystem (:mod:`repro.serve`).

Acceptance properties:

* **registry round-trip** — save/load reproduces GCN, GraphSAGE and GAT
  parameters bit-for-bit and guards against graph-fingerprint mismatches;
* **serve-vs-offline equivalence** — exhaustive-sampled served logits match
  the offline full-graph forward to 1e-8 on the dense and sparse backends,
  for GCN and GraphSAGE;
* **incremental updates** — ``add_edges`` / ``remove_edges`` / ``add_node``
  keep the session CSR identical to the dense structure, bump revisions, and
  never let the engine return a stale cached prediction (while untouched
  nodes keep hitting the cache);
* **batcher determinism** — responses are independent of request coalescing
  and thread interleaving, in exhaustive and keyed-sampled modes alike.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.gnn.models import build_model
from repro.gnn.trainer import TrainConfig, Trainer
from repro.graphs.perturb import add_edges as dense_add_edges
from repro.serve import (
    GraphSession,
    InferenceEngine,
    ModelRegistry,
    RequestBatcher,
    ServeConfig,
    graph_fingerprint,
)
from repro.sparse.backend import use_backend
from repro.sparse.csr import CSRMatrix


@pytest.fixture(scope="module")
def trained_models(tiny_graph):
    """One quickly trained model per architecture, shared by the module."""
    models = {}
    for name in ("gcn", "graphsage", "gat"):
        # rng=0 trains all three architectures NaN-free on the tiny graph
        # (full-batch SAGE is prone to the zero-row normalize_rows collapse
        # under some inits — the instability PR 3 fixed for the block path).
        model = build_model(
            name,
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        Trainer(model, TrainConfig(epochs=25, patience=None, track_best=False)).fit(
            tiny_graph
        )
        model.eval()
        models[name] = model
    return models


def _fresh_graph(tiny_graph):
    return tiny_graph.copy()


def _absent_pairs(graph, count, seed=0):
    """``count`` non-adjacent node pairs (valid targets for add_edges)."""
    return graph.non_edge_sample(count, np.random.default_rng(seed))


# --------------------------------------------------------------------- #
# Model registry
# --------------------------------------------------------------------- #
class TestModelRegistry:
    @pytest.mark.parametrize("name", ["gcn", "graphsage", "gat"])
    def test_round_trip_state_and_predictions(self, tmp_path, tiny_graph, trained_models, name):
        registry = ModelRegistry(str(tmp_path))
        model = trained_models[name]
        version = registry.save(f"tiny-{name}", model, graph=tiny_graph)
        assert version == 1
        loaded, meta = registry.load(f"tiny-{name}", expect_graph=tiny_graph)
        assert meta["model_type"] == name
        original_state = model.state_dict()
        loaded_state = loaded.state_dict()
        assert sorted(original_state) == sorted(loaded_state)
        for key in original_state:
            assert np.array_equal(original_state[key], loaded_state[key])
        expected = model.predict_logits(tiny_graph.features, tiny_graph.adjacency)
        served = loaded.predict_logits(tiny_graph.features, tiny_graph.adjacency)
        np.testing.assert_allclose(served, expected, atol=0)

    def test_versions_increment_and_latest_wins(self, tmp_path, tiny_graph, trained_models):
        registry = ModelRegistry(str(tmp_path))
        assert registry.save("m", trained_models["gcn"]) == 1
        assert registry.save("m", trained_models["gcn"]) == 2
        assert registry.versions("m") == [1, 2]
        _, meta = registry.load("m")
        assert meta["version"] == 2
        assert registry.list_models() == ["m"]

    def test_fingerprint_mismatch_rejected(self, tmp_path, tiny_graph, trained_models):
        registry = ModelRegistry(str(tmp_path))
        registry.save("m", trained_models["gcn"], graph=tiny_graph)
        mutated = tiny_graph.copy()
        pair = _absent_pairs(mutated, 1)[0]
        mutated.adjacency[pair[0], pair[1]] = 1.0
        mutated.adjacency[pair[1], pair[0]] = 1.0
        mutated.bump_revision()
        with pytest.raises(ValueError, match="different structure"):
            registry.load("m", expect_graph=mutated)

    def test_fingerprint_representation_independent(self, tiny_graph):
        dense = graph_fingerprint(tiny_graph.adjacency)
        csr = graph_fingerprint(CSRMatrix.from_dense(tiny_graph.adjacency))
        assert dense == csr == graph_fingerprint(tiny_graph)

    def test_missing_entries_raise(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        with pytest.raises(KeyError):
            registry.load("absent")
        with pytest.raises(KeyError):
            registry.read_meta("absent", version=3)

    def test_version_claim_skips_occupied_directories(self, tmp_path, trained_models):
        """A concurrently claimed (uncommitted) version dir is never reused."""
        import os

        registry = ModelRegistry(str(tmp_path))
        os.makedirs(tmp_path / "m" / "v1")  # another process mid-save
        assert registry.save("m", trained_models["gcn"]) == 2
        assert registry.versions("m") == [2]
        _, meta = registry.load("m")
        assert meta["version"] == 2


# --------------------------------------------------------------------- #
# Serve-vs-offline equivalence (acceptance criterion)
# --------------------------------------------------------------------- #
class TestServeOfflineEquivalence:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("model_name", ["gcn", "graphsage"])
    def test_exhaustive_serving_matches_full_forward(
        self, tiny_graph, trained_models, backend, model_name
    ):
        model = trained_models[model_name]
        graph = _fresh_graph(tiny_graph)
        with use_backend(backend):
            offline = model.predict_logits(graph.features, graph.adjacency)
            session = GraphSession.from_graph(graph)
            engine = InferenceEngine(model, session)
            served = engine.predict_logits(np.arange(graph.num_nodes))
        np.testing.assert_allclose(served, offline, atol=1e-8)

    def test_single_node_and_repeated_requests(self, tiny_graph, trained_models):
        model = trained_models["gcn"]
        graph = _fresh_graph(tiny_graph)
        session = GraphSession.from_graph(graph)
        engine = InferenceEngine(model, session)
        offline = model.predict_logits(graph.features, graph.adjacency)
        row = engine.predict_logits(5)
        np.testing.assert_allclose(row[0], offline[5], atol=1e-8)
        batch = engine.predict_logits(np.array([5, 2, 5, 9]))
        np.testing.assert_allclose(batch[0], batch[2], atol=0)
        stats = engine.cache_stats
        assert stats.hits >= 1  # node 5 was already resident

    def test_gat_full_graph_fallback(self, tiny_graph, trained_models):
        model = trained_models["gat"]
        graph = _fresh_graph(tiny_graph)
        session = GraphSession.from_graph(graph)
        engine = InferenceEngine(model, session)
        offline = model.predict_logits(graph.features, graph.adjacency)
        served = engine.predict_logits(np.arange(12))
        np.testing.assert_allclose(served, offline[:12], atol=1e-8)
        # The fallback forward produced every row; they are all cached, so
        # requests outside the first miss batch hit without a new forward.
        others = engine.predict_logits(np.arange(12, graph.num_nodes))
        np.testing.assert_allclose(others, offline[12:], atol=1e-8)
        assert engine.cache_stats.misses == 12  # only the first batch missed
        with pytest.raises(ValueError, match="no sampled forward path"):
            InferenceEngine(model, session, ServeConfig(fanouts=(3, 3)))

    def test_proba_and_labels_consistent(self, tiny_graph, trained_models):
        model = trained_models["gcn"]
        session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        engine = InferenceEngine(model, session)
        nodes = np.arange(20)
        proba = engine.predict_proba(nodes)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)
        assert np.array_equal(proba.argmax(axis=1), engine.predict_labels(nodes))


# --------------------------------------------------------------------- #
# Sampled (keyed) serving
# --------------------------------------------------------------------- #
class TestSampledServing:
    def test_sampled_predictions_batch_independent(self, tiny_graph, trained_models):
        """A node's sampled logits do not depend on its request batch."""
        model = trained_models["gcn"]
        config = ServeConfig(fanouts=(3, 3), seed=11, cache=False)
        session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        engine = InferenceEngine(model, session, config)
        alone = engine.predict_logits(7)[0]
        grouped = engine.predict_logits(np.array([2, 7, 40, 88]))[1]
        np.testing.assert_allclose(alone, grouped, atol=0)

    def test_sampled_serving_deterministic_across_engines(
        self, tiny_graph, trained_models
    ):
        model = trained_models["gcn"]
        nodes = np.arange(30)
        outputs = []
        for _ in range(2):
            session = GraphSession.from_graph(_fresh_graph(tiny_graph))
            engine = InferenceEngine(
                model, session, ServeConfig(fanouts=(3, 3), seed=5)
            )
            outputs.append(engine.predict_logits(nodes))
        np.testing.assert_allclose(outputs[0], outputs[1], atol=0)

    def test_seed_changes_sample(self, tiny_graph, trained_models):
        model = trained_models["gcn"]
        session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        a = InferenceEngine(model, session, ServeConfig(fanouts=(2, 2), seed=0))
        b = InferenceEngine(model, session, ServeConfig(fanouts=(2, 2), seed=1))
        nodes = np.arange(session.num_nodes)
        assert not np.allclose(a.predict_logits(nodes), b.predict_logits(nodes))


# --------------------------------------------------------------------- #
# Incremental updates and cache invalidation (acceptance criterion)
# --------------------------------------------------------------------- #
class TestIncrementalUpdates:
    def test_session_csr_tracks_dense_structure(self, tiny_graph):
        graph = _fresh_graph(tiny_graph)
        session = GraphSession.from_graph(graph)
        added = _absent_pairs(graph, 4, seed=1)
        session.add_edges(added)
        assert session.csr.allclose(graph.adjacency)
        assert graph.csr() is session.csr  # attach_csr keeps the O(m) view
        removed = graph.edge_list()[:5]
        session.remove_edges(removed)
        assert session.csr.allclose(graph.adjacency)
        reference = dense_add_edges(tiny_graph.adjacency, added)
        for i, j in removed:
            reference[i, j] = reference[j, i] = 0.0
        assert session.csr.allclose(reference)

    def test_mutations_bump_revision_and_version(self, tiny_graph):
        graph = _fresh_graph(tiny_graph)
        session = GraphSession.from_graph(graph)
        revision, version = session.revision, session.version
        session.add_edges(_absent_pairs(graph, 1))
        assert session.revision > revision and session.version == version + 1
        assert graph.revision == session.revision

    def test_no_stale_predictions_after_add_edges(self, tiny_graph, trained_models):
        """The stale-embedding regression test of the acceptance criteria."""
        model = trained_models["gcn"]
        graph = _fresh_graph(tiny_graph)
        session = GraphSession.from_graph(graph)
        engine = InferenceEngine(model, session)
        nodes = np.arange(graph.num_nodes)
        before = engine.predict_logits(nodes)  # cache fully warm
        pairs = _absent_pairs(graph, 3, seed=2)
        session.add_edges(pairs)
        after = engine.predict_logits(nodes)
        offline = model.predict_logits(graph.features, graph.adjacency)
        np.testing.assert_allclose(after, offline, atol=1e-8)
        # The mutation must actually change some predictions...
        assert not np.allclose(after, before, atol=1e-12)
        # ...and the endpoints' own logits must reflect the new structure.
        endpoint = int(pairs[0, 0])
        np.testing.assert_allclose(after[endpoint], offline[endpoint], atol=1e-8)

    def test_no_stale_predictions_after_remove_edges(self, tiny_graph, trained_models):
        model = trained_models["graphsage"]
        graph = _fresh_graph(tiny_graph)
        session = GraphSession.from_graph(graph)
        engine = InferenceEngine(model, session)
        nodes = np.arange(graph.num_nodes)
        engine.predict_logits(nodes)
        session.remove_edges(graph.edge_list()[:4])
        after = engine.predict_logits(nodes)
        offline = model.predict_logits(graph.features, graph.adjacency)
        np.testing.assert_allclose(after, offline, atol=1e-8)

    def test_untouched_nodes_keep_hitting_cache(self, tiny_graph, trained_models):
        model = trained_models["gcn"]
        graph = _fresh_graph(tiny_graph)
        session = GraphSession.from_graph(graph)
        engine = InferenceEngine(model, session)
        nodes = np.arange(graph.num_nodes)
        engine.predict_logits(nodes)
        hits_before = engine.cache_stats.hits
        session.add_edges(_absent_pairs(graph, 1, seed=3))
        stats = engine.cache_stats
        assert 0 < stats.invalidated < graph.num_nodes
        engine.predict_logits(nodes)
        assert engine.cache_stats.hits - hits_before > 0

    def test_dirty_set_covers_receptive_field_only(self, tiny_graph, trained_models):
        """Invalidation is the 2-hop ball of the endpoints, not the graph."""
        model = trained_models["gcn"]
        graph = _fresh_graph(tiny_graph)
        session = GraphSession.from_graph(graph)
        engine = InferenceEngine(model, session)
        engine.predict_logits(np.arange(graph.num_nodes))
        from repro.graphs.khop import khop_frontier

        pair = _absent_pairs(graph, 1, seed=4)
        old_csr = session.csr
        session.add_edges(pair)
        expected = np.union1d(
            khop_frontier(old_csr, pair.reshape(-1), 2),
            khop_frontier(session.csr, pair.reshape(-1), 2),
        )
        assert engine.cache_stats.invalidated == expected.size

    def test_add_node_served_consistently(self, tiny_graph, trained_models):
        model = trained_models["gcn"]
        graph = _fresh_graph(tiny_graph)
        session = GraphSession.from_graph(graph)
        engine = InferenceEngine(model, session)
        engine.predict_logits(np.arange(graph.num_nodes))
        node = session.add_node(graph.features[0], neighbors=[1, 2, 3])
        assert node == tiny_graph.num_nodes
        assert graph.num_nodes == tiny_graph.num_nodes + 1
        assert session.csr.allclose(graph.adjacency)
        served = engine.predict_logits(np.arange(session.num_nodes))
        offline = model.predict_logits(graph.features, graph.adjacency)
        np.testing.assert_allclose(served, offline, atol=1e-8)

    def test_detached_session_over_csr(self, tiny_graph, trained_models):
        """Sessions work without an attached Graph (benchmark-scale path)."""
        model = trained_models["gcn"]
        csr = CSRMatrix.from_dense(tiny_graph.adjacency)
        session = GraphSession(csr, tiny_graph.features)
        engine = InferenceEngine(model, session)
        nodes = np.arange(session.num_nodes)
        before = engine.predict_logits(nodes)
        np.testing.assert_allclose(
            before,
            model.predict_logits(tiny_graph.features, tiny_graph.adjacency),
            atol=1e-8,
        )
        pairs = _absent_pairs(tiny_graph, 2, seed=5)
        session.add_edges(pairs)
        after = engine.predict_logits(nodes)
        reference = model.predict_logits(
            tiny_graph.features, dense_add_edges(tiny_graph.adjacency, pairs)
        )
        np.testing.assert_allclose(after, reference, atol=1e-8)

    def test_invalid_mutations_rejected(self, tiny_graph):
        session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        with pytest.raises(ValueError, match="self-loops"):
            session.add_edges(np.array([[1, 1]]))
        with pytest.raises(ValueError, match="out of range"):
            session.remove_edges(np.array([[0, 10_000]]))
        with pytest.raises(ValueError, match="features_row"):
            session.add_node(np.zeros(3))

    def test_weighted_existing_edge_keeps_weight_in_both_views(self, tiny_graph):
        """Adding an existing weighted edge keeps its stored weight — in the
        CSR *and* the attached dense adjacency (they must never diverge)."""
        graph = _fresh_graph(tiny_graph)
        i, j = graph.edge_list()[0]
        graph.adjacency[i, j] = graph.adjacency[j, i] = 0.5
        graph.bump_revision()
        session = GraphSession.from_graph(graph)
        session.add_edges(np.array([[i, j]]))
        assert graph.adjacency[i, j] == 0.5
        assert session.csr.allclose(graph.adjacency)

    def test_failed_add_node_leaves_session_untouched(self, tiny_graph):
        """Regression: invalid neighbours must not grow any state."""
        graph = _fresh_graph(tiny_graph)
        session = GraphSession.from_graph(graph)
        n, revision, version = session.num_nodes, session.revision, session.version
        with pytest.raises(ValueError, match="existing node indices"):
            session.add_node(graph.features[0], neighbors=[n + 5])
        with pytest.raises(ValueError, match="existing node indices"):
            # the new node's own index is not a valid neighbour either
            session.add_node(graph.features[0], neighbors=[n])
        assert session.num_nodes == n
        assert session.features.shape[0] == n
        assert graph.num_nodes == n and graph.features.shape[0] == n
        assert session.revision == revision and session.version == version

    def test_late_store_under_stale_revision_never_resurrects(
        self, tiny_graph, trained_models
    ):
        """Regression: a miss computed over pre-mutation structure that lands
        *after* the mutation's invalidation must not become a hit when a
        later mutation revalidates the surviving entries."""
        from repro.serve.engine import LogitCache

        cache = LogitCache(maxsize=16)
        cache.store([5], 1, np.ones((1, 3)))
        cache.invalidate(np.array([5]), 2, expected_revision=1)  # 5 now dirty
        cache.store([5], 1, np.full((1, 3), 7.0))  # late store, old revision
        cache.invalidate(np.array([0]), 3, expected_revision=2)  # untouched by 5
        found, missing = cache.lookup([5], 3)
        assert missing == [5] and not found, "stale row was resurrected"


# --------------------------------------------------------------------- #
# Request batching
# --------------------------------------------------------------------- #
class TestRequestBatcher:
    def test_inline_flush_matches_engine(self, tiny_graph, trained_models):
        model = trained_models["gcn"]
        session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        engine = InferenceEngine(model, session)
        batcher = RequestBatcher(engine, max_batch_size=8)
        nodes = [3, 1, 3, 77, 12, 1]
        futures = [batcher.submit(node) for node in nodes]
        answered = batcher.flush()
        assert answered == len(nodes)
        expected = engine.predict_proba(np.asarray(nodes))
        for future, row in zip(futures, expected):
            np.testing.assert_allclose(future.result(), row, atol=0)
        assert batcher.stats.requests == len(nodes)

    @pytest.mark.parametrize("fanouts", [None, (3, 3)])
    def test_determinism_under_thread_executor(
        self, tiny_graph, trained_models, fanouts
    ):
        """Concurrent submitters + background drain = same answers as direct."""
        model = trained_models["gcn"]
        config = ServeConfig(fanouts=fanouts, seed=2)
        reference_session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        reference = InferenceEngine(model, reference_session, config)
        rng = np.random.default_rng(0)
        nodes = rng.integers(0, tiny_graph.num_nodes, size=120)
        expected = reference.predict_proba(nodes)

        session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        engine = InferenceEngine(model, session, config)
        batcher = RequestBatcher(engine, max_batch_size=16).start()
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = list(pool.map(batcher.submit, nodes.tolist()))
            rows = np.stack([future.result(timeout=30) for future in futures])
        finally:
            batcher.stop()
        np.testing.assert_allclose(rows, expected, atol=0)
        assert batcher.stats.requests == nodes.size

    def test_invalid_node_fails_alone(self, tiny_graph, trained_models):
        """A bad request must not poison the other requests in its batch."""
        model = trained_models["gcn"]
        session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        engine = InferenceEngine(model, session)
        batcher = RequestBatcher(engine, max_batch_size=8)
        good = batcher.submit(3)
        bad = batcher.submit(session.num_nodes)
        batcher.flush()
        np.testing.assert_allclose(
            good.result(), engine.predict_proba(np.array([3]))[0], atol=0
        )
        with pytest.raises(ValueError, match="out of bounds"):
            bad.result()

    def test_background_predict_and_stop_drains(self, tiny_graph, trained_models):
        model = trained_models["gcn"]
        session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        engine = InferenceEngine(model, session)
        batcher = RequestBatcher(engine, max_batch_size=4).start()
        try:
            row = batcher.predict(9, timeout=30)
        finally:
            batcher.stop()
        np.testing.assert_allclose(
            row, engine.predict_proba(np.array([9]))[0], atol=0
        )


# --------------------------------------------------------------------- #
# Registry concurrency + retention (cluster satellites)
# --------------------------------------------------------------------- #
def _concurrent_save(root: str) -> int:
    """Child-process body: register one model, return the claimed version."""
    from repro.gnn.models import build_model
    from repro.serve import ModelRegistry

    model = build_model(
        "gcn", in_features=4, num_classes=2, hidden_features=4, rng=0
    )
    return ModelRegistry(root).save("shared", model)


class TestRegistryConcurrency:
    def test_concurrent_saves_claim_distinct_versions(self, tmp_path):
        """mkdir-as-lock allocation: parallel savers never share a version."""
        import multiprocessing

        context = multiprocessing.get_context()
        with context.Pool(4) as pool:
            versions = pool.map(_concurrent_save, [str(tmp_path)] * 8)
        assert sorted(versions) == list(range(1, 9))
        registry = ModelRegistry(str(tmp_path))
        assert registry.versions("shared") == list(range(1, 9))
        # every claimed entry is fully committed and loadable
        for version in versions:
            model, meta = registry.load("shared", version=version)
            assert meta["version"] == version


class TestRegistryRetention:
    def _fill(self, root, count=5):
        registry = ModelRegistry(root)
        model = build_model(
            "gcn", in_features=4, num_classes=2, hidden_features=4, rng=0
        )
        for _ in range(count):
            registry.save("m", model)
        return registry

    def test_prune_keeps_newest_k(self, tmp_path):
        registry = self._fill(str(tmp_path))
        removed = registry.prune("m", keep_last=2)
        assert removed == [1, 2, 3]
        assert registry.versions("m") == [4, 5]
        # versions are never reused after a prune
        model = build_model(
            "gcn", in_features=4, num_classes=2, hidden_features=4, rng=0
        )
        assert registry.save("m", model) == 6

    def test_pinned_versions_survive(self, tmp_path):
        registry = self._fill(str(tmp_path))
        registry.pin("m", 2)
        assert registry.pinned_versions("m") == [2]
        assert registry.prune("m", keep_last=1) == [1, 3, 4]
        assert registry.versions("m") == [2, 5]
        registry.unpin("m", 2)
        assert registry.prune("m", keep_last=1) == [2]
        assert registry.versions("m") == [5]

    def test_latest_always_survives(self, tmp_path):
        registry = self._fill(str(tmp_path), count=3)
        assert registry.prune("m", keep_last=0) == [1, 2]
        assert registry.versions("m") == [3]
        _, meta = registry.load("m")
        assert meta["version"] == 3

    def test_pin_unknown_version_raises(self, tmp_path):
        registry = self._fill(str(tmp_path), count=1)
        with pytest.raises(KeyError):
            registry.pin("m", 9)
        registry.unpin("m", 9)  # unpin is a forgiving no-op

    def test_prune_validates_keep_last(self, tmp_path):
        registry = self._fill(str(tmp_path), count=1)
        with pytest.raises(ValueError, match="keep_last"):
            registry.prune("m", keep_last=-1)


# --------------------------------------------------------------------- #
# Fused-plan serving counters and the GAT flush amortisation
# --------------------------------------------------------------------- #
class TestPlanServing:
    def test_cache_stats_always_an_object(self, tiny_graph, trained_models):
        """With caching disabled the stats still carry the plan counters."""
        session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        engine = InferenceEngine(
            trained_models["gcn"], session, ServeConfig(cache=False)
        )
        stats = engine.cache_stats
        assert stats.hits == 0 and stats.misses == 0 and stats.size == 0
        engine.predict_logits(np.arange(8))
        stats = engine.cache_stats
        assert stats.plans_recorded + stats.plan_replays == 1
        assert stats.hits == 0 and stats.misses == 0

    def test_gat_fallback_forward_once_per_flush(
        self, tiny_graph, trained_models, monkeypatch
    ):
        """A flush split into several miss batches pays one full forward."""
        model = trained_models["gat"]
        session = GraphSession.from_graph(_fresh_graph(tiny_graph))
        engine = InferenceEngine(model, session, ServeConfig(cache=False))
        calls = {"n": 0}
        original = type(model).predict_logits

        def counting(self, features, adjacency):
            calls["n"] += 1
            return original(self, features, adjacency)

        monkeypatch.setattr(type(model), "predict_logits", counting)
        batcher = RequestBatcher(engine, max_batch_size=4, coalesce_batches=1)
        for node in range(12):
            batcher.submit(node)
        assert batcher.flush() == 12
        assert batcher.stats.batches == 3
        assert calls["n"] == 1, "3 miss batches must share one forward"
        # A mutation drops the memo: the next batch pays exactly one more.
        session.add_edges(_absent_pairs(_fresh_graph(tiny_graph), 1, seed=9))
        engine.predict_logits(np.arange(6))
        engine.predict_logits(np.arange(6, 12))
        assert calls["n"] == 2
