"""Tests for modules, initialisation, optimisers, losses and parameter vectors."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.init import glorot_normal, glorot_uniform, kaiming_uniform, uniform, zeros
from repro.nn.losses import accuracy, cross_entropy, mse_loss, weighted_cross_entropy
from repro.nn.module import Dropout, Linear, Module, ModuleList, Parameter, Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.parameters import (
    gradients_to_vector,
    num_parameters,
    parameters_to_vector,
    vector_to_parameters,
)
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn.tensor import Tensor


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_gradients_flow(self):
        layer = Linear(4, 2, rng=0)
        out = layer(Tensor(np.ones((3, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestModuleMechanics:
    def test_named_parameters_nested(self):
        seq = Sequential(Linear(4, 8, rng=0), Linear(8, 2, rng=1))
        names = [name for name, _ in seq.named_parameters()]
        assert "layer0.weight" in names and "layer1.bias" in names

    def test_state_dict_roundtrip(self):
        layer = Linear(3, 3, rng=0)
        state = layer.state_dict()
        other = Linear(3, 3, rng=99)
        other.load_state_dict(state)
        np.testing.assert_array_equal(layer.weight.data, other.weight.data)

    def test_state_dict_mismatch_raises(self):
        layer = Linear(3, 3, rng=0)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((3, 3))})

    def test_state_dict_shape_mismatch_raises(self):
        layer = Linear(3, 3, rng=0)
        state = layer.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2, rng=0), Dropout(0.5, rng=0))
        seq.eval()
        assert all(not module.training for module in seq.modules())
        seq.train()
        assert all(module.training for module in seq.modules())

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=0)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_module_list(self):
        modules = ModuleList([Linear(2, 2, rng=0), Linear(2, 2, rng=1)])
        assert len(modules) == 2
        assert len(modules.parameters()) == 4
        assert isinstance(modules[1], Linear)

    def test_sequential_forward(self):
        seq = Sequential(Linear(4, 8, rng=0), Linear(8, 2, rng=1))
        out = seq(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(seq) == 2


class TestDropout:
    def test_eval_is_identity(self):
        layer = Dropout(0.9, rng=0)
        layer.eval()
        x = np.ones((4, 4))
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_training_scales_mean(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((2000,))
        out = layer(Tensor(x)).data
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestInit:
    def test_zeros(self):
        np.testing.assert_array_equal(zeros((2, 3)), np.zeros((2, 3)))

    def test_glorot_uniform_bound(self):
        weights = glorot_uniform((50, 50), rng=0)
        limit = np.sqrt(6.0 / 100)
        assert np.all(np.abs(weights) <= limit + 1e-12)

    def test_glorot_normal_std(self):
        weights = glorot_normal((200, 200), rng=0)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.15)

    def test_uniform_range(self):
        weights = uniform((100,), low=-0.2, high=0.2, rng=0)
        assert weights.min() >= -0.2 and weights.max() < 0.2

    def test_kaiming_shape(self):
        assert kaiming_uniform((10, 5), rng=0).shape == (10, 5)

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(glorot_uniform((3, 3), rng=5), glorot_uniform((3, 3), rng=5))


class TestOptimizers:
    def _quadratic_minimise(self, optimizer_factory, steps=200):
        target = np.array([1.0, -2.0, 3.0])
        param = Parameter(np.zeros(3))
        optimizer = optimizer_factory([param])
        for _ in range(steps):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        return param.data, target

    def test_sgd_converges(self):
        value, target = self._quadratic_minimise(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        value, target = self._quadratic_minimise(lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_adam_converges(self):
        value, target = self._quadratic_minimise(lambda p: Adam(p, lr=0.1), steps=400)
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            optimizer.zero_grad()
            param.grad = np.zeros(1)
            optimizer.step()
        assert abs(param.data[0]) < 10.0

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        targets = np.array([0, 1])
        expected = -np.log(np.exp(2.0) / (np.exp(2.0) + 1.0))
        assert cross_entropy(logits, targets).item() == pytest.approx(expected)

    def test_cross_entropy_reductions(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        targets = np.array([0, 1, 2, 0])
        per_sample = cross_entropy(logits, targets, reduction="none")
        total = cross_entropy(logits, targets, reduction="sum")
        mean = cross_entropy(logits, targets, reduction="mean")
        assert per_sample.shape == (4,)
        assert total.item() == pytest.approx(per_sample.data.sum())
        assert mean.item() == pytest.approx(per_sample.data.mean())

    def test_cross_entropy_rejects_bad_targets(self):
        logits = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            cross_entropy(logits, np.array([0, 5]))

    def test_weighted_cross_entropy_zero_weight_removes_sample(self):
        logits = Tensor(np.array([[5.0, 0.0], [0.0, 5.0]]))
        targets = np.array([1, 1])  # first sample is mispredicted
        uniform = weighted_cross_entropy(logits, targets, np.array([1.0, 1.0]))
        removed = weighted_cross_entropy(logits, targets, np.array([0.0, 1.0]))
        assert removed.item() < uniform.item()

    def test_weighted_cross_entropy_validates_shape(self):
        logits = Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            weighted_cross_entropy(logits, np.array([0, 1]), np.array([1.0]))

    def test_weighted_cross_entropy_rejects_negative(self):
        logits = Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            weighted_cross_entropy(logits, np.array([0, 1]), np.array([-1.0, 1.0]))

    def test_mse(self):
        predictions = Tensor(np.array([1.0, 2.0]))
        assert mse_loss(predictions, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty_is_nan(self):
        assert np.isnan(accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int)))


class TestParameterVectors:
    def test_roundtrip(self):
        layer = Linear(3, 2, rng=0)
        vector = parameters_to_vector(layer.parameters())
        assert vector.shape == (3 * 2 + 2,)
        vector_to_parameters(vector * 2.0, layer.parameters())
        np.testing.assert_allclose(parameters_to_vector(layer.parameters()), vector * 2.0)

    def test_wrong_size_raises(self):
        layer = Linear(3, 2, rng=0)
        with pytest.raises(ValueError):
            vector_to_parameters(np.zeros(3), layer.parameters())

    def test_gradients_to_vector_zero_for_missing(self):
        layer = Linear(2, 2, rng=0)
        grads = gradients_to_vector(layer.parameters())
        np.testing.assert_array_equal(grads, np.zeros(6))

    def test_num_parameters(self):
        assert num_parameters(Linear(4, 3, rng=0)) == 15


class TestSerialization:
    def test_save_and_load(self, tmp_path):
        layer = Linear(3, 3, rng=0)
        path = str(tmp_path / "weights.npz")
        save_state_dict(layer, path)
        other = Linear(3, 3, rng=1)
        other.load_state_dict(load_state_dict(path))
        np.testing.assert_array_equal(layer.weight.data, other.weight.data)


class TestFunctional:
    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(encoded, np.array([[1, 0, 0], [0, 0, 1]], dtype=float))

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(Tensor(np.random.default_rng(0).normal(size=(5, 4))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5))

    def test_normalize_rows(self):
        out = F.normalize_rows(Tensor(np.array([[3.0, 4.0]])))
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), [1.0])

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), p=1.5)


class TestRequiresGradToggle:
    def test_frozen_parameters_are_constants_to_the_tape(self):
        from repro.nn.autodiff import STATS

        layer = Linear(3, 2, rng=0)
        layer.requires_grad_(False)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        STATS.reset()
        out = layer(x)
        assert STATS.nodes == 0
        assert not out.requires_grad
        assert layer.weight._node is None

    def test_unfreeze_restores_gradient_flow(self):
        layer = Linear(3, 2, rng=0)
        layer.requires_grad_(False).requires_grad_(True)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestGatherRows:
    def test_matches_fancy_indexing(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 3)), requires_grad=True)
        index = np.array([4, 0, 0])
        out = F.gather_rows(x, index)
        np.testing.assert_array_equal(out.data, x.data[index])
        out.sum().backward()
        expected = np.zeros((5, 3))
        np.add.at(expected, index, 1.0)
        np.testing.assert_allclose(x.grad, expected)

    def test_out_of_range_raises(self):
        x = Tensor(np.ones((5, 3)))
        with pytest.raises(IndexError):
            F.gather_rows(x, np.array([5]))
        with pytest.raises(IndexError):
            F.gather_rows(x, np.array([-6]))
