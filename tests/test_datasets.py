"""Tests for the dataset surrogates, specs, splits and registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_SPECS,
    DatasetSpec,
    available_datasets,
    generate_surrogate,
    get_spec,
    load_dataset,
    make_fraction_split,
    make_planetoid_split,
)
from repro.datasets.synthetic import summarize
from repro.graphs.homophily import edge_homophily


class TestSpecs:
    def test_registry_contains_paper_datasets(self):
        assert set(available_datasets()) == {"cora", "citeseer", "pubmed", "enzymes", "credit"}

    def test_get_spec_case_insensitive(self):
        assert get_spec("CoRa").name == "cora"

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("imagenet")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec(
                name="bad", num_nodes=10, num_classes=5, num_features=4,
                average_degree=3.0, homophily=0.8,
            )
        with pytest.raises(ValueError):
            DatasetSpec(
                name="bad", num_nodes=500, num_classes=3, num_features=4,
                average_degree=3.0, homophily=0.8, feature_model="text",
            )

    def test_scaled_keeps_split_feasible(self):
        spec = get_spec("cora").scaled(0.1)
        graph = generate_surrogate(spec, seed=0)
        assert graph.train_mask.sum() == spec.num_classes * spec.train_per_class

    def test_homophily_ordering_matches_paper(self):
        assert get_spec("cora").homophily > get_spec("credit").homophily
        assert get_spec("pubmed").homophily > get_spec("enzymes").homophily


class TestGeneration:
    def test_deterministic_given_seed(self):
        first = load_dataset("cora", seed=3, scale=0.5)
        second = load_dataset("cora", seed=3, scale=0.5)
        np.testing.assert_array_equal(first.adjacency, second.adjacency)
        np.testing.assert_array_equal(first.features, second.features)
        np.testing.assert_array_equal(first.train_mask, second.train_mask)

    def test_different_seeds_differ(self):
        first = load_dataset("cora", seed=0, scale=0.5)
        second = load_dataset("cora", seed=1, scale=0.5)
        assert not np.array_equal(first.adjacency, second.adjacency)

    def test_masks_are_disjoint(self):
        graph = load_dataset("citeseer", seed=0, scale=0.5)
        overlap = graph.train_mask & graph.val_mask | graph.train_mask & graph.test_mask
        assert not overlap.any()

    def test_no_isolated_nodes(self):
        graph = load_dataset("pubmed", seed=0, scale=0.5)
        assert (graph.degrees > 0).all()

    @pytest.mark.parametrize("name", ["cora", "citeseer", "pubmed", "enzymes", "credit"])
    def test_homophily_calibration(self, name):
        graph = load_dataset(name, seed=0, scale=0.75)
        target = get_spec(name).homophily
        measured = edge_homophily(graph.adjacency, graph.labels)
        assert measured == pytest.approx(target, abs=0.1)

    def test_binary_feature_model_for_citation_graphs(self):
        graph = load_dataset("cora", seed=0, scale=0.5)
        assert set(np.unique(graph.features)) <= {0.0, 1.0}

    def test_summarize_reports_key_statistics(self, tiny_graph):
        stats = summarize(tiny_graph)
        assert stats["num_nodes"] == tiny_graph.num_nodes
        assert "edge_homophily" in stats and "intra_class_probability" in stats

    def test_metadata_marks_surrogate(self):
        graph = load_dataset("enzymes", seed=0, scale=0.5)
        assert graph.metadata["surrogate"] is True


class TestSplits:
    def test_planetoid_split_counts(self):
        labels = np.repeat(np.arange(4), 50)
        train, val, test = make_planetoid_split(labels, 10, 0.2, 0.3, rng=0)
        assert train.sum() == 40
        assert val.sum() == round(0.2 * 200)
        assert test.sum() == round(0.3 * 200)
        assert not (train & val).any() and not (train & test).any() and not (val & test).any()

    def test_planetoid_split_class_balance(self):
        labels = np.repeat(np.arange(3), 40)
        train, _, _ = make_planetoid_split(labels, 7, 0.1, 0.2, rng=0)
        for cls in range(3):
            assert (labels[train] == cls).sum() == 7

    def test_planetoid_split_insufficient_class(self):
        labels = np.array([0] * 3 + [1] * 30)
        with pytest.raises(ValueError):
            make_planetoid_split(labels, 5, 0.1, 0.1, rng=0)

    def test_planetoid_split_too_large_fractions(self):
        labels = np.repeat(np.arange(2), 30)
        with pytest.raises(ValueError):
            make_planetoid_split(labels, 20, 0.5, 0.5, rng=0)

    def test_fraction_split_partitions_everything(self):
        train, val, test = make_fraction_split(100, 0.6, 0.2, rng=0)
        assert train.sum() == 60 and val.sum() == 20 and test.sum() == 20
        assert (train.astype(int) + val.astype(int) + test.astype(int) == 1).all()

    def test_fraction_split_invalid(self):
        with pytest.raises(ValueError):
            make_fraction_split(10, 0.8, 0.4, rng=0)
