"""Tests for similarity matrices and Laplacians, including Lemma V.1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.khop import shortest_path_hops
from repro.graphs.laplacian import gcn_normalization, laplacian, normalized_laplacian
from repro.graphs.similarity import (
    cosine_feature_similarity,
    jaccard_for_pairs,
    jaccard_similarity,
    top_k_sparsify,
)
from repro.sparse.csr import CSRMatrix


def random_adjacency(num_nodes, edge_probability, seed):
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((num_nodes, num_nodes)) < edge_probability, k=1)
    adjacency = (upper | upper.T).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


class TestJaccard:
    def test_hand_computed_triangle_plus_leaf(self):
        # Nodes: 0-1, 1-2, 0-2 triangle and 2-3 leaf.
        adjacency = np.zeros((4, 4))
        for i, j in [(0, 1), (1, 2), (0, 2), (2, 3)]:
            adjacency[i, j] = adjacency[j, i] = 1.0
        similarity = jaccard_similarity(adjacency, include_self_loops=True)
        # With self-loops, N(0) = {0,1,2}, N(1) = {0,1,2}: identical → 1.0.
        assert similarity[0, 1] == pytest.approx(1.0)
        # N(3) = {2,3}, N(0) = {0,1,2}: intersection {2}, union {0,1,2,3}.
        assert similarity[0, 3] == pytest.approx(1 / 4)

    def test_symmetric_zero_diagonal(self):
        adjacency = random_adjacency(20, 0.2, seed=0)
        similarity = jaccard_similarity(adjacency)
        np.testing.assert_allclose(similarity, similarity.T)
        np.testing.assert_allclose(np.diag(similarity), 0.0)

    def test_values_in_unit_interval(self):
        similarity = jaccard_similarity(random_adjacency(15, 0.3, seed=1))
        assert similarity.min() >= 0.0 and similarity.max() <= 1.0

    def test_lemma_v1_support(self):
        """Lemma V.1: S_ij > 0 iff the pair is at most 2 hops apart."""
        adjacency = random_adjacency(25, 0.12, seed=2)
        similarity = jaccard_similarity(adjacency, include_self_loops=True)
        hops = shortest_path_hops(adjacency)
        n = adjacency.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                if hops[i, j] in (1, 2):
                    assert similarity[i, j] > 0, f"pair ({i},{j}) at hop {hops[i,j]}"
                else:
                    assert similarity[i, j] == 0, f"pair ({i},{j}) at hop {hops[i,j]}"

    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_property_symmetry_and_range(self, num_nodes, seed):
        adjacency = random_adjacency(num_nodes, 0.3, seed)
        similarity = jaccard_similarity(adjacency)
        assert np.allclose(similarity, similarity.T)
        assert similarity.min() >= 0.0 and similarity.max() <= 1.0


class TestJaccardCSR:
    """The CSR neighbour-intersection kernel must match the dense reference."""

    @pytest.mark.parametrize("include_self_loops", [True, False])
    @pytest.mark.parametrize(
        "num_nodes,density", [(1, 0.0), (6, 0.0), (20, 0.15), (30, 0.5)]
    )
    def test_bitwise_equal_to_dense(self, num_nodes, density, include_self_loops):
        adjacency = random_adjacency(num_nodes, density, seed=num_nodes)
        dense = jaccard_similarity(adjacency, include_self_loops=include_self_loops)
        sparse = jaccard_similarity(
            CSRMatrix.from_dense(adjacency), include_self_loops=include_self_loops
        )
        assert isinstance(sparse, CSRMatrix)
        # Intersection and union counts are exact small integers on both
        # paths, so the agreement is exact, not approximate.
        np.testing.assert_array_equal(sparse.to_dense(), dense)

    def test_sparse_support_is_two_hop(self):
        """Lemma V.1 on the CSR path: entries exist iff pairs are ≤ 2 hops apart."""
        adjacency = random_adjacency(25, 0.12, seed=2)
        sparse = jaccard_similarity(CSRMatrix.from_dense(adjacency))
        hops = shortest_path_hops(adjacency)
        support = sparse.to_dense() > 0
        expected = (hops == 1) | (hops == 2)
        np.testing.assert_array_equal(support, expected)

    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_dense(self, num_nodes, seed):
        adjacency = random_adjacency(num_nodes, 0.3, seed)
        dense = jaccard_similarity(adjacency)
        sparse = jaccard_similarity(CSRMatrix.from_dense(adjacency))
        np.testing.assert_array_equal(sparse.to_dense(), dense)


class TestJaccardForPairs:
    def test_matches_full_matrix_entries(self):
        adjacency = random_adjacency(18, 0.25, seed=4)
        full = jaccard_similarity(adjacency)
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, 18, size=(40, 2))
        values = jaccard_for_pairs(adjacency, pairs)
        np.testing.assert_array_equal(values, full[pairs[:, 0], pairs[:, 1]])

    def test_accepts_csr_input_and_empty_pairs(self):
        adjacency = random_adjacency(10, 0.3, seed=5)
        csr = CSRMatrix.from_dense(adjacency)
        assert jaccard_for_pairs(csr, np.empty((0, 2))).size == 0
        pairs = np.array([[0, 1], [2, 9]])
        np.testing.assert_array_equal(
            jaccard_for_pairs(csr, pairs), jaccard_for_pairs(adjacency, pairs)
        )

    def test_rejects_bad_pairs(self):
        adjacency = random_adjacency(5, 0.4, seed=6)
        with pytest.raises(ValueError):
            jaccard_for_pairs(adjacency, np.array([[0, 99]]))
        with pytest.raises(ValueError):
            jaccard_for_pairs(adjacency, np.array([0, 1, 2]))


class TestCosineSimilarity:
    def test_identical_rows(self):
        features = np.array([[1.0, 0.0], [2.0, 0.0], [0.0, 1.0]])
        similarity = cosine_feature_similarity(features)
        assert similarity[0, 1] == pytest.approx(1.0)
        assert similarity[0, 2] == pytest.approx(0.0)

    def test_zero_rows_do_not_produce_nan(self):
        features = np.array([[0.0, 0.0], [1.0, 1.0]])
        similarity = cosine_feature_similarity(features)
        assert np.all(np.isfinite(similarity))


class TestTopKSparsify:
    def test_keeps_at_most_k_per_row_before_symmetrisation(self):
        similarity = jaccard_similarity(random_adjacency(12, 0.4, seed=3))
        sparse = top_k_sparsify(similarity, k=2)
        assert np.count_nonzero(sparse) <= np.count_nonzero(similarity)
        np.testing.assert_allclose(sparse, sparse.T)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_sparsify(np.eye(3), k=0)


class TestLaplacians:
    def test_laplacian_rows_sum_to_zero(self):
        weights = jaccard_similarity(random_adjacency(10, 0.3, seed=4))
        lap = laplacian(weights)
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-12)

    def test_laplacian_quadratic_form_is_pairwise_distance(self):
        """Tr(Yᵀ L Y) = ½ Σ_ij W_ij ‖Y_i − Y_j‖² — the identity behind Definition 1."""
        rng = np.random.default_rng(0)
        weights = jaccard_similarity(random_adjacency(8, 0.4, seed=5))
        predictions = rng.normal(size=(8, 3))
        lap = laplacian(weights)
        trace = np.trace(predictions.T @ lap @ predictions)
        manual = 0.0
        for i in range(8):
            for j in range(8):
                manual += 0.5 * weights[i, j] * np.sum((predictions[i] - predictions[j]) ** 2)
        assert trace == pytest.approx(manual)

    def test_laplacian_psd(self):
        weights = jaccard_similarity(random_adjacency(10, 0.3, seed=6))
        eigenvalues = np.linalg.eigvalsh(laplacian(weights))
        assert eigenvalues.min() >= -1e-10

    def test_normalized_laplacian_eigenvalue_range(self):
        adjacency = random_adjacency(12, 0.3, seed=7)
        eigenvalues = np.linalg.eigvalsh(normalized_laplacian(adjacency))
        assert eigenvalues.min() >= -1e-10
        assert eigenvalues.max() <= 2.0 + 1e-10

    def test_gcn_normalization_symmetric_mode(self):
        adjacency = random_adjacency(6, 0.5, seed=8)
        propagation = gcn_normalization(adjacency, mode="symmetric")
        np.testing.assert_allclose(propagation, propagation.T)

    def test_gcn_normalization_left_mode_row_stochastic(self):
        adjacency = random_adjacency(6, 0.5, seed=9)
        propagation = gcn_normalization(adjacency, mode="left")
        np.testing.assert_allclose(propagation.sum(axis=1), 1.0)

    def test_gcn_normalization_unknown_mode(self):
        with pytest.raises(ValueError):
            gcn_normalization(np.zeros((2, 2)), mode="bogus")

    def test_laplacian_rejects_non_square(self):
        with pytest.raises(ValueError):
            laplacian(np.zeros((2, 3)))
