"""Tests for graph generators and structure-perturbation primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import (
    binary_class_features,
    ensure_connected_to_giant,
    gaussian_class_features,
    planted_partition_graph,
    sbm_probabilities_for_homophily,
    stochastic_block_model,
)
from repro.graphs.homophily import edge_homophily
from repro.graphs.perturb import (
    add_edges,
    heterophilic_candidates,
    random_edge_flip,
    remove_edges,
    symmetric_difference,
)


class TestSBM:
    def test_adjacency_is_valid(self):
        adjacency, labels = stochastic_block_model([30, 30], 0.2, 0.02, rng=0)
        assert adjacency.shape == (60, 60)
        np.testing.assert_allclose(adjacency, adjacency.T)
        assert np.all(np.diag(adjacency) == 0)
        assert set(np.unique(labels)) == {0, 1}

    def test_homophily_calibration(self):
        p, q = sbm_probabilities_for_homophily(400, 4, average_degree=6.0, homophily=0.8)
        adjacency, labels = stochastic_block_model([100] * 4, p, q, rng=0)
        measured = edge_homophily(adjacency, labels)
        assert measured == pytest.approx(0.8, abs=0.08)
        degree = adjacency.sum(axis=1).mean()
        assert degree == pytest.approx(6.0, rel=0.25)

    def test_infeasible_calibration_raises(self):
        with pytest.raises(ValueError):
            sbm_probabilities_for_homophily(20, 10, average_degree=50.0, homophily=0.99)

    def test_degree_heterogeneity_increases_variance(self):
        flat, _ = planted_partition_graph(300, 3, 6.0, 0.8, rng=0, degree_heterogeneity=0.0)
        heavy, _ = planted_partition_graph(300, 3, 6.0, 0.8, rng=0, degree_heterogeneity=0.8)
        assert heavy.sum(axis=1).var() > flat.sum(axis=1).var()

    def test_deterministic_given_seed(self):
        first, _ = planted_partition_graph(100, 2, 4.0, 0.7, rng=42)
        second, _ = planted_partition_graph(100, 2, 4.0, 0.7, rng=42)
        np.testing.assert_array_equal(first, second)

    def test_invalid_block_sizes(self):
        with pytest.raises(ValueError):
            stochastic_block_model([0, 10], 0.1, 0.01)

    @given(homophily=st.floats(min_value=0.5, max_value=0.95))
    @settings(max_examples=10, deadline=None)
    def test_probabilities_in_range(self, homophily):
        p, q = sbm_probabilities_for_homophily(300, 3, 5.0, homophily)
        assert 0 <= q <= p <= 1


class TestFeatureGenerators:
    def test_gaussian_features_separate_classes(self):
        labels = np.array([0] * 50 + [1] * 50)
        features = gaussian_class_features(labels, 16, class_separation=4.0, noise_scale=0.5, rng=0)
        mean_distance = np.linalg.norm(features[:50].mean(axis=0) - features[50:].mean(axis=0))
        assert mean_distance > 2.0

    def test_binary_features_are_binary(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        features = binary_class_features(labels, 40, rng=0)
        assert set(np.unique(features)) <= {0.0, 1.0}
        assert features.shape == (6, 40)

    def test_binary_features_carry_class_signal(self):
        labels = np.array([0] * 100 + [1] * 100)
        features = binary_class_features(labels, 60, active_fraction=0.02, class_signal=0.5, rng=0)
        class0 = features[:100].mean(axis=0)
        class1 = features[100:].mean(axis=0)
        # At least some words should differ strongly between the classes.
        assert np.max(np.abs(class0 - class1)) > 0.2

    def test_ensure_connected_removes_isolates(self):
        adjacency = np.zeros((5, 5))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        repaired = ensure_connected_to_giant(adjacency, rng=0)
        assert (repaired.sum(axis=1) > 0).all()
        np.testing.assert_allclose(repaired, repaired.T)


class TestPerturbPrimitives:
    def setup_method(self):
        self.adjacency = np.zeros((5, 5))
        for i, j in [(0, 1), (1, 2), (3, 4)]:
            self.adjacency[i, j] = self.adjacency[j, i] = 1.0

    def test_add_edges(self):
        result = add_edges(self.adjacency, np.array([[0, 4]]))
        assert result[0, 4] == 1.0 and result[4, 0] == 1.0
        assert self.adjacency[0, 4] == 0.0  # original untouched

    def test_remove_edges(self):
        result = remove_edges(self.adjacency, np.array([[0, 1]]))
        assert result[0, 1] == 0.0 and result[1, 0] == 0.0

    def test_add_rejects_self_loop(self):
        with pytest.raises(ValueError):
            add_edges(self.adjacency, np.array([[2, 2]]))

    def test_add_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            add_edges(self.adjacency, np.array([[0, 9]]))

    def test_random_edge_flip_zero_probability_is_identity(self):
        result = random_edge_flip(self.adjacency, 0.0, rng=0)
        np.testing.assert_array_equal(result, self.adjacency)

    def test_random_edge_flip_one_probability_is_complement(self):
        result = random_edge_flip(self.adjacency, 1.0, rng=0)
        complement = 1.0 - self.adjacency
        np.fill_diagonal(complement, 0.0)
        np.testing.assert_array_equal(result, complement)

    def test_random_edge_flip_symmetric(self):
        result = random_edge_flip(self.adjacency, 0.3, rng=0)
        np.testing.assert_allclose(result, result.T)
        assert np.all(np.diag(result) == 0)

    def test_heterophilic_candidates(self):
        predictions = np.array([0, 0, 1, 1, 1])
        candidates = heterophilic_candidates(self.adjacency, predictions, node=0)
        # Node 0 is connected to 1; candidates must be unconnected with a different predicted label.
        assert set(candidates) == {2, 3, 4}

    def test_heterophilic_candidates_validations(self):
        with pytest.raises(ValueError):
            heterophilic_candidates(self.adjacency, np.zeros(3, dtype=int), node=0)
        with pytest.raises(IndexError):
            heterophilic_candidates(self.adjacency, np.zeros(5, dtype=int), node=10)

    def test_symmetric_difference(self):
        other = add_edges(self.adjacency, np.array([[0, 4]]))
        assert symmetric_difference(self.adjacency, other) == 1
        assert symmetric_difference(self.adjacency, self.adjacency) == 0
