"""Tests for the experiment harness: presets, reporting, runner and experiments."""

import json

import numpy as np
import pytest

from repro.experiments.presets import PRESETS, ExperimentPreset, get_preset
from repro.experiments.reporting import ExperimentResult, format_table
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments import figures, tables
from repro.experiments.__main__ import build_parser, main


SMALL_PRESET = ExperimentPreset(
    name="test",
    dataset_scale=0.45,
    epochs=12,
    models=("gcn",),
    hidden_features=8,
    cg_iterations=3,
)


class TestPresets:
    def test_registered_presets(self):
        assert {"smoke", "quick", "full"} <= set(PRESETS)
        assert get_preset("SMOKE").name == "smoke"

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_preset("huge")

    def test_method_settings_uses_paper_dp_mechanisms(self):
        preset = get_preset("quick")
        assert preset.method_settings("cora").dp_mechanism == "edge_rand"
        assert preset.method_settings("pubmed").dp_mechanism == "lap_graph"

    def test_method_settings_epochs_follow_preset(self):
        settings = SMALL_PRESET.method_settings("cora", seed=5)
        assert settings.train.epochs == 12
        assert settings.model_seed == 5


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}]
        rendered = format_table(rows)
        lines = rendered.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_result_column_and_formatted(self):
        result = ExperimentResult("demo", rows=[{"x": 1.0}, {"x": 2.0}])
        assert result.column("x") == [1.0, 2.0]
        assert "demo" in result.formatted()

    def test_save_json(self, tmp_path):
        result = ExperimentResult("demo", rows=[{"x": 1.0}], metadata={"preset": "test"})
        path = tmp_path / "out" / "demo.json"
        result.save_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "demo"
        assert payload["rows"] == [{"x": 1.0}]


class TestRunner:
    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "table2", "table3", "table4", "table5",
            "figure4", "figure5", "figure6", "figure7", "proposition",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table9")

    def test_cli_parser(self):
        args = build_parser().parse_args(["table3", "--preset", "smoke", "--seed", "3"])
        assert args.experiment == "table3" and args.preset == "smoke" and args.seed == 3


class TestExperimentsRun:
    """End-to-end experiment runs at a deliberately tiny preset."""

    def test_table3_shape(self):
        result = tables.table3_accuracy_bias(SMALL_PRESET, seed=0, datasets=["cora"])
        assert len(result.rows) == 2
        methods = {row["method"] for row in result.rows}
        assert methods == {"vanilla", "reg"}
        for row in result.rows:
            assert 0.0 <= row["accuracy_percent"] <= 100.0
            assert row["bias"] >= 0.0

    def test_table2_correlations_in_range(self):
        result = tables.table2_influence_correlation(
            SMALL_PRESET, seed=0, datasets=["cora"], models=["gcn"]
        )
        assert len(result.rows) == 1
        assert -1.0 <= result.rows[0]["pearson_r"] <= 1.0

    def test_proposition_diagnostics(self):
        result = tables.proposition_tradeoff_diagnostics(SMALL_PRESET, seed=0, datasets=["cora"])
        row = result.rows[0]
        assert row["p_intra"] > row["q_inter"]
        assert 0.0 <= row["two_hop_ratio_empirical"] <= 1.0
        assert row["two_hop_ratio_theory"] >= 0.0

    def test_figure4_reports_eight_distances(self):
        result = figures.figure4_attack_auc(SMALL_PRESET, seed=0, datasets=["cora"])
        vanilla_row = next(row for row in result.rows if row["method"] == "vanilla")
        auc_columns = [key for key in vanilla_row if key.startswith("auc_") and key != "auc_mean"]
        assert len(auc_columns) == 8
        assert all(0.0 <= vanilla_row[c] <= 1.0 for c in auc_columns)

    def test_table4_and_figure5_rows(self):
        result = tables.table4_ppfr_effectiveness(
            SMALL_PRESET, seed=0, datasets=["cora"], models=["gcn"], methods=("reg", "ppfr")
        )
        assert {row["method"] for row in result.rows} == {"reg", "ppfr"}
        for row in result.rows:
            assert np.isfinite(row["delta_combined"])

    def test_run_experiment_dispatch(self):
        result = run_experiment("table3", preset=SMALL_PRESET, datasets=["cora"])
        assert result.experiment == "table3_accuracy_bias"

    def test_cli_main_smoke(self, capsys, tmp_path):
        exit_code = main(["proposition", "--preset", "smoke", "--output", str(tmp_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "proposition" in captured.out
        assert (tmp_path / "proposition.json").exists()


class TestSeedSweep:
    """Multi-seed replication with mean ± std reporting (PR-4 satellite)."""

    def _result(self, seed, value):
        from repro.experiments.reporting import ExperimentResult

        return ExperimentResult(
            "demo",
            rows=[
                {"dataset": "cora", "method": "vanilla", "accuracy": value},
                {"dataset": "cora", "method": "reg", "accuracy": value - 1.0},
            ],
            metadata={"preset": "test"},
        )

    def test_aggregate_mean_std_cells(self):
        from repro.experiments.reporting import aggregate_seed_results

        merged = aggregate_seed_results(
            [self._result(0, 80.0), self._result(1, 84.0)], seeds=[0, 1]
        )
        assert merged.rows[0]["dataset"] == "cora"
        assert merged.rows[0]["accuracy"] == "82.0000 ± 2.0000"
        assert merged.rows[1]["accuracy"] == "81.0000 ± 2.0000"
        assert merged.metadata["seeds"] == [0, 1]
        assert merged.metadata["rows_by_seed"]["1"][0]["accuracy"] == 84.0

    def test_aggregate_keeps_constant_numeric_columns_verbatim(self):
        from repro.experiments.reporting import ExperimentResult, aggregate_seed_results

        def result(acc):
            return ExperimentResult(
                "demo", rows=[{"dataset": "cora", "num_train_nodes": 120, "r": acc}]
            )

        merged = aggregate_seed_results([result(0.1), result(0.3)], seeds=[0, 1])
        # Constant descriptors stay numeric; only varying columns get ± cells.
        assert merged.rows[0]["num_train_nodes"] == 120
        assert merged.rows[0]["r"] == "0.2000 ± 0.1000"

    def test_aggregate_rejects_mismatched_keys(self):
        from repro.experiments.reporting import ExperimentResult, aggregate_seed_results

        first = self._result(0, 80.0)
        other = ExperimentResult(
            "demo",
            rows=[
                {"dataset": "pubmed", "method": "vanilla", "accuracy": 1.0},
                {"dataset": "pubmed", "method": "reg", "accuracy": 1.0},
            ],
        )
        with pytest.raises(ValueError, match="disagrees across seeds"):
            aggregate_seed_results([first, other], seeds=[0, 1])

    def test_run_experiment_seeds_end_to_end(self):
        from repro.experiments.runner import run_experiment_seeds

        result = run_experiment_seeds(
            "table3", seeds=[0, 1], preset=SMALL_PRESET, datasets=["cora"]
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert "±" in row["accuracy_percent"]
        assert set(result.metadata["rows_by_seed"]) == {"0", "1"}

    def test_run_experiment_seeds_validates(self):
        from repro.experiments.runner import run_experiment_seeds

        with pytest.raises(ValueError, match="distinct"):
            run_experiment_seeds("table3", seeds=[0, 0], preset=SMALL_PRESET)
        with pytest.raises(ValueError, match="non-empty"):
            run_experiment_seeds("table3", seeds=[], preset=SMALL_PRESET)

    def test_cli_seeds_flag(self):
        from repro.experiments.__main__ import build_parser, parse_seeds

        args = build_parser().parse_args(["table3", "--seeds", "0,1,2"])
        assert args.seeds == (0, 1, 2)
        assert parse_seeds("4") == (4,)
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--seeds", "1,1"])

    def test_cli_cache_dir_flag(self, tmp_path):
        from repro.experiments.__main__ import build_parser

        args = build_parser().parse_args(
            ["table3", "--cache-dir", str(tmp_path / "cache")]
        )
        assert args.cache_dir == str(tmp_path / "cache")
