"""Tests for graph serialisation."""

import numpy as np
import pytest

from repro.graphs.io import load_graph, save_graph


class TestGraphIO:
    def test_roundtrip_preserves_arrays(self, tiny_graph, tmp_path):
        path = str(tmp_path / "graph.npz")
        save_graph(tiny_graph, path)
        loaded = load_graph(path)
        np.testing.assert_array_equal(loaded.adjacency, tiny_graph.adjacency)
        np.testing.assert_array_equal(loaded.features, tiny_graph.features)
        np.testing.assert_array_equal(loaded.labels, tiny_graph.labels)
        np.testing.assert_array_equal(loaded.train_mask, tiny_graph.train_mask)
        assert loaded.name == tiny_graph.name

    def test_roundtrip_without_optional_fields(self, tmp_path):
        from repro.graphs.graph import Graph

        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        graph = Graph(adjacency=adjacency, features=np.ones((3, 2)))
        path = str(tmp_path / "bare.npz")
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.labels is None
        assert loaded.train_mask is None
        assert loaded.num_edges == 1

    def test_metadata_survives_as_json(self, tiny_graph, tmp_path):
        path = str(tmp_path / "meta.npz")
        save_graph(tiny_graph, path)
        loaded = load_graph(path)
        assert loaded.metadata["surrogate"] is True

    def test_creates_parent_directories(self, tiny_graph, tmp_path):
        path = str(tmp_path / "nested" / "dir" / "graph.npz")
        save_graph(tiny_graph, path)
        assert load_graph(path).num_nodes == tiny_graph.num_nodes
