"""Shared fixtures: small graphs and trained models reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.spec import DatasetSpec
from repro.datasets.synthetic import generate_surrogate
from repro.gnn.models import build_model
from repro.gnn.trainer import TrainConfig, Trainer


TINY_SPEC = DatasetSpec(
    name="tiny",
    num_nodes=120,
    num_classes=3,
    num_features=16,
    average_degree=4.0,
    homophily=0.8,
    feature_model="gaussian",
    degree_heterogeneity=0.2,
    train_per_class=10,
    val_fraction=0.15,
    test_fraction=0.3,
    class_separation=2.0,
    feature_noise=0.8,
)

WEAK_SPEC = DatasetSpec(
    name="tiny-weak",
    num_nodes=120,
    num_classes=2,
    num_features=12,
    average_degree=5.0,
    homophily=0.6,
    feature_model="gaussian",
    train_per_class=12,
    val_fraction=0.15,
    test_fraction=0.3,
)


@pytest.fixture(scope="session")
def tiny_graph():
    """A small homophilous surrogate graph shared by most tests."""
    return generate_surrogate(TINY_SPEC, seed=7)


@pytest.fixture(scope="session")
def weak_graph():
    """A small weak-homophily surrogate graph (Table V style)."""
    return generate_surrogate(WEAK_SPEC, seed=11)


@pytest.fixture(scope="session")
def tiny_train_config():
    return TrainConfig(epochs=60, patience=None, track_best=False)


@pytest.fixture(scope="session")
def trained_gcn(tiny_graph, tiny_train_config):
    """A GCN vanilla-trained on the tiny graph (session-scoped for speed)."""
    model = build_model(
        "gcn",
        in_features=tiny_graph.num_features,
        num_classes=tiny_graph.num_classes,
        hidden_features=8,
        rng=0,
    )
    Trainer(model, tiny_train_config).fit(tiny_graph)
    return model


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
