"""Tests for the attack distance metrics and the AUC implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.spatial import distance as sp_distance

from repro.privacy.auc import roc_auc_score, roc_curve
from repro.privacy.distances import (
    DISTANCE_METRICS,
    distance_matrix,
    pairwise_posterior_distance,
)

SCIPY_EQUIVALENTS = {
    "cosine": sp_distance.cosine,
    "euclidean": sp_distance.euclidean,
    "correlation": sp_distance.correlation,
    "chebyshev": sp_distance.chebyshev,
    "braycurtis": sp_distance.braycurtis,
    "canberra": sp_distance.canberra,
    "cityblock": sp_distance.cityblock,
    "sqeuclidean": sp_distance.sqeuclidean,
}


class TestDistances:
    def test_eight_metrics_registered(self):
        assert set(DISTANCE_METRICS) == set(SCIPY_EQUIVALENTS)

    @pytest.mark.parametrize("metric", sorted(DISTANCE_METRICS))
    def test_matches_scipy(self, metric):
        rng = np.random.default_rng(0)
        posteriors = rng.dirichlet(np.ones(4), size=10)
        pairs = np.array([[0, 1], [2, 3], [4, 5], [6, 7], [8, 9]])
        ours = pairwise_posterior_distance(posteriors, pairs, metric)
        reference = np.array(
            [SCIPY_EQUIVALENTS[metric](posteriors[i], posteriors[j]) for i, j in pairs]
        )
        np.testing.assert_allclose(ours, reference, atol=1e-10)

    @pytest.mark.parametrize("metric", sorted(DISTANCE_METRICS))
    def test_identical_rows_have_zero_distance(self, metric):
        posteriors = np.tile(np.array([0.25, 0.25, 0.5]), (4, 1))
        distances = pairwise_posterior_distance(posteriors, np.array([[0, 1], [2, 3]]), metric)
        np.testing.assert_allclose(distances, 0.0, atol=1e-12)

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            pairwise_posterior_distance(np.zeros((2, 2)), np.array([[0, 1]]), "hamming")

    def test_pair_index_validation(self):
        with pytest.raises(ValueError):
            pairwise_posterior_distance(np.zeros((2, 2)), np.array([[0, 5]]), "cosine")

    def test_empty_pairs(self):
        assert pairwise_posterior_distance(np.zeros((2, 2)), np.zeros((0, 2)), "cosine").size == 0

    def test_distance_matrix_zero_diagonal(self):
        rng = np.random.default_rng(1)
        posteriors = rng.dirichlet(np.ones(3), size=5)
        matrix = distance_matrix(posteriors, "euclidean")
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-12)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)

    def test_distance_matrix_blockwise_matches_pair_path(self):
        """Row-blocked evaluation equals scoring every pair explicitly."""
        rng = np.random.default_rng(2)
        posteriors = rng.dirichlet(np.ones(4), size=23)
        n = posteriors.shape[0]
        rows, cols = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        pairs = np.stack([rows.ravel(), cols.ravel()], axis=1)
        for metric in DISTANCE_METRICS:
            blocked = distance_matrix(posteriors, metric, block_size=7)
            reference = pairwise_posterior_distance(posteriors, pairs, metric)
            np.testing.assert_array_equal(blocked, reference.reshape(n, n))

    def test_distance_matrix_invalid_arguments(self):
        with pytest.raises(ValueError):
            distance_matrix(np.zeros((3, 2)), "cosine", block_size=0)
        with pytest.raises(KeyError):
            distance_matrix(np.zeros((3, 2)), "hamming")


class TestAUC:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(labels, scores) == 1.0

    def test_perfect_inverse(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(labels, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert roc_auc_score(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_are_midranked(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc_score(labels, scores) == pytest.approx(0.5)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.array([1, 1]), np.array([0.1, 0.2]))

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 2, size=60)
        if labels.sum() == 0 or labels.sum() == 60:
            labels[0] = 1 - labels[0]
        scores = rng.normal(size=60)
        positives = scores[labels == 1]
        negatives = scores[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in positives for n in negatives)
        expected = wins / (positives.size * negatives.size)
        assert roc_auc_score(labels, scores) == pytest.approx(expected)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_property_flipping_scores_flips_auc(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=30)
        if labels.sum() in (0, 30):
            labels[0] = 1 - labels[0]
        scores = rng.normal(size=30)
        auc = roc_auc_score(labels, scores)
        flipped = roc_auc_score(labels, -scores)
        assert auc + flipped == pytest.approx(1.0)

    def test_roc_curve_monotone(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, size=50)
        labels[0], labels[1] = 0, 1
        scores = rng.normal(size=50)
        fpr, tpr, thresholds = roc_curve(labels, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)
        assert thresholds[0] == np.inf
