"""Tests for the op-level kernel profiler (:mod:`repro.obs.profile`).

Acceptance properties:

* **hand-counted rooflines** — the matmul and spmm estimators reproduce the
  pencil-and-paper flop (``2·m·k·n`` / ``2·nnz·F``) and byte counts for
  known operand shapes, through the real dispatch hooks, not by calling the
  estimators directly;
* **memory high-water marks** — the autodiff tape meter equals the sum of
  node-output bytes for a hand-built graph, survives ``tape_reset`` as a
  monotonic mark, and lands in the registry as a ``profile.mem.*`` gauge;
* **disabled path is inert** — with profiling off (the default),
  ``active_profiler()`` is ``None`` and numerical results are bit-identical
  to a profiled run;
* **catapult export shape** — the Chrome-trace document has the required
  keys per complete event and puts metadata before timeline events;
* **cross-process stitching** — one profiled, traced request through a
  2-process-shard cluster yields ``kernel.*`` events from at least two
  distinct shard pids inside a single trace tree.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster import ShardRouter
from repro.datasets.synthetic import generate_scaling_graph
from repro.gnn.models import build_model
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.obs.chrome import collect_traces, spans_to_chrome
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.profile import (
    KernelProfiler,
    active_profiler,
    estimate_flops_bytes,
    format_top,
    use_profiler,
    use_profiling,
)
from repro.obs.snapshot import SnapshotEmitter
from repro.obs.trace import Tracer, use_tracer, use_tracing
from repro.serve import GraphSession, RequestBatcher
from repro.sparse.csr import CSRMatrix

NUM_NODES = 120
NUM_FEATURES = 8
NUM_CLASSES = 3


@pytest.fixture(scope="module")
def small_graph():
    csr, features, _ = generate_scaling_graph(
        NUM_NODES,
        num_classes=NUM_CLASSES,
        average_degree=5.0,
        num_features=NUM_FEATURES,
        seed=0,
    )
    return csr, features


@pytest.fixture(scope="module")
def gcn_model():
    model = build_model(
        "gcn",
        in_features=NUM_FEATURES,
        num_classes=NUM_CLASSES,
        hidden_features=8,
        rng=0,
    )
    model.eval()
    return model


# --------------------------------------------------------------------- #
# Roofline estimators, through the real dispatch hooks
# --------------------------------------------------------------------- #
class TestEstimators:
    def test_matmul_flops_and_bytes_hand_count(self):
        a = Tensor(np.ones((6, 4)))
        b = Tensor(np.ones((4, 3)))
        profiler = KernelProfiler()
        with use_profiler(profiler):
            (a @ b)
        row = profiler.table()["nn.matmul"]
        assert row["calls"] == 1
        assert row["flops"] == 2 * 6 * 4 * 3
        # a + b + out, float64
        assert row["bytes"] == 8 * (6 * 4 + 4 * 3 + 6 * 3)
        assert row["shapes"] == {"6x4,4x3": 1}

    def test_spmm_flops_and_bytes_hand_count(self):
        # 3x3 operator with 4 stored entries, dense (3, 5) operand.
        matrix = CSRMatrix(
            np.array([0, 2, 3, 4], dtype=np.int64),
            np.array([0, 2, 1, 0], dtype=np.int64),
            np.array([1.0, 2.0, 3.0, 4.0]),
            (3, 3),
        )
        dense = np.ones((3, 5))
        profiler = KernelProfiler()
        with use_profiler(profiler):
            out = matrix.matmul_dense(dense)
        row = profiler.table()["spmm"]
        assert row["calls"] == 1
        assert row["flops"] == 2 * matrix.nnz * 5
        assert row["bytes"] == (
            matrix.memory_bytes() + matrix.nnz * 5 * 8 + out.nbytes
        )

    def test_vjp_kernels_share_the_forward_cost_model(self):
        a = Tensor(np.ones((6, 4)), requires_grad=True)
        b = Tensor(np.ones((4, 3)), requires_grad=True)
        profiler = KernelProfiler()
        with use_profiler(profiler):
            (a @ b).sum().backward()
        table = profiler.table()
        assert table["vjp.matmul"]["calls"] == 2  # one fire per parent
        # vjp.matmul resolves to the same matmul estimator as nn.matmul.
        assert table["vjp.matmul"]["flops"] == 2 * (2 * 6 * 4 * 3)

    def test_unknown_kernel_falls_back_to_elementwise(self):
        out = np.ones((4, 4))
        flops, moved = estimate_flops_bytes("nn.someop", (out,), out)
        assert flops == out.size
        assert moved == 2 * out.nbytes

    def test_free_ops_cost_no_flops(self):
        out = np.ones((4, 4))
        flops, _ = estimate_flops_bytes("nn.transpose", (out,), out)
        assert flops == 0


# --------------------------------------------------------------------- #
# Self vs cumulative time
# --------------------------------------------------------------------- #
class TestSelfTime:
    def test_nested_kernels_subtract_child_time(self):
        profiler = KernelProfiler()
        with profiler.kernel("outer"):
            with profiler.kernel("inner"):
                time.sleep(0.02)
        table = profiler.table()
        outer, inner = table["outer"], table["inner"]
        assert inner["cum_s"] >= 0.02
        assert outer["cum_s"] >= inner["cum_s"]
        # Outer did no work of its own: its self time excludes the child.
        assert outer["self_s"] < inner["cum_s"] / 2
        assert inner["self_s"] == pytest.approx(inner["cum_s"])


# --------------------------------------------------------------------- #
# Memory high-water marks
# --------------------------------------------------------------------- #
class TestMemoryMarks:
    def test_marks_are_monotonic_per_name(self):
        profiler = KernelProfiler()
        profiler.memory("x", 10)
        profiler.memory("x", 5)
        profiler.memory("y", 7)
        assert profiler.memory_marks() == {"x": 10, "y": 7}

    def test_tape_meter_against_synthetic_pattern(self):
        profiler = KernelProfiler()
        profiler.tape_alloc(100)
        profiler.tape_alloc(200)
        profiler.tape_reset()
        profiler.tape_alloc(50)
        # High-water from the first tape (300) survives the reset; the
        # second tape never exceeded it.
        assert profiler.memory_marks()["autodiff.tape"] == 300

    def test_tape_high_water_equals_node_output_bytes(self):
        registry = MetricsRegistry()
        profiler = KernelProfiler()
        with use_metrics(registry), use_profiler(profiler):
            a = Tensor(np.ones((8, 4)), requires_grad=True)
            w = Tensor(np.ones((4, 3)), requires_grad=True)
            loss = F.relu(a @ w).sum()
            loss.backward()
        marks = profiler.memory_marks()
        # Node outputs on the tape: matmul (8,3) + relu (8,3) + sum scalar.
        expected_tape = 8 * (8 * 3) + 8 * (8 * 3) + 8
        assert marks["autodiff.tape"] == expected_tape
        # Resident at backward = tape outputs + the two leaf tensors.
        assert marks["autodiff.tape.resident"] == expected_tape + 8 * (
            8 * 4 + 4 * 3
        )
        gauges = {
            metric.name: metric.value
            for metric in registry.metrics()
            if metric.kind == "gauge"
        }
        assert gauges["profile.mem.autodiff.tape"] == expected_tape


# --------------------------------------------------------------------- #
# Disabled path
# --------------------------------------------------------------------- #
class TestDisabledPath:
    def test_active_profiler_is_none_by_default(self):
        assert active_profiler() is None

    def test_disabled_context_overrides_enabled_outer(self):
        with use_profiling(True):
            assert active_profiler() is not None
            with use_profiling(False):
                assert active_profiler() is None

    def test_results_identical_with_and_without_profiling(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(16, 8))
        w = rng.normal(size=(8, 4))

        def run():
            at = Tensor(a, requires_grad=True)
            loss = F.relu(at @ Tensor(w)).sum()
            loss.backward()
            return loss.data.copy(), at.grad.copy()

        plain_loss, plain_grad = run()
        with use_profiler(KernelProfiler()) as profiler:
            profiled_loss, profiled_grad = run()
        assert np.array_equal(plain_loss, profiled_loss)
        assert np.array_equal(plain_grad, profiled_grad)
        assert profiler.table()["nn.matmul"]["calls"] == 1


# --------------------------------------------------------------------- #
# Aggregation + rendering
# --------------------------------------------------------------------- #
class TestAggregation:
    def test_merge_table_sums_rows(self):
        left, right = KernelProfiler(), KernelProfiler()
        with use_profiler(left):
            Tensor(np.ones((2, 3))) @ Tensor(np.ones((3, 2)))
        with use_profiler(right):
            Tensor(np.ones((2, 3))) @ Tensor(np.ones((3, 2)))
        left.merge_table(right.table())
        left.merge_memory({"worker": 123})
        row = left.table()["nn.matmul"]
        assert row["calls"] == 2
        assert row["flops"] == 2 * (2 * 2 * 3 * 2)
        assert left.memory_marks()["worker"] == 123

    def test_format_top_ranks_by_self_time(self):
        profiler = KernelProfiler()
        with profiler.kernel("slow"):
            time.sleep(0.01)
        with profiler.kernel("fast"):
            pass
        rendered = format_top(profiler.table(), profiler.memory_marks())
        lines = rendered.splitlines()
        assert lines[1].startswith("slow")
        assert "(no kernel samples" in format_top({})


# --------------------------------------------------------------------- #
# Chrome-trace export
# --------------------------------------------------------------------- #
class TestChromeExport:
    def _profiled_snapshot(self, small_graph, gcn_model, tmp_path):
        from repro.serve.engine import InferenceEngine

        csr, features = small_graph
        engine = InferenceEngine(gcn_model, GraphSession(csr, features))
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_metrics(registry), use_tracer(tracer), use_tracing(True):
            with use_profiling(True):
                batcher = RequestBatcher(engine, max_batch_size=4)
                future = batcher.submit(3)
                batcher.flush()
                future.result()
            emitter = SnapshotEmitter(
                str(tmp_path / "obs.jsonl"), registry=registry, tracer=tracer
            )
            return emitter.snapshot()

    def test_catapult_document_shape(self, small_graph, gcn_model, tmp_path):
        snapshot = self._profiled_snapshot(small_graph, gcn_model, tmp_path)
        traces = collect_traces([snapshot])
        assert traces, "the profiled request must have produced a trace"
        doc = spans_to_chrome(traces)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert complete and metadata
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["dur"] >= 0.0
        # Metadata (process names) sorts ahead of every timeline event.
        assert events[: len(metadata)] == metadata
        kernels = [e for e in complete if e["cat"] == "kernel"]
        stages = [e for e in complete if e["cat"] == "stage"]
        assert kernels, "kernel events must reach the export"
        assert any(e["name"] == "kernel.plan.matmul" for e in kernels)
        assert any(e["name"] == "engine.predict" for e in stages)

    def test_single_trace_filter(self, small_graph, gcn_model, tmp_path):
        snapshot = self._profiled_snapshot(small_graph, gcn_model, tmp_path)
        traces = collect_traces([snapshot])
        tid = sorted(traces)[0]
        doc = spans_to_chrome(traces, trace_id=tid)
        exported = {
            e["args"]["trace"]
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        assert exported == {tid}


# --------------------------------------------------------------------- #
# Cross-process kernel stitching
# --------------------------------------------------------------------- #
class TestCrossProcessKernels:
    def test_kernel_events_from_two_shard_pids_in_one_trace(
        self, small_graph, gcn_model
    ):
        csr, features = small_graph
        session = GraphSession(csr, features)
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(True), use_profiling(True):
            with ShardRouter(
                gcn_model, session, 2, workers="process"
            ) as router:
                batcher = RequestBatcher(router, max_batch_size=8)
                owners = router.owners
                node_a = int(np.flatnonzero(owners == 0)[0])
                node_b = int(np.flatnonzero(owners == 1)[0])
                futures = [batcher.submit(node_a), batcher.submit(node_b)]
                batcher.flush()
                for future in futures:
                    future.result()
        best = max(
            (tracer.trace(tid) for tid in tracer.trace_ids()), key=len
        )
        kernels = [s for s in best if s["name"].startswith("kernel.")]
        assert kernels, "worker kernel events must ship back on replies"
        kernel_pids = {s["pid"] for s in kernels}
        import os

        worker_pids = kernel_pids - {os.getpid()}
        assert len(worker_pids) >= 2, (
            f"kernel events must come from both shard processes, got pids "
            f"{sorted(kernel_pids)}"
        )
        # Every kernel event hangs off a span of the same tree.
        span_ids = {s["span"] for s in best}
        assert all(k["parent"] in span_ids for k in kernels)
        # The compute kernels themselves are present, with roofline attrs.
        names = {s["name"] for s in kernels}
        assert "kernel.plan.matmul" in names
        sample = next(s for s in kernels if s["name"] == "kernel.plan.matmul")
        assert sample["attrs"]["flops"] > 0
