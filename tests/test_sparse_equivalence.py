"""Dense/sparse equivalence property tests.

The sparse backend is only admissible if it is numerically indistinguishable
from the dense reference.  These tests assert agreement of every paired
kernel on random graphs — including isolated-node and empty-graph edge
cases — plus forward *and* gradient agreement of ``spmm``, model-level
agreement after full training, and end-to-end agreement of the quick-preset
table3 / figure4 pipelines under forced backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.normalization import gcn_norm, left_norm, mean_aggregation_matrix
from repro.graphs.khop import shortest_path_hops
from repro.graphs.laplacian import laplacian, normalized_laplacian
from repro.nn.tensor import Tensor
from repro.sparse import CSRMatrix, spmm, use_backend
from repro.sparse.ops import shortest_path_hops_csr

ATOL = 1e-10


def random_graph(rng, n, density=0.1, isolated=()):
    """Random symmetric 0/1 adjacency with selected rows forced isolated."""
    upper = np.triu(rng.random((n, n)) < density, k=1)
    adjacency = (upper | upper.T).astype(np.float64)
    for node in isolated:
        adjacency[node, :] = 0.0
        adjacency[:, node] = 0.0
    return adjacency


GRAPH_CASES = [
    pytest.param(dict(n=1, density=0.0), id="single-node"),
    pytest.param(dict(n=8, density=0.0), id="empty-graph"),
    pytest.param(dict(n=25, density=0.15), id="small"),
    pytest.param(dict(n=60, density=0.05, isolated=(0, 17, 59)), id="isolated-nodes"),
    pytest.param(dict(n=80, density=0.4), id="dense-ish"),
]


@pytest.fixture(params=GRAPH_CASES)
def graph_pair(request, rng):
    adjacency = random_graph(rng, **request.param)
    return adjacency, CSRMatrix.from_dense(adjacency)


class TestKernelEquivalence:
    def test_gcn_norm(self, graph_pair):
        dense, csr = graph_pair
        np.testing.assert_allclose(gcn_norm(csr).to_dense(), gcn_norm(dense), atol=ATOL)

    def test_left_norm(self, graph_pair):
        dense, csr = graph_pair
        np.testing.assert_allclose(
            left_norm(csr).to_dense(), left_norm(dense), atol=ATOL
        )

    @pytest.mark.parametrize("include_self", [True, False])
    def test_mean_aggregation(self, graph_pair, include_self):
        dense, csr = graph_pair
        np.testing.assert_allclose(
            mean_aggregation_matrix(csr, include_self).to_dense(),
            mean_aggregation_matrix(dense, include_self),
            atol=ATOL,
        )

    def test_laplacian(self, graph_pair, rng):
        dense, _ = graph_pair
        # Laplacians apply to weighted similarity matrices; reweight the edges.
        weights = dense * (rng.random(dense.shape) + 0.5)
        weights = (weights + weights.T) / 2.0
        csr = CSRMatrix.from_dense(weights)
        np.testing.assert_allclose(
            laplacian(csr).to_dense(), laplacian(weights), atol=ATOL
        )

    def test_normalized_laplacian(self, graph_pair, rng):
        dense, _ = graph_pair
        weights = dense * (rng.random(dense.shape) + 0.5)
        weights = (weights + weights.T) / 2.0
        csr = CSRMatrix.from_dense(weights)
        np.testing.assert_allclose(
            normalized_laplacian(csr).to_dense(),
            normalized_laplacian(weights),
            atol=ATOL,
        )

    def test_shortest_path_hops(self, graph_pair):
        dense, csr = graph_pair
        np.testing.assert_array_equal(
            shortest_path_hops_csr(csr), shortest_path_hops(dense)
        )


class TestSpmmAutodiff:
    def test_forward_matches_dense(self, graph_pair, rng):
        dense, csr = graph_pair
        x = rng.normal(size=(dense.shape[0], 6))
        np.testing.assert_allclose(
            spmm(csr, Tensor(x)).data, dense @ x, atol=ATOL
        )

    def test_gradient_matches_dense(self, graph_pair, rng):
        dense, csr = graph_pair
        n = dense.shape[0]
        x_sparse = Tensor(rng.normal(size=(n, 4)), requires_grad=True)
        x_dense = Tensor(x_sparse.data.copy(), requires_grad=True)
        operator = gcn_norm(csr)
        reference = Tensor(gcn_norm(dense))

        out_sparse = spmm(operator, x_sparse)
        out_dense = reference.matmul(x_dense)
        np.testing.assert_allclose(out_sparse.data, out_dense.data, atol=ATOL)

        grad = rng.normal(size=(n, 4))
        out_sparse.backward(grad)
        out_dense.backward(grad)
        np.testing.assert_allclose(x_sparse.grad, x_dense.grad, atol=ATOL)

    def test_gradient_through_composite_loss(self, rng):
        """spmm composes with downstream tape ops (softmax + sum)."""
        adjacency = random_graph(rng, 30, density=0.2)
        csr = CSRMatrix.from_dense(adjacency)
        x_sparse = Tensor(rng.normal(size=(30, 5)), requires_grad=True)
        x_dense = Tensor(x_sparse.data.copy(), requires_grad=True)

        loss_sparse = (spmm(gcn_norm(csr), x_sparse).softmax(axis=1) ** 2).sum()
        loss_dense = (
            (Tensor(gcn_norm(adjacency)).matmul(x_dense)).softmax(axis=1) ** 2
        ).sum()
        loss_sparse.backward()
        loss_dense.backward()
        np.testing.assert_allclose(x_sparse.grad, x_dense.grad, atol=ATOL)

    def test_no_densification(self, rng):
        """The structure gradient is never materialised: P stays CSR."""
        adjacency = random_graph(rng, 20, density=0.2)
        operator = gcn_norm(CSRMatrix.from_dense(adjacency))
        x = Tensor(rng.normal(size=(20, 3)), requires_grad=True)
        out = spmm(operator, x)
        out.backward(np.ones_like(out.data))
        assert isinstance(operator, CSRMatrix)
        assert isinstance(operator.T, CSRMatrix)
        assert x.grad is not None


class TestModelEquivalence:
    @pytest.mark.parametrize("model_name", ["gcn", "graphsage"])
    def test_trained_model_logits(self, tiny_graph, model_name):
        from repro.gnn.models import build_model
        from repro.gnn.trainer import TrainConfig, Trainer

        logits = {}
        for backend in ("dense", "sparse"):
            model = build_model(
                model_name,
                in_features=tiny_graph.num_features,
                num_classes=tiny_graph.num_classes,
                hidden_features=8,
                rng=0,
            )
            with use_backend(backend):
                Trainer(model, TrainConfig(epochs=20, patience=None)).fit(tiny_graph)
                logits[backend] = model.predict_logits(
                    tiny_graph.features, tiny_graph.adjacency
                )
        np.testing.assert_allclose(logits["dense"], logits["sparse"], atol=1e-8)


def _assert_rows_close(rows_a, rows_b, atol):
    assert len(rows_a) == len(rows_b)
    for a, b in zip(rows_a, rows_b):
        assert a.keys() == b.keys()
        for key, value in a.items():
            if isinstance(value, float):
                assert value == pytest.approx(b[key], abs=atol), key
            else:
                assert value == b[key], key


class TestPipelineEquivalence:
    """Acceptance criterion: quick-preset table3 / figure4 agree at 1e-8."""

    def test_table3_quick(self):
        from repro.experiments.tables import table3_accuracy_bias

        results = {}
        for backend in ("dense", "sparse"):
            with use_backend(backend):
                results[backend] = table3_accuracy_bias("quick", seed=0)
        _assert_rows_close(results["dense"].rows, results["sparse"].rows, atol=1e-8)

    def test_figure4_quick(self):
        from repro.experiments.figures import figure4_attack_auc

        results = {}
        for backend in ("dense", "sparse"):
            with use_backend(backend):
                results[backend] = figure4_attack_auc("quick", seed=0)
        _assert_rows_close(results["dense"].rows, results["sparse"].rows, atol=1e-8)
