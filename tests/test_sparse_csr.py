"""Unit tests for the dependency-free CSR container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix


def random_sparse(rng, n=40, m=None, density=0.1):
    m = n if m is None else m
    dense = rng.random((n, m)) * (rng.random((n, m)) < density)
    return dense


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = random_sparse(rng)
        csr = CSRMatrix.from_dense(dense)
        assert csr.shape == dense.shape
        assert csr.nnz == np.count_nonzero(dense)
        np.testing.assert_allclose(csr.to_dense(), dense)

    def test_from_dense_rectangular(self, rng):
        dense = random_sparse(rng, n=7, m=13, density=0.3)
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).to_dense(), dense)

    def test_from_coo_sums_duplicates(self):
        csr = CSRMatrix.from_coo(
            rows=[0, 0, 1], cols=[2, 2, 0], data=[1.0, 2.5, 4.0], shape=(2, 3)
        )
        expected = np.array([[0.0, 0.0, 3.5], [4.0, 0.0, 0.0]])
        np.testing.assert_allclose(csr.to_dense(), expected)
        assert csr.nnz == 2

    def test_from_edges_symmetric(self):
        edges = np.array([[0, 1], [1, 2]])
        csr = CSRMatrix.from_edges(edges, num_nodes=4)
        dense = np.zeros((4, 4))
        dense[0, 1] = dense[1, 0] = dense[1, 2] = dense[2, 1] = 1.0
        np.testing.assert_allclose(csr.to_dense(), dense)

    def test_from_edges_directed_and_weighted(self):
        edges = np.array([[0, 1], [2, 0]])
        csr = CSRMatrix.from_edges(
            edges, num_nodes=3, weights=[2.0, 3.0], symmetric=False
        )
        dense = np.zeros((3, 3))
        dense[0, 1] = 2.0
        dense[2, 0] = 3.0
        np.testing.assert_allclose(csr.to_dense(), dense)

    def test_from_edges_rejects_self_loops(self):
        with pytest.raises(ValueError, match="self-loops"):
            CSRMatrix.from_edges(np.array([[1, 1]]), num_nodes=3)

    def test_from_edges_empty(self):
        csr = CSRMatrix.from_edges(np.empty((0, 2), dtype=np.int64), num_nodes=5)
        assert csr.nnz == 0
        np.testing.assert_allclose(csr.to_dense(), np.zeros((5, 5)))

    def test_empty_matrix(self):
        csr = CSRMatrix.from_dense(np.zeros((0, 0)))
        assert csr.shape == (0, 0)
        assert csr.nnz == 0
        assert csr.to_dense().shape == (0, 0)

    def test_identity(self):
        np.testing.assert_allclose(CSRMatrix.identity(4).to_dense(), np.eye(4))
        np.testing.assert_allclose(
            CSRMatrix.identity(3, value=2.5).to_dense(), 2.5 * np.eye(3)
        )

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([0], [5], [1.0], shape=(2, 3))
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([-1], [0], [1.0], shape=(2, 3))


class TestStructure:
    def test_transpose(self, rng):
        dense = random_sparse(rng, n=9, m=17, density=0.25)
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.T.to_dense(), dense.T)
        # cached: same object on repeated access, and T of T round-trips
        assert csr.T is csr.transpose()

    def test_row_sums_and_diagonal(self, rng):
        dense = random_sparse(rng, n=12, density=0.3)
        np.fill_diagonal(dense, rng.random(12) * (rng.random(12) < 0.5))
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.row_sums(), dense.sum(axis=1))
        np.testing.assert_allclose(csr.diagonal(), np.diag(dense))

    def test_row_sums_with_empty_rows(self):
        dense = np.zeros((4, 4))
        dense[2, 1] = 3.0
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.row_sums(), [0.0, 0.0, 3.0, 0.0])

    def test_scaling(self, rng):
        dense = random_sparse(rng, n=8, density=0.4)
        csr = CSRMatrix.from_dense(dense)
        row_f = rng.random(8) + 0.5
        col_f = rng.random(8) + 0.5
        np.testing.assert_allclose(
            csr.scale_rows(row_f).to_dense(), dense * row_f[:, None]
        )
        np.testing.assert_allclose(
            csr.scale_cols(col_f).to_dense(), dense * col_f[None, :]
        )
        np.testing.assert_allclose(csr.scale(2.0).to_dense(), 2.0 * dense)

    def test_add_identity(self, rng):
        dense = random_sparse(rng, n=10, density=0.2)
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(
            csr.add_identity().to_dense(), dense + np.eye(10)
        )

    def test_add(self, rng):
        a = random_sparse(rng, n=6, density=0.4)
        b = random_sparse(rng, n=6, density=0.4)
        total = CSRMatrix.from_dense(a) + CSRMatrix.from_dense(b)
        np.testing.assert_allclose(total.to_dense(), a + b)


class TestProducts:
    def test_matmul_dense_matrix(self, rng):
        dense = random_sparse(rng, n=15, m=11, density=0.3)
        other = rng.normal(size=(11, 4))
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr @ other, dense @ other, atol=1e-12)

    def test_matmul_vector(self, rng):
        dense = random_sparse(rng, n=15, m=11, density=0.3)
        vec = rng.normal(size=11)
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr @ vec, dense @ vec, atol=1e-12)

    def test_matmul_with_empty_rows(self, rng):
        dense = np.zeros((5, 5))
        dense[0, 3] = 2.0
        dense[4, 0] = 1.0
        other = rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            CSRMatrix.from_dense(dense) @ other, dense @ other, atol=1e-12
        )

    def test_matmul_all_zero(self, rng):
        csr = CSRMatrix.from_dense(np.zeros((4, 4)))
        np.testing.assert_allclose(csr @ rng.normal(size=(4, 2)), np.zeros((4, 2)))

    def test_shape_mismatch(self, rng):
        csr = CSRMatrix.from_dense(np.eye(4))
        with pytest.raises(ValueError, match="shape mismatch"):
            csr @ rng.normal(size=(5, 2))

    def test_csr_csr_rejected(self):
        csr = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(TypeError):
            csr @ csr

    def test_memory_bytes_smaller_than_dense(self, rng):
        dense = random_sparse(rng, n=200, density=0.01)
        csr = CSRMatrix.from_dense(dense)
        assert csr.memory_bytes() < dense.nbytes


class TestIncrementalEdgeUpdates:
    """apply_edge_updates_csr / append_empty_node_csr (serving subsystem)."""

    def _random_adjacency(self, seed=0, n=50, density=0.1):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < density).astype(float)
        dense = np.triu(dense, 1)
        return dense + dense.T

    def test_add_and_remove_match_dense_reference(self):
        from repro.sparse.ops import apply_edge_updates_csr

        dense = self._random_adjacency()
        csr = CSRMatrix.from_dense(dense)
        add = np.array([[0, 1], [4, 9], [20, 45]])
        edges = np.stack(np.nonzero(np.triu(dense, 1)), axis=1)
        remove = edges[:6]
        updated = apply_edge_updates_csr(csr, add_pairs=add, remove_pairs=remove)
        reference = dense.copy()
        for i, j in add:
            reference[i, j] = reference[j, i] = 1.0
        for i, j in remove:
            reference[i, j] = reference[j, i] = 0.0
        assert updated.allclose(reference)
        # the original matrix is untouched (immutability convention)
        assert csr.allclose(dense)

    def test_redundant_updates_are_noops(self):
        from repro.sparse.ops import apply_edge_updates_csr

        dense = self._random_adjacency(seed=1)
        csr = CSRMatrix.from_dense(dense)
        edges = np.stack(np.nonzero(np.triu(dense, 1)), axis=1)
        non_edges = np.array([[i, j] for i in range(10) for j in range(i + 1, 10)
                              if dense[i, j] == 0][:4])
        # adding existing edges / removing absent ones changes nothing
        assert apply_edge_updates_csr(csr, add_pairs=edges[:3]).allclose(dense)
        assert apply_edge_updates_csr(csr, remove_pairs=non_edges).allclose(dense)
        assert apply_edge_updates_csr(csr) is csr

    def test_validation(self):
        from repro.sparse.ops import apply_edge_updates_csr

        csr = CSRMatrix.from_dense(self._random_adjacency())
        with pytest.raises(ValueError, match="self-loops"):
            apply_edge_updates_csr(csr, add_pairs=np.array([[3, 3]]))
        with pytest.raises(ValueError, match="out of range"):
            apply_edge_updates_csr(csr, remove_pairs=np.array([[0, 500]]))
        with pytest.raises(ValueError, match="shape"):
            apply_edge_updates_csr(csr, add_pairs=np.array([[0, 1, 2]]))

    def test_append_empty_node(self):
        from repro.sparse.ops import append_empty_node_csr, apply_edge_updates_csr

        dense = self._random_adjacency(seed=2, n=12)
        grown = append_empty_node_csr(CSRMatrix.from_dense(dense))
        assert grown.shape == (13, 13)
        expected = np.zeros((13, 13))
        expected[:12, :12] = dense
        assert grown.allclose(expected)
        connected = apply_edge_updates_csr(grown, add_pairs=np.array([[12, 0]]))
        expected[12, 0] = expected[0, 12] = 1.0
        assert connected.allclose(expected)

    def test_empty_graph_updates(self):
        from repro.sparse.ops import apply_edge_updates_csr

        empty = CSRMatrix.from_dense(np.zeros((5, 5)))
        updated = apply_edge_updates_csr(empty, add_pairs=np.array([[0, 4]]))
        reference = np.zeros((5, 5))
        reference[0, 4] = reference[4, 0] = 1.0
        assert updated.allclose(reference)


class TestRowSubsetAndSplice:
    """row_subset_csr / splice_rows_csr (cluster partition + halo sync kernels)."""

    def _random_adjacency(self, seed=0, n=40, density=0.12):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < density).astype(float)
        dense = np.triu(dense, 1)
        return dense + dense.T

    def test_row_subset_matches_dense_mask(self):
        from repro.sparse.ops import row_subset_csr

        dense = self._random_adjacency()
        csr = CSRMatrix.from_dense(dense)
        rows = np.array([0, 3, 7, 21, 39], dtype=np.int64)
        subset = row_subset_csr(csr, rows)
        expected = np.zeros_like(dense)
        expected[rows] = dense[rows]
        assert subset.shape == csr.shape
        assert subset.allclose(expected)
        # kept rows are byte-identical slices of the original arrays
        for row in rows:
            start, stop = csr.indptr[row], csr.indptr[row + 1]
            s2, e2 = subset.indptr[row], subset.indptr[row + 1]
            np.testing.assert_array_equal(
                subset.indices[s2:e2], csr.indices[start:stop]
            )

    def test_row_subset_validation(self):
        from repro.sparse.ops import row_subset_csr

        csr = CSRMatrix.from_dense(self._random_adjacency())
        with pytest.raises(ValueError, match="sorted"):
            row_subset_csr(csr, np.array([5, 3]))
        with pytest.raises(ValueError, match="sorted"):
            row_subset_csr(csr, np.array([3, 3]))
        with pytest.raises(ValueError, match="out of bounds"):
            row_subset_csr(csr, np.array([100]))

    def test_splice_replaces_and_clears_rows(self):
        from repro.sparse.ops import splice_rows_csr

        dense = self._random_adjacency(seed=3)
        csr = CSRMatrix.from_dense(dense)
        other = self._random_adjacency(seed=4)
        rows = np.array([2, 11, 30], dtype=np.int64)
        replacement = np.zeros((rows.size, dense.shape[1]))
        replacement[0] = other[2]
        replacement[1] = other[11]
        # row 30 stays all-zero: a cleared (leaving-halo) row
        spliced = splice_rows_csr(csr, rows, CSRMatrix.from_dense(replacement))
        expected = dense.copy()
        expected[2] = other[2]
        expected[11] = other[11]
        expected[30] = 0.0
        assert spliced.allclose(expected)
        assert csr.allclose(dense)  # input untouched

    def test_splice_empty_rows_is_identity(self):
        from repro.sparse.ops import splice_rows_csr

        csr = CSRMatrix.from_dense(self._random_adjacency(seed=5))
        empty = np.empty(0, dtype=np.int64)
        none = CSRMatrix.from_dense(np.zeros((0, csr.shape[1])))
        assert splice_rows_csr(csr, empty, none) is csr

    def test_splice_validation(self):
        from repro.sparse.ops import splice_rows_csr

        csr = CSRMatrix.from_dense(self._random_adjacency(seed=6))
        rows = np.array([1, 2], dtype=np.int64)
        wrong = CSRMatrix.from_dense(np.zeros((3, csr.shape[1])))
        with pytest.raises(ValueError, match="shape"):
            splice_rows_csr(csr, rows, wrong)
