"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_adjacency,
    check_features,
    check_in_range,
    check_labels,
    check_mask,
    check_positive,
    check_probability,
    check_symmetric,
)


class TestCheckAdjacency:
    def test_accepts_valid(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        out = check_adjacency(adjacency)
        assert out.dtype == np.float64

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            check_adjacency(np.zeros((2, 3)))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_adjacency(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_adjacency(np.array([[0.0, np.nan], [np.nan, 0.0]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_adjacency(np.zeros(4))


class TestCheckSymmetric:
    def test_accepts_symmetric(self):
        check_symmetric(np.eye(3))

    def test_rejects_asymmetric(self):
        matrix = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric(matrix)


class TestCheckFeatures:
    def test_row_count_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            check_features(np.zeros((3, 2)), num_nodes=4)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_features(np.array([[np.inf, 0.0]]))


class TestCheckLabels:
    def test_casts_float_integers(self):
        labels = check_labels(np.array([0.0, 1.0, 2.0]))
        assert labels.dtype == np.int64

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            check_labels(np.array([0.5, 1.0]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_labels(np.array([-1, 0]))

    def test_rejects_out_of_range_class(self):
        with pytest.raises(ValueError):
            check_labels(np.array([0, 3]), num_classes=3)


class TestScalarChecks:
    def test_probability_bounds(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)

    def test_positive_strict(self):
        assert check_positive(1.0) == 1.0
        with pytest.raises(ValueError):
            check_positive(0.0)

    def test_positive_non_strict(self):
        assert check_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(-1.0, strict=False)

    def test_in_range(self):
        assert check_in_range(0.3, 0.0, 1.0) == 0.3
        with pytest.raises(ValueError):
            check_in_range(2.0, 0.0, 1.0)


class TestCheckMask:
    def test_requires_bool(self):
        with pytest.raises(ValueError, match="boolean"):
            check_mask(np.array([0, 1]))

    def test_length_check(self):
        with pytest.raises(ValueError):
            check_mask(np.array([True, False]), num_nodes=3)
