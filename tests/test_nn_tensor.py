"""Autodiff correctness tests: analytic gradients vs numerical differentiation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor, concatenate, no_grad, stack


def numerical_gradient(function, value, eps=1e-6):
    """Central-difference gradient of a scalar-valued function of an array."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = function(value)
        flat[index] = original - eps
        minus = function(value)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, atol=1e-5):
    """Compare the autodiff gradient of ``build(tensor).sum()`` to numerics."""
    rng = np.random.default_rng(seed)
    value = rng.normal(size=shape)

    tensor = Tensor(value.copy(), requires_grad=True)
    out = build(tensor).sum()
    out.backward()
    analytic = tensor.grad

    numeric = numerical_gradient(lambda v: float(build(Tensor(v)).sum().data), value)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda x: x + 3.0, (3, 4))

    def test_mul(self):
        check_gradient(lambda x: x * x, (3, 4))

    def test_div(self):
        check_gradient(lambda x: x / 2.5, (2, 3))

    def test_rdiv(self):
        check_gradient(lambda x: 1.0 / (x * x + 2.0), (2, 3))

    def test_pow(self):
        check_gradient(lambda x: (x * x + 1.0) ** 1.5, (4,))

    def test_neg_sub(self):
        check_gradient(lambda x: -(x - 1.0), (5,))

    def test_exp_log(self):
        check_gradient(lambda x: ((x * x) + 0.5).log().exp(), (3, 3))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid(), (6,))

    def test_tanh(self):
        check_gradient(lambda x: x.tanh(), (6,))

    def test_relu(self):
        check_gradient(lambda x: (x + 0.05).relu(), (10,), seed=3)

    def test_leaky_relu(self):
        check_gradient(lambda x: (x + 0.05).leaky_relu(0.1), (10,), seed=3)

    def test_elu(self):
        check_gradient(lambda x: x.elu(), (10,), seed=4)

    def test_abs(self):
        check_gradient(lambda x: (x + 0.1).abs(), (8,), seed=5)

    def test_sqrt(self):
        check_gradient(lambda x: (x * x + 1.0).sqrt(), (5,))


class TestMatrixGradients:
    def test_matmul_left(self):
        rng = np.random.default_rng(0)
        other = rng.normal(size=(4, 2))
        check_gradient(lambda x: x.matmul(Tensor(other)), (3, 4))

    def test_matmul_right(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(3, 4))
        check_gradient(lambda x: Tensor(other).matmul(x), (4, 2))

    def test_transpose(self):
        check_gradient(lambda x: x.T * 2.0, (3, 5))

    def test_reshape(self):
        check_gradient(lambda x: x.reshape(6) * 3.0, (2, 3))

    def test_getitem_rows(self):
        index = np.array([0, 2, 2])
        check_gradient(lambda x: x[index] * 2.0, (4, 3))

    def test_softmax(self):
        check_gradient(lambda x: x.softmax(axis=1), (3, 4))

    def test_log_softmax(self):
        check_gradient(lambda x: x.log_softmax(axis=1), (3, 4))

    def test_masked_fill(self):
        mask = np.array([[True, False], [False, True]])
        check_gradient(lambda x: x.masked_fill(mask, -5.0), (2, 2))

    def test_concatenate(self):
        rng = np.random.default_rng(2)
        other = rng.normal(size=(2, 3))
        check_gradient(lambda x: concatenate([x, Tensor(other)], axis=0), (2, 3))

    def test_stack(self):
        rng = np.random.default_rng(2)
        other = rng.normal(size=(2, 3))
        check_gradient(lambda x: stack([x, Tensor(other)], axis=0), (2, 3))


class TestReductionGradients:
    def test_sum_all(self):
        check_gradient(lambda x: x * 1.0, (4, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: x.sum(axis=0), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda x: x.sum(axis=1, keepdims=True) * x, (3, 4))

    def test_mean(self):
        check_gradient(lambda x: x.mean(axis=1), (3, 4))

    def test_max(self):
        check_gradient(lambda x: x.max(axis=1), (3, 4), seed=9)


class TestBroadcasting:
    def test_row_vector_broadcast(self):
        rng = np.random.default_rng(0)
        row = rng.normal(size=(1, 4))
        check_gradient(lambda x: x + Tensor(row), (3, 4))

    def test_bias_gradient_accumulates(self):
        bias = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(np.ones((5, 3)))
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 5.0))

    def test_scalar_broadcast(self):
        scalar = Tensor(2.0, requires_grad=True)
        x = Tensor(np.ones((2, 3)))
        (x * scalar).sum().backward()
        assert scalar.grad == pytest.approx(6.0)

    @given(
        rows=st.integers(min_value=1, max_value=4),
        cols=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_broadcast_shapes_match(self, rows, cols):
        left = Tensor(np.ones((rows, cols)), requires_grad=True)
        right = Tensor(np.ones((1, cols)), requires_grad=True)
        (left * right).sum().backward()
        assert left.grad.shape == (rows, cols)
        assert right.grad.shape == (1, cols)


class TestGraphMechanics:
    def test_gradient_accumulation_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0
        y.backward()
        assert x.grad[0] == pytest.approx(2 * 2.0 + 3.0)

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.detach() * 2.0
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_constant_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_deep_chain_does_not_overflow(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 1.0
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_item_and_shape(self):
        x = Tensor(np.array([[3.0]]))
        assert x.item() == 3.0
        assert x.shape == (1, 1)
        assert x.ndim == 2
        assert x.size == 1


class TestNoGradKeepsRequiresGrad:
    """Regression: ``no_grad()`` must suppress recording, not the flag.

    The old tape cleared ``requires_grad`` at construction time inside a
    ``no_grad()`` scope, so parameters built under inference mode became
    silently untrainable.
    """

    def test_tensor_built_under_no_grad_keeps_flag(self):
        with no_grad():
            x = Tensor(np.ones(3), requires_grad=True)
        assert x.requires_grad

    def test_model_built_under_no_grad_trains(self):
        from repro.nn.losses import cross_entropy
        from repro.nn.module import Linear
        from repro.nn.optim import SGD

        with no_grad():
            model = Linear(4, 3, rng=0)
        assert model.weight.requires_grad and model.bias.requires_grad

        optimizer = SGD(model.parameters(), lr=0.1)
        before = model.weight.data.copy()
        rng = np.random.default_rng(0)
        logits = model(Tensor(rng.normal(size=(8, 4))))
        loss = cross_entropy(logits, rng.integers(0, 3, size=8))
        loss.backward()
        assert model.weight.grad is not None and np.any(model.weight.grad != 0)
        assert model.bias.grad is not None
        optimizer.step()
        assert np.any(model.weight.data != before)

    def test_ops_inside_no_grad_still_record_nothing(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0 + 1.0
        assert not y.requires_grad
        assert y._node is None


class TestStackConcatenateAxes:
    """Regression: ``stack(axis=-1)`` placed the new axis one position early."""

    @pytest.mark.parametrize("axis", [-1, -2, 0, 1, 2])
    def test_stack_matches_numpy(self, axis):
        rng = np.random.default_rng(0)
        arrays = [rng.normal(size=(2, 3)) for _ in range(4)]
        stacked = stack([Tensor(a) for a in arrays], axis=axis)
        np.testing.assert_array_equal(stacked.data, np.stack(arrays, axis=axis))

    @pytest.mark.parametrize("axis", [-1, -2])
    def test_stack_negative_axis_backward(self, axis):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(2, 3))
        check_gradient(lambda x: stack([x, Tensor(other)], axis=axis), (2, 3))

    @pytest.mark.parametrize("axis", [-1, -2])
    def test_concatenate_negative_axis(self, axis):
        rng = np.random.default_rng(2)
        arrays = [rng.normal(size=(2, 3)) for _ in range(2)]
        out = concatenate([Tensor(a) for a in arrays], axis=axis)
        np.testing.assert_array_equal(out.data, np.concatenate(arrays, axis=axis))
        check_gradient(lambda x: concatenate([x, Tensor(arrays[1])], axis=axis), (2, 3))

    def test_stack_axis_out_of_range(self):
        with pytest.raises(np.exceptions.AxisError):
            stack([Tensor(np.ones((2, 3)))], axis=3)


class TestTupleAxisReductions:
    """Regression: ``mean(axis=(..))`` crashed indexing shape with a tuple."""

    def test_mean_tuple_axis_forward(self):
        rng = np.random.default_rng(0)
        value = rng.normal(size=(2, 3, 4))
        out = Tensor(value).mean(axis=(0, 2))
        np.testing.assert_allclose(out.data, value.mean(axis=(0, 2)))

    def test_mean_tuple_axis_backward(self):
        check_gradient(lambda x: x.mean(axis=(0, 2)), (2, 3, 4))

    def test_mean_negative_axis(self):
        check_gradient(lambda x: x.mean(axis=-1), (3, 4))

    def test_sum_tuple_axis(self):
        rng = np.random.default_rng(1)
        value = rng.normal(size=(2, 3, 4))
        out = Tensor(value).sum(axis=(1, 2))
        np.testing.assert_allclose(out.data, value.sum(axis=(1, 2)))
        check_gradient(lambda x: x.sum(axis=(1, 2)), (2, 3, 4))

    def test_mean_tuple_axis_keepdims(self):
        check_gradient(lambda x: x.mean(axis=(0, 1), keepdims=True), (2, 3))


class TestPowEdgeCases:
    """Regression: ``x ** 0`` backward emitted NaN at x = 0 (0 * x**-1)."""

    def test_pow_zero_exponent_at_zero_is_nan_free(self):
        x = Tensor(np.array([0.0, 1.0, -2.0]), requires_grad=True)
        y = x**0
        np.testing.assert_array_equal(y.data, np.ones(3))
        y.sum().backward()
        np.testing.assert_array_equal(x.grad, np.zeros(3))

    def test_pow_integer_exponent_at_zero(self):
        x = Tensor(np.array([0.0, 2.0]), requires_grad=True)
        (x**2).sum().backward()
        np.testing.assert_allclose(x.grad, np.array([0.0, 4.0]))

    def test_pow_one_exponent(self):
        x = Tensor(np.array([-1.0, 0.0, 3.0]), requires_grad=True)
        (x**1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))


class TestSparseAdjoints:
    """Gather gradients accumulate as lazy (index, values) sparse adjoints."""

    def test_duplicate_indices_accumulate(self):
        x = Tensor(np.zeros((4, 2)), requires_grad=True)
        index = np.array([1, 1, 3])
        x[index].sum().backward()
        expected = np.zeros((4, 2))
        np.add.at(expected, index, 1.0)
        np.testing.assert_array_equal(x.grad, expected)

    def test_slice_merges_into_dense_gradient_in_place(self):
        from repro.nn.autodiff import STATS

        x = Tensor(np.ones((6, 3)), requires_grad=True)
        hidden = x * 2.0
        loss = hidden.sum() + (hidden[:2] * 3.0).sum()
        STATS.reset()
        loss.backward()
        # The slice contribution scatters into the dense gradient that the
        # other branch already produced: no zeros-of-hidden densification.
        assert STATS.scatter_merges >= 1
        assert STATS.densifications == 0
        expected = np.full((6, 3), 2.0)
        expected[:2] += 6.0
        np.testing.assert_array_equal(x.grad, expected)

    def test_pure_sparse_leaf_densifies_once(self):
        from repro.nn.autodiff import STATS

        x = Tensor(np.ones((5, 2)), requires_grad=True)
        picked = x[np.array([0, 2])].sum() + x[np.array([1, 2])].sum()
        STATS.reset()
        picked.backward()
        # Two indexing ops, one zeros allocation (at .grad materialisation).
        assert STATS.densifications == 1
        expected = np.zeros((5, 2))
        expected[[0, 1]] = 1.0
        expected[2] = 2.0
        np.testing.assert_array_equal(x.grad, expected)

    def test_constant_gather_records_no_node(self):
        constant = Tensor(np.arange(12.0).reshape(4, 3))
        out = constant[np.array([0, 2])]
        assert not out.requires_grad
        assert out._node is None
