"""Autodiff correctness tests: analytic gradients vs numerical differentiation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor, concatenate, no_grad, stack


def numerical_gradient(function, value, eps=1e-6):
    """Central-difference gradient of a scalar-valued function of an array."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = function(value)
        flat[index] = original - eps
        minus = function(value)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, atol=1e-5):
    """Compare the autodiff gradient of ``build(tensor).sum()`` to numerics."""
    rng = np.random.default_rng(seed)
    value = rng.normal(size=shape)

    tensor = Tensor(value.copy(), requires_grad=True)
    out = build(tensor).sum()
    out.backward()
    analytic = tensor.grad

    numeric = numerical_gradient(lambda v: float(build(Tensor(v)).sum().data), value)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda x: x + 3.0, (3, 4))

    def test_mul(self):
        check_gradient(lambda x: x * x, (3, 4))

    def test_div(self):
        check_gradient(lambda x: x / 2.5, (2, 3))

    def test_rdiv(self):
        check_gradient(lambda x: 1.0 / (x * x + 2.0), (2, 3))

    def test_pow(self):
        check_gradient(lambda x: (x * x + 1.0) ** 1.5, (4,))

    def test_neg_sub(self):
        check_gradient(lambda x: -(x - 1.0), (5,))

    def test_exp_log(self):
        check_gradient(lambda x: ((x * x) + 0.5).log().exp(), (3, 3))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid(), (6,))

    def test_tanh(self):
        check_gradient(lambda x: x.tanh(), (6,))

    def test_relu(self):
        check_gradient(lambda x: (x + 0.05).relu(), (10,), seed=3)

    def test_leaky_relu(self):
        check_gradient(lambda x: (x + 0.05).leaky_relu(0.1), (10,), seed=3)

    def test_elu(self):
        check_gradient(lambda x: x.elu(), (10,), seed=4)

    def test_abs(self):
        check_gradient(lambda x: (x + 0.1).abs(), (8,), seed=5)

    def test_sqrt(self):
        check_gradient(lambda x: (x * x + 1.0).sqrt(), (5,))


class TestMatrixGradients:
    def test_matmul_left(self):
        rng = np.random.default_rng(0)
        other = rng.normal(size=(4, 2))
        check_gradient(lambda x: x.matmul(Tensor(other)), (3, 4))

    def test_matmul_right(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(3, 4))
        check_gradient(lambda x: Tensor(other).matmul(x), (4, 2))

    def test_transpose(self):
        check_gradient(lambda x: x.T * 2.0, (3, 5))

    def test_reshape(self):
        check_gradient(lambda x: x.reshape(6) * 3.0, (2, 3))

    def test_getitem_rows(self):
        index = np.array([0, 2, 2])
        check_gradient(lambda x: x[index] * 2.0, (4, 3))

    def test_softmax(self):
        check_gradient(lambda x: x.softmax(axis=1), (3, 4))

    def test_log_softmax(self):
        check_gradient(lambda x: x.log_softmax(axis=1), (3, 4))

    def test_masked_fill(self):
        mask = np.array([[True, False], [False, True]])
        check_gradient(lambda x: x.masked_fill(mask, -5.0), (2, 2))

    def test_concatenate(self):
        rng = np.random.default_rng(2)
        other = rng.normal(size=(2, 3))
        check_gradient(lambda x: concatenate([x, Tensor(other)], axis=0), (2, 3))

    def test_stack(self):
        rng = np.random.default_rng(2)
        other = rng.normal(size=(2, 3))
        check_gradient(lambda x: stack([x, Tensor(other)], axis=0), (2, 3))


class TestReductionGradients:
    def test_sum_all(self):
        check_gradient(lambda x: x * 1.0, (4, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: x.sum(axis=0), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda x: x.sum(axis=1, keepdims=True) * x, (3, 4))

    def test_mean(self):
        check_gradient(lambda x: x.mean(axis=1), (3, 4))

    def test_max(self):
        check_gradient(lambda x: x.max(axis=1), (3, 4), seed=9)


class TestBroadcasting:
    def test_row_vector_broadcast(self):
        rng = np.random.default_rng(0)
        row = rng.normal(size=(1, 4))
        check_gradient(lambda x: x + Tensor(row), (3, 4))

    def test_bias_gradient_accumulates(self):
        bias = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(np.ones((5, 3)))
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 5.0))

    def test_scalar_broadcast(self):
        scalar = Tensor(2.0, requires_grad=True)
        x = Tensor(np.ones((2, 3)))
        (x * scalar).sum().backward()
        assert scalar.grad == pytest.approx(6.0)

    @given(
        rows=st.integers(min_value=1, max_value=4),
        cols=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_broadcast_shapes_match(self, rows, cols):
        left = Tensor(np.ones((rows, cols)), requires_grad=True)
        right = Tensor(np.ones((1, cols)), requires_grad=True)
        (left * right).sum().backward()
        assert left.grad.shape == (rows, cols)
        assert right.grad.shape == (1, cols)


class TestGraphMechanics:
    def test_gradient_accumulation_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0
        y.backward()
        assert x.grad[0] == pytest.approx(2 * 2.0 + 3.0)

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.detach() * 2.0
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_constant_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_deep_chain_does_not_overflow(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 1.0
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_item_and_shape(self):
        x = Tensor(np.array([[3.0]]))
        assert x.item() == 3.0
        assert x.shape == (1, 1)
        assert x.ndim == 2
        assert x.size == 1
