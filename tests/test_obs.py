"""Tests for the telemetry subsystem (:mod:`repro.obs`).

Acceptance properties:

* **quantile accuracy** — the streaming log-bucket estimator tracks
  ``numpy.percentile`` within the bucket-resolution bound on seeded uniform,
  lognormal and heavy-tailed (Pareto) distributions;
* **cross-process stitching** — one miss request through a 2-process-shard
  cluster yields a *single* trace tree holding the named hot-path stages
  (batcher queue, router fan-out, worker handle, plan replay, cache store)
  with child spans recorded inside the worker processes and parent links
  intact;
* **disabled path is inert** — with telemetry off (the default), every span
  call returns the shared no-op singleton and nothing is ever recorded;
* **stats views stay intact** — the legacy dataclass surfaces
  (``BatcherStats`` & co.) read the registry counters, and the typed shard
  stats snapshot fails loudly on missing/renamed fields instead of silently
  summing zeros.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ShardRouter
from repro.cluster.worker import (
    SHARD_STATS_SCHEMA_VERSION,
    ClusterWorkerError,
    ShardStatsSnapshot,
)
from repro.datasets.synthetic import generate_scaling_graph
from repro.gnn.models import build_model
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    merge_histogram_states,
    use_metrics,
)
from repro.obs.slo import check_slo, parse_slo, resolve_slo_histograms
from repro.obs.snapshot import SnapshotEmitter, latest_snapshot, read_snapshots
from repro.obs.timer import Timer
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    current_context,
    render_trace,
    span,
    start_trace,
    use_tracer,
    use_tracing,
)
from repro.serve import GraphSession, RequestBatcher

NUM_NODES = 120
NUM_FEATURES = 8
NUM_CLASSES = 3


@pytest.fixture(scope="module")
def small_graph():
    csr, features, _ = generate_scaling_graph(
        NUM_NODES,
        num_classes=NUM_CLASSES,
        average_degree=5.0,
        num_features=NUM_FEATURES,
        seed=0,
    )
    return csr, features


@pytest.fixture(scope="module")
def gcn_model():
    model = build_model(
        "gcn",
        in_features=NUM_FEATURES,
        num_classes=NUM_CLASSES,
        hidden_features=8,
        rng=0,
    )
    model.eval()
    return model


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("x.hits", component="a")
        assert registry.counter("x.hits", component="a") is a
        b = registry.counter("x.hits", component="b")
        assert b is not a

    def test_totals_aggregate_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("x.hits", instance=1).inc(3)
        registry.counter("x.hits", instance=2).inc(4)
        registry.gauge("x.depth", instance=1).set(5)
        assert registry.totals()["x.hits"] == 7
        assert registry.totals()["x.depth"] == 5

    def test_use_metrics_scopes_the_active_registry(self):
        from repro.obs.metrics import active_metrics, global_metrics

        scoped = MetricsRegistry("scoped")
        with use_metrics(scoped):
            assert active_metrics() is scoped
            active_metrics().counter("scoped.only").inc()
        assert active_metrics() is global_metrics()
        assert "scoped.only" not in global_metrics().totals()
        assert scoped.totals()["scoped.only"] == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", component="t").inc(2)
        registry.histogram("h", component="t").observe(0.01)
        snap = registry.snapshot()
        assert snap["totals"]["c"] == 2
        assert snap["counters"]["c{component=t}"] == 2
        hist = snap["histograms"]["h{component=t}"]
        assert hist["count"] == 1
        assert hist["min"] <= hist["p50"] <= hist["max"]
        assert hist["buckets"]


# --------------------------------------------------------------------- #
# Streaming quantile estimator
# --------------------------------------------------------------------- #
class TestHistogramQuantiles:
    # Bucket growth is 10^(1/16) ≈ 1.155, so estimates are within ~±16%
    # of the true order statistic by construction; 0.2 leaves headroom for
    # the half-bucket rank interpolation.
    REL_TOL = 0.2

    @pytest.mark.parametrize(
        "name,sampler",
        [
            ("uniform", lambda rng: rng.uniform(1e-4, 5e-2, size=5000)),
            (
                "lognormal",
                lambda rng: rng.lognormal(mean=-6.0, sigma=1.0, size=5000),
            ),
            (
                "pareto",  # heavy tail: p99 far from the body
                lambda rng: 1e-4 * (1.0 + rng.pareto(1.5, size=5000)),
            ),
        ],
    )
    def test_matches_numpy_percentile(self, name, sampler):
        rng = np.random.default_rng(7)
        values = sampler(rng)
        hist = Histogram("lat")
        hist.observe_many(values)
        for q in (0.50, 0.90, 0.99):
            expected = float(np.percentile(values, q * 100))
            estimate = hist.quantile(q)
            assert estimate == pytest.approx(expected, rel=self.REL_TOL), (
                f"{name} p{int(q * 100)}: {estimate} vs {expected}"
            )

    def test_quantiles_clamped_to_observed_range(self):
        hist = Histogram("lat")
        hist.observe(3e-3)
        assert hist.quantile(0.0) == pytest.approx(3e-3, rel=self.REL_TOL)
        assert hist.quantile(1.0) == 3e-3  # max is tracked exactly

    def test_overflow_reports_tracked_max(self):
        hist = Histogram("lat", hi=1.0)
        hist.observe_many([0.5, 100.0, 200.0])
        assert hist.quantile(0.99) == 200.0

    def test_empty_histogram(self):
        hist = Histogram("lat")
        assert hist.quantile(0.5) == 0.0
        assert hist.snapshot()["count"] == 0


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #
class TestTracing:
    def test_disabled_path_returns_null_span_and_records_nothing(self):
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(False):
            assert span("anything") is NULL_SPAN
            assert start_trace("request") is NULL_SPAN
            assert current_context() is None
            with span("outer"):
                with span("inner") as inner:
                    inner.set(ignored=1)
        assert tracer.trace_ids() == []
        assert tracer.drain() == []

    def test_nesting_and_parent_links(self):
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(True):
            with tracer.span("root", new_trace=True) as root:
                with span("child") as child:
                    with span("grandchild"):
                        pass
            spans = tracer.trace(root.trace_id)
        by_name = {s["name"]: s for s in spans}
        assert set(by_name) == {"root", "child", "grandchild"}
        assert by_name["root"]["parent"] is None
        assert by_name["child"]["parent"] == by_name["root"]["span"]
        assert by_name["grandchild"]["parent"] == by_name["child"]["span"]

    def test_cross_thread_finish_and_active(self):
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(True):
            root = tracer.span("request", new_trace=True)
            with root.active():
                with span("stage"):
                    pass
            root.finish()
            root.finish()  # idempotent
            spans = tracer.trace(root.trace_id)
        assert {s["name"] for s in spans} == {"request", "stage"}
        stage = next(s for s in spans if s["name"] == "stage")
        assert stage["parent"] == root.span_id

    def test_render_trace_tree(self):
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(True):
            with tracer.span("root", new_trace=True) as root:
                with span("leaf"):
                    pass
        text = render_trace(tracer.trace(root.trace_id))
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  leaf")


# --------------------------------------------------------------------- #
# End-to-end: batcher → engine under one trace
# --------------------------------------------------------------------- #
class TestSingleProcessTrace:
    def test_miss_request_records_engine_stages(self, small_graph, gcn_model):
        csr, features = small_graph
        session = GraphSession(csr, features)
        from repro.serve import InferenceEngine

        engine = InferenceEngine(gcn_model, session)
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(True):
            batcher = RequestBatcher(engine, max_batch_size=8)
            future = batcher.submit(3)
            batcher.flush()
            future.result()
        tids = tracer.trace_ids()
        assert len(tids) == 1, "one submit, one trace"
        names = {s["name"] for s in tracer.trace(tids[0])}
        assert {
            "request",
            "batcher.queue",
            "batcher.engine_call",
            "engine.predict",
            "engine.cache_lookup",
            "engine.miss_coalesce",
            "engine.cache_store",
        } <= names

    def test_coalesced_followers_point_at_leader(self, small_graph, gcn_model):
        csr, features = small_graph
        session = GraphSession(csr, features)
        from repro.serve import InferenceEngine

        engine = InferenceEngine(gcn_model, session)
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(True):
            batcher = RequestBatcher(engine, max_batch_size=8)
            futures = [batcher.submit(n) for n in (1, 2, 3)]
            batcher.flush()
            for future in futures:
                future.result()
        tids = tracer.trace_ids()
        assert len(tids) == 3
        roots = [
            s
            for tid in tids
            for s in tracer.trace(tid)
            if s["name"] == "request"
        ]
        leaders = [s for s in roots if "coalesced_into" not in s["attrs"]]
        followers = [s for s in roots if "coalesced_into" in s["attrs"]]
        assert len(leaders) == 1
        assert len(followers) == 2
        assert all(
            f["attrs"]["coalesced_into"] == leaders[0]["trace"]
            for f in followers
        )


# --------------------------------------------------------------------- #
# Cross-process propagation through worker pipes
# --------------------------------------------------------------------- #
class TestCrossProcessTrace:
    def test_two_shard_trace_stitches_into_one_tree(
        self, small_graph, gcn_model
    ):
        csr, features = small_graph
        session = GraphSession(csr, features)
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(True):
            with ShardRouter(
                gcn_model, session, 2, workers="process"
            ) as router:
                batcher = RequestBatcher(router, max_batch_size=8)
                # Two nodes on different shards → fan-out touches both.
                owners = router.owners
                node_a = int(np.flatnonzero(owners == 0)[0])
                node_b = int(np.flatnonzero(owners == 1)[0])
                futures = [batcher.submit(node_a), batcher.submit(node_b)]
                batcher.flush()
                for future in futures:
                    future.result()
        # The leader's trace holds the whole tree.
        best = max(
            (tracer.trace(tid) for tid in tracer.trace_ids()), key=len
        )
        names = {s["name"] for s in best}
        assert {
            "request",
            "batcher.queue",
            "router.fanout",
            "shard.rpc",
            "worker.handle",
            "engine.predict",
            "plan.replay",
            "engine.cache_store",
        } <= names
        pids = {s["pid"] for s in best}
        assert len(pids) >= 3, "parent + two shard processes"
        # Worker-side spans carry IPC wait and link to the parent rpc spans.
        handles = [s for s in best if s["name"] == "worker.handle"]
        rpc_ids = {s["span"] for s in best if s["name"] == "shard.rpc"}
        assert len(handles) == 2
        for handle in handles:
            assert handle["parent"] in rpc_ids
            assert handle["attrs"]["ipc_wait_s"] >= 0
        # Every span reaches the single root through recorded parents.
        by_id = {s["span"]: s for s in best}
        root = next(s for s in best if s["parent"] is None)
        for s in best:
            walk = s
            while walk["parent"] is not None:
                walk = by_id[walk["parent"]]
            assert walk is root

    def test_mutation_fanout_traced(self, small_graph, gcn_model):
        csr, features = small_graph
        session = GraphSession(csr, features)
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(True):
            with ShardRouter(
                gcn_model, session, 2, workers="process"
            ) as router:
                dense = csr.to_dense()
                owners = router.owners
                pair = None
                for i in range(NUM_NODES):
                    for j in range(NUM_NODES):
                        if i != j and owners[i] != owners[j] and not dense[i, j]:
                            pair = (i, j)
                            break
                    if pair:
                        break
                session.add_edges(np.asarray([pair], dtype=np.int64))
        spans = [
            s
            for tid in tracer.trace_ids()
            for s in tracer.trace(tid)
        ]
        names = {s["name"] for s in spans}
        assert {"router.mutation_fanout", "router.halo_rebuild"} <= names
        mutate_handles = [
            s
            for s in spans
            if s["name"] == "worker.handle"
            and s["attrs"].get("command") == "mutate"
        ]
        assert len(mutate_handles) == 2

    def test_disabled_cluster_serving_records_nothing(
        self, small_graph, gcn_model
    ):
        csr, features = small_graph
        session = GraphSession(csr, features)
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(False):
            with ShardRouter(
                gcn_model, session, 2, workers="process"
            ) as router:
                router.predict_logits(np.arange(6))
        assert tracer.trace_ids() == []


# --------------------------------------------------------------------- #
# Typed shard stats
# --------------------------------------------------------------------- #
class TestShardStatsSnapshot:
    def _snapshot(self, **overrides):
        payload = dict(
            schema=SHARD_STATS_SCHEMA_VERSION,
            shard_id=0,
            owned=10,
            halo=3,
            requests=5,
            version=1,
            hits=2,
            misses=3,
            invalidated=0,
            cache_size=3,
            plans_recorded=1,
            plan_replays=4,
            plan_fallbacks=0,
            megabatches=5,
            megabatch_nodes=40,
        )
        payload.update(overrides)
        return ShardStatsSnapshot(**payload)

    def test_dict_style_access(self):
        snap = self._snapshot()
        assert snap["requests"] == 5
        assert "plan_replays" in snap
        assert "made_up_counter" not in snap

    def test_unknown_field_raises_key_error(self):
        with pytest.raises(KeyError, match="made_up_counter"):
            self._snapshot()["made_up_counter"]

    def test_schema_mismatch_fails_loudly(self):
        stale = self._snapshot(schema=SHARD_STATS_SCHEMA_VERSION + 1)
        with pytest.raises(ClusterWorkerError, match="schema mismatch"):
            stale.validate()

    def test_non_int_field_fails_loudly(self):
        broken = self._snapshot(requests=None)
        with pytest.raises(ClusterWorkerError, match="requests"):
            broken.validate()

    def test_validate_passes_current_schema(self):
        snap = self._snapshot()
        assert snap.validate() is snap


# --------------------------------------------------------------------- #
# Timer (unified repro.utils.timing.Timer)
# --------------------------------------------------------------------- #
class TestTimer:
    def test_backward_compatible_import(self):
        from repro.utils.timing import Timer as LegacyTimer

        assert LegacyTimer is Timer

    def test_context_manager_and_accumulation(self):
        timer = Timer("t")
        with timer:
            pass
        with timer:
            pass
        assert timer.count == 2
        assert timer.total >= timer.elapsed >= 0

    def test_reentrant_nesting(self):
        timer = Timer("outer")
        with timer:
            with timer:
                pass
            inner = timer.elapsed
        assert timer.count == 2
        assert timer.elapsed >= inner

    def test_decorator_form(self):
        timer = Timer("fn")

        @timer
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert add(1, 1) == 2
        assert timer.count == 2

    def test_feeds_named_histogram(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            timer = Timer("t", histogram="timed.section")
            with timer:
                pass
        hist = registry.histogram("timed.section")
        assert hist.count == 1

    def test_trace_spans_per_section(self):
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(True):
            timer = Timer("timed-stage", trace=True)
            with tracer.span("root", new_trace=True) as root:
                with timer:
                    pass
        names = {s["name"] for s in tracer.trace(root.trace_id)}
        assert "timed-stage" in names


# --------------------------------------------------------------------- #
# Snapshots + SLO
# --------------------------------------------------------------------- #
class TestSnapshots:
    def test_emit_and_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "obs" / "telemetry.jsonl")
        registry = MetricsRegistry()
        registry.counter("roundtrip.count").inc(3)
        tracer = Tracer()
        emitter = SnapshotEmitter(path, registry=registry, tracer=tracer)
        emitter.emit()
        emitter.emit(extra={"phase": "final"})
        snapshots = read_snapshots(path)
        assert len(snapshots) == 2
        assert snapshots[-1]["metrics"]["totals"]["roundtrip.count"] == 3
        assert snapshots[-1]["phase"] == "final"
        assert latest_snapshot(path)["pid"] > 0

    def test_corrupt_lines_skipped(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        registry = MetricsRegistry()
        SnapshotEmitter(path, registry=registry, tracer=Tracer()).emit()
        with open(path, "a") as handle:
            handle.write("{torn write\n")
        SnapshotEmitter(path, registry=registry, tracer=Tracer()).emit()
        assert len(read_snapshots(path)) == 2

    def test_missing_file_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--telemetry"):
            read_snapshots(str(tmp_path / "absent.jsonl"))

    def test_traces_serialised_in_snapshot(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        tracer = Tracer()
        with use_tracer(tracer), use_tracing(True):
            with tracer.span("root", new_trace=True) as root:
                with span("leaf"):
                    pass
        SnapshotEmitter(
            path, registry=MetricsRegistry(), tracer=tracer
        ).emit()
        traces = latest_snapshot(path)["traces"]
        assert root.trace_id in traces
        assert {s["name"] for s in traces[root.trace_id]} == {"root", "leaf"}


class TestSLO:
    def test_parse_millis_to_seconds(self):
        assert parse_slo("p99=50") == {"p99": 0.05}
        assert parse_slo("p50=10, p99=50") == {"p50": 0.01, "p99": 0.05}

    @pytest.mark.parametrize("bad", ["p77=10", "p99=oops", "p99=-1", ""])
    def test_parse_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def test_check_against_histogram(self):
        hist = Histogram("lat")
        hist.observe_many([0.001] * 90 + [0.2] * 10)
        assert check_slo(hist, {"p50": 0.05}) == []
        violations = check_slo(hist, {"p99": 0.01})
        assert violations and "p99" in violations[0]

    def test_check_against_snapshot_dict(self):
        snap = {"p50": 0.002, "p99": 0.08}
        assert check_slo(snap, {"p50": 0.05}) == []
        assert check_slo(snap, {"p99": 0.05})


# --------------------------------------------------------------------- #
# Histogram wire-state merging (cluster-wide quantiles)
# --------------------------------------------------------------------- #
class TestHistogramMerge:
    def test_state_roundtrip_preserves_quantiles(self):
        hist = Histogram("lat")
        hist.observe_many(np.random.default_rng(0).lognormal(size=500))
        clone = Histogram.from_state(hist.state())
        for q in (0.5, 0.9, 0.99):
            assert clone.quantile(q) == hist.quantile(q)
        assert clone.count == hist.count

    def test_merge_is_union_of_observations(self):
        fast, slow = Histogram("lat"), Histogram("lat")
        fast.observe_many([0.001] * 90)
        slow.observe_many([0.5] * 10)
        merged = merge_histogram_states([fast.state(), slow.state()])
        # The p99 of the union sees the slow shard's tail; a per-shard
        # average of p99s would not.
        assert merged.count == 100
        assert merged.quantile(0.99) >= 0.4
        assert merged.quantile(0.50) < 0.01

    def test_merge_accepts_live_histograms_and_states(self):
        left, right = Histogram("lat"), Histogram("lat")
        left.observe(0.01)
        right.observe(0.02)
        left.merge(right)
        left.merge(right.state())
        assert left.count == 3

    def test_merge_rejects_mismatched_bucket_config(self):
        left = Histogram("lat")
        right = Histogram("lat", lo=1e-3, hi=1e3)
        right.observe(0.5)
        with pytest.raises(ValueError, match="bucket mismatch"):
            left.merge(right.state())

    def test_empty_group_merges_to_none(self):
        assert merge_histogram_states([]) is None


# --------------------------------------------------------------------- #
# Named-histogram SLOs
# --------------------------------------------------------------------- #
class TestNamedSLO:
    def test_parse_named_keys(self):
        parsed = parse_slo("p99=50,p99:worker.compute=20")
        assert parsed == {"p99": 0.05, "p99:worker.compute": 0.02}

    def test_parse_rejects_unknown_quantile_with_target(self):
        with pytest.raises(ValueError, match="p77"):
            parse_slo("p77:worker.compute=20")

    def test_named_objective_checks_named_histogram(self):
        compute = Histogram("worker.compute")
        compute.observe_many([0.001] * 90 + [0.5] * 10)
        objectives = parse_slo("p99:worker.compute=600")
        assert check_slo(
            None, objectives, histograms={"worker.compute": compute}
        ) == []
        tight = parse_slo("p99:worker.compute=1")
        violations = check_slo(
            None, tight, histograms={"worker.compute": compute}
        )
        assert violations and "worker.compute" in violations[0]

    def test_missing_named_data_is_a_violation(self):
        objectives = parse_slo("p99:worker.compute=20")
        violations = check_slo(None, objectives, histograms={})
        assert violations == ["p99:worker.compute: no histogram data recorded"]

    def test_resolve_merges_label_sets_from_registry(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            for shard in (0, 1):
                hist = registry.histogram("worker.compute", shard=shard)
                hist.observe(0.01 * (shard + 1))
            resolved = resolve_slo_histograms(
                parse_slo("p99:worker.compute=100"), registry
            )
        assert resolved["worker.compute"].count == 2

    def test_bare_objectives_resolve_nothing(self):
        assert resolve_slo_histograms(parse_slo("p99=50")) == {}


# --------------------------------------------------------------------- #
# Schema v2 optional sections
# --------------------------------------------------------------------- #
class TestShardStatsOptionalSections:
    def _snapshot(self, **overrides):
        payload = dict(
            schema=SHARD_STATS_SCHEMA_VERSION,
            shard_id=0,
            owned=10,
            halo=3,
            requests=5,
            version=1,
            hits=2,
            misses=3,
            invalidated=0,
            cache_size=3,
            plans_recorded=1,
            plan_replays=4,
            plan_fallbacks=0,
            megabatches=5,
            megabatch_nodes=40,
        )
        payload.update(overrides)
        return ShardStatsSnapshot(**payload)

    def test_sections_default_to_none_and_validate(self):
        snap = self._snapshot()
        assert snap.histograms is None and snap.profile is None
        assert snap.validate() is snap

    def test_dict_sections_validate(self):
        snap = self._snapshot(
            histograms={"worker.compute": Histogram("worker.compute").state()},
            profile={"ops": {}, "memory": {}},
        )
        assert snap.validate() is snap

    @pytest.mark.parametrize("section", ["histograms", "profile"])
    def test_non_dict_section_fails_loudly(self, section):
        broken = self._snapshot(**{section: 7})
        with pytest.raises(ClusterWorkerError, match=section):
            broken.validate()


# --------------------------------------------------------------------- #
# Emitter atexit + torn-line tolerance
# --------------------------------------------------------------------- #
class TestEmitterRobustness:
    def test_atexit_flush_registered_until_clean_stop(self, tmp_path):
        import atexit

        path = str(tmp_path / "obs.jsonl")
        emitter = SnapshotEmitter(
            path, registry=MetricsRegistry(), tracer=Tracer()
        )
        emitter.start()
        assert emitter._atexit_registered
        emitter.stop()
        assert not emitter._atexit_registered
        # stop() already unregistered the hook; simulate what atexit would
        # have done for a crashed run and check the payload marker.
        emitter._atexit_emit()
        final = latest_snapshot(path)
        assert final["atexit"] is True and final["final"] is True
        atexit.unregister(emitter._atexit_emit)  # hygiene if re-registered

    def test_truncated_last_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "obs.jsonl")
        emitter = SnapshotEmitter(
            path, registry=MetricsRegistry(), tracer=Tracer()
        )
        emitter.emit({"marker": 1})
        full_line = open(path, encoding="utf-8").read()
        # Simulate a watcher racing the writer: half a line, no newline,
        # cut inside a multi-byte character.
        with open(path, "ab") as handle:
            handle.write(full_line.encode()[: len(full_line) // 2])
            handle.write("é".encode()[:1])
        snapshots = read_snapshots(path)
        assert len(snapshots) == 1
        assert snapshots[0]["marker"] == 1
