"""Tests for the PPFR core: perturbation, Δ metric, baselines and the pipeline."""

import numpy as np
import pytest

from repro.core.baselines import run_dp_fr, run_dp_reg, run_fr_only, run_pp_only, run_reg, run_vanilla
from repro.core.config import MethodSettings, PPFRConfig
from repro.core.delta import DeltaReport, delta_report, relative_change
from repro.core.perturbation import privacy_aware_perturbation
from repro.core.pipeline import METHOD_RUNNERS, run_all_methods, run_method
from repro.core.ppfr import run_ppfr
from repro.core.results import MethodEvaluation, MethodRun, evaluate_method
from repro.fairness.reweighting import FairnessReweightingConfig
from repro.gnn.models import build_model
from repro.gnn.trainer import TrainConfig
from repro.influence.functions import InfluenceConfig


def fast_settings(seed=0, gamma=0.2):
    """Small training budget settings used throughout the core tests."""
    return MethodSettings(
        train=TrainConfig(epochs=25, patience=None, track_best=False),
        fairness_weight=100.0,
        dp_epsilon=4.0,
        ppfr=PPFRConfig(
            gamma=gamma,
            fine_tune_fraction=0.2,
            reweighting=FairnessReweightingConfig(
                influence=InfluenceConfig(damping=0.1, cg_iterations=5)
            ),
            seed=seed,
        ),
        model_seed=seed,
    )


class TestConfig:
    def test_ppfr_config_validation(self):
        with pytest.raises(ValueError):
            PPFRConfig(gamma=-0.1)
        with pytest.raises(ValueError):
            PPFRConfig(fine_tune_fraction=0.0)
        with pytest.raises(ValueError):
            PPFRConfig(fine_tune_lr_scale=0.0)

    def test_fine_tune_epochs(self):
        config = PPFRConfig(fine_tune_fraction=0.15)
        assert config.fine_tune_epochs(200) == 30
        assert config.fine_tune_epochs(1) == 1

    def test_method_settings_validation(self):
        with pytest.raises(ValueError):
            MethodSettings(fairness_weight=0.0)
        with pytest.raises(ValueError):
            MethodSettings(dp_mechanism="gaussian")


class TestPerturbation:
    def test_only_adds_heterophilic_unconnected_edges(self, trained_gcn, tiny_graph):
        result = privacy_aware_perturbation(trained_gcn, tiny_graph, gamma=0.3, rng=0)
        predicted = trained_gcn.predict_labels(tiny_graph.features, tiny_graph.adjacency)
        added = result.added_pairs
        assert result.num_added_edges == added.shape[0] > 0
        for i, j in added:
            assert tiny_graph.adjacency[i, j] == 0.0, "must not duplicate existing edges"
            assert predicted[i] != predicted[j], "added edges must be heterophilic"

    def test_perturbed_adjacency_is_superset(self, trained_gcn, tiny_graph):
        result = privacy_aware_perturbation(trained_gcn, tiny_graph, gamma=0.2, rng=0)
        assert np.all(result.perturbed_adjacency >= tiny_graph.adjacency)
        np.testing.assert_allclose(result.perturbed_adjacency, result.perturbed_adjacency.T)
        assert np.all(np.diag(result.perturbed_adjacency) == 0)

    def test_gamma_zero_is_identity(self, trained_gcn, tiny_graph):
        result = privacy_aware_perturbation(trained_gcn, tiny_graph, gamma=0.0, rng=0)
        np.testing.assert_array_equal(result.perturbed_adjacency, tiny_graph.adjacency)
        assert result.num_added_edges == 0

    def test_budget_scales_with_gamma(self, trained_gcn, tiny_graph):
        small = privacy_aware_perturbation(trained_gcn, tiny_graph, gamma=0.1, rng=0)
        large = privacy_aware_perturbation(trained_gcn, tiny_graph, gamma=0.5, rng=0)
        assert large.num_added_edges > small.num_added_edges

    def test_negative_gamma_rejected(self, trained_gcn, tiny_graph):
        with pytest.raises(ValueError):
            privacy_aware_perturbation(trained_gcn, tiny_graph, gamma=-0.1)

    def test_accepts_precomputed_predictions(self, trained_gcn, tiny_graph):
        predicted = trained_gcn.predict_labels(tiny_graph.features, tiny_graph.adjacency)
        result = privacy_aware_perturbation(
            trained_gcn, tiny_graph, gamma=0.2, rng=0, predicted_labels=predicted
        )
        assert result.num_added_edges > 0


class TestDelta:
    def _evaluation(self, method, accuracy, bias, risk):
        return MethodEvaluation(
            method=method, dataset="d", model="gcn", accuracy=accuracy, bias=bias,
            risk_auc=risk, risk_distance=0.0,
        )

    def test_relative_change(self):
        assert relative_change(1.1, 1.0) == pytest.approx(0.1)
        assert relative_change(0.9, 1.0) == pytest.approx(-0.1)

    def test_delta_positive_when_both_improve(self):
        vanilla = self._evaluation("vanilla", 0.9, 0.10, 0.90)
        treated = self._evaluation("ppfr", 0.88, 0.08, 0.88)
        report = delta_report(treated, vanilla)
        assert report.delta_bias < 0 and report.delta_risk < 0
        assert report.delta_combined > 0
        assert report.improves_both

    def test_delta_negative_when_risk_increases(self):
        vanilla = self._evaluation("vanilla", 0.9, 0.10, 0.90)
        treated = self._evaluation("reg", 0.88, 0.05, 0.93)
        report = delta_report(treated, vanilla)
        assert report.delta_combined < 0
        assert not report.improves_both

    def test_delta_matches_formula(self):
        vanilla = self._evaluation("vanilla", 0.80, 0.10, 0.90)
        treated = self._evaluation("x", 0.72, 0.06, 0.85)
        report = delta_report(treated, vanilla)
        expected = ((0.06 - 0.10) / 0.10) * ((0.85 - 0.90) / 0.90) / abs((0.72 - 0.80) / 0.80)
        assert report.delta_combined == pytest.approx(expected)

    def test_accuracy_floor_prevents_blowup(self):
        vanilla = self._evaluation("vanilla", 0.9, 0.10, 0.90)
        treated = self._evaluation("x", 0.9, 0.05, 0.85)  # identical accuracy
        report = delta_report(treated, vanilla)
        assert np.isfinite(report.delta_combined)

    def test_to_dict_percentages(self):
        vanilla = self._evaluation("vanilla", 1.0, 0.1, 0.9)
        treated = self._evaluation("x", 0.9, 0.05, 0.88)
        row = delta_report(treated, vanilla).to_dict()
        assert row["delta_accuracy_percent"] == pytest.approx(-10.0)
        assert row["delta_bias_percent"] == pytest.approx(-50.0)


class TestMethodRunners:
    @pytest.fixture(scope="class")
    def outcome(self, tiny_graph):
        """One full pipeline run shared by the assertions below (expensive)."""
        return run_all_methods(
            tiny_graph,
            "gcn",
            fast_settings(),
            methods=["reg", "dpreg", "dpfr", "ppfr"],
            hidden_features=8,
        )

    def test_registry_contains_all_paper_methods(self):
        assert {"vanilla", "reg", "dpreg", "dpfr", "ppfr", "fr", "pp"} <= set(METHOD_RUNNERS)

    def test_all_methods_produce_runs_and_deltas(self, outcome):
        assert set(outcome["runs"]) == {"vanilla", "reg", "dpreg", "dpfr", "ppfr"}
        assert set(outcome["deltas"]) == {"reg", "dpreg", "dpfr", "ppfr"}

    def test_vanilla_serves_original_graph(self, outcome, tiny_graph):
        np.testing.assert_array_equal(
            outcome["runs"]["vanilla"].serving_adjacency, tiny_graph.adjacency
        )

    def test_perturbation_methods_serve_modified_graph(self, outcome, tiny_graph):
        for method in ("dpreg", "ppfr"):
            assert not np.array_equal(
                outcome["runs"][method].serving_adjacency, tiny_graph.adjacency
            )

    def test_ppfr_records_fine_tuning(self, outcome):
        run = outcome["runs"]["ppfr"]
        assert run.fine_tune_result is not None
        assert run.extras["perturbation"].num_added_edges >= 0
        assert run.extras["fairness_weights"].loss_multipliers.min() >= 0.0

    def test_evaluations_have_valid_ranges(self, outcome):
        for evaluation in outcome["evaluations"].values():
            assert 0.0 <= evaluation.accuracy <= 1.0
            assert evaluation.bias >= 0.0
            assert 0.0 <= evaluation.risk_auc <= 1.0

    def test_reg_reduces_bias(self, outcome):
        assert outcome["deltas"]["reg"].delta_bias < 0

    def test_ppfr_reduces_bias_and_risk(self, outcome):
        """The headline claim: PPFR lowers bias while restricting privacy risk."""
        delta = outcome["deltas"]["ppfr"]
        assert delta.delta_bias < 0
        assert delta.delta_risk <= 0.02  # risk must not meaningfully increase

    def test_run_method_unknown_name(self, tiny_graph):
        with pytest.raises(KeyError):
            run_method("unknown", "gcn", tiny_graph, fast_settings())

    def test_individual_runners_return_expected_method_names(self, tiny_graph):
        settings = fast_settings(seed=1)
        model = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=1)
        assert run_vanilla(model, tiny_graph, settings).method == "vanilla"

    def test_fr_and_pp_ablation_runners(self, tiny_graph):
        settings = fast_settings(seed=2)
        model = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=2)
        fr_run = run_fr_only(model, tiny_graph, settings)
        assert fr_run.method == "fr"
        np.testing.assert_array_equal(fr_run.serving_adjacency, tiny_graph.adjacency)

        model = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=2)
        pp_run = run_pp_only(model, tiny_graph, settings)
        assert pp_run.method == "pp"
        assert pp_run.extras["perturbation"].gamma == settings.ppfr.gamma

    def test_ppfr_skip_vanilla_reuses_trained_model(self, trained_gcn, tiny_graph):
        settings = fast_settings(seed=3)
        run = run_ppfr(trained_gcn, tiny_graph, settings, skip_vanilla=True)
        assert run.train_result is None
        assert run.fine_tune_result is not None

    def test_evaluate_method_requires_labels(self, trained_gcn, tiny_graph):
        unlabeled = tiny_graph.copy()
        unlabeled.labels = None
        run = MethodRun(
            method="vanilla", model=trained_gcn, graph=unlabeled,
            serving_adjacency=unlabeled.adjacency,
        )
        with pytest.raises(ValueError):
            evaluate_method(run)
