"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, optional_seed, spawn_children


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnChildren:
    def test_count(self):
        children = spawn_children(0, 4)
        assert len(children) == 4

    def test_deterministic_from_int_seed(self):
        first = [g.random() for g in spawn_children(5, 3)]
        second = [g.random() for g in spawn_children(5, 3)]
        assert first == second

    def test_children_are_independent(self):
        a, b = spawn_children(1, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_zero_count(self):
        assert spawn_children(0, 0) == []


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "cora", "split") == derive_seed(3, "cora", "split")

    def test_label_sensitivity(self):
        assert derive_seed(3, "cora") != derive_seed(3, "citeseer")

    def test_in_int32_range(self):
        value = derive_seed(0, "anything")
        assert 0 <= value < 2**31


class TestOptionalSeed:
    def test_none(self):
        assert optional_seed(None) is None

    def test_generator(self):
        value = optional_seed(np.random.default_rng(0))
        assert isinstance(value, int)
