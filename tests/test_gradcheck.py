"""Finite-difference gradcheck over every registered autodiff primitive.

The cases below are keyed by primitive name; the suite asserts that the VJP
registry contains no primitive without a gradcheck case, so registering a
new op without numerical coverage fails loudly.
"""

import numpy as np
import pytest

import repro.sparse.autodiff  # noqa: F401 - registers the spmm/spmv primitives
from repro.nn.autodiff import registered_primitives, unbroadcast
from repro.nn.gradcheck import gradcheck
from repro.nn.losses import cross_entropy
from repro.nn.tensor import Tensor, concatenate, stack
from repro.sparse import CSRMatrix, use_backend
from repro.sparse.autodiff import spmm, spmv


def _rng(seed=0):
    return np.random.default_rng(seed)


def _csr(seed=0, shape=(5, 4), density=0.5):
    rng = _rng(seed)
    dense = rng.normal(size=shape) * (rng.random(shape) < density)
    return CSRMatrix.from_dense(dense)


_CSR = _csr()
_MASK = np.array([[True, False, False], [False, True, False]])

# primitive name -> list of (function, inputs) gradcheck cases.  Inputs are
# chosen away from kinks (relu/abs at 0, max ties) so central differences are
# valid; tie-breaking at kinks is covered by exact-value tests below.
CASES = {
    "add": [
        (lambda a, b: a + b, [_rng(0).normal(size=(3, 4)), _rng(1).normal(size=(3, 4))]),
        (lambda a, b: a + b, [_rng(2).normal(size=(3, 4)), _rng(3).normal(size=(1, 4))]),
        (lambda a, b: a + b, [_rng(4).normal(size=(3, 4)), np.array(0.7)]),
    ],
    "neg": [(lambda a: -a, [_rng(0).normal(size=(2, 3))])],
    "mul": [
        (lambda a, b: a * b, [_rng(0).normal(size=(3, 4)), _rng(1).normal(size=(3, 4))]),
        (lambda a, b: a * b, [_rng(2).normal(size=(4,)), _rng(3).normal(size=(2, 4))]),
    ],
    "div": [
        (
            lambda a, b: a / b,
            [_rng(0).normal(size=(3, 3)), _rng(1).normal(size=(3, 3)) + 3.0],
        )
    ],
    "pow": [
        (lambda a: (a * a + 1.0) ** 1.7, [_rng(0).normal(size=(4,))]),
        (lambda a: a**3, [_rng(1).normal(size=(3, 2))]),
    ],
    "matmul": [
        (lambda a, b: a @ b, [_rng(0).normal(size=(3, 4)), _rng(1).normal(size=(4, 2))])
    ],
    "transpose": [(lambda a: a.T, [_rng(0).normal(size=(3, 5))])],
    "reshape": [(lambda a: a.reshape(6), [_rng(0).normal(size=(2, 3))])],
    "take": [
        (lambda a: a[np.array([0, 2, 2])], [_rng(0).normal(size=(4, 3))]),
        (lambda a: a[1:3], [_rng(1).normal(size=(5, 2))]),
        (lambda a: a[np.arange(3), np.array([1, 0, 2])], [_rng(2).normal(size=(3, 3)) ]),
    ],
    "sum": [
        (lambda a: a.sum(), [_rng(0).normal(size=(3, 4))]),
        (lambda a: a.sum(axis=0), [_rng(1).normal(size=(3, 4))]),
        (lambda a: a.sum(axis=(0, 2)), [_rng(2).normal(size=(2, 3, 4))]),
        (lambda a: a.sum(axis=1, keepdims=True), [_rng(3).normal(size=(3, 4))]),
        (lambda a: a.sum(axis=-1), [_rng(4).normal(size=(2, 5))]),
    ],
    "max": [
        (lambda a: a.max(), [_rng(0).normal(size=(3, 4))]),
        (lambda a: a.max(axis=1), [_rng(1).normal(size=(3, 4))]),
        (lambda a: a.max(axis=0, keepdims=True), [_rng(2).normal(size=(3, 4))]),
    ],
    "exp": [(lambda a: a.exp(), [_rng(0).normal(size=(3, 3))])],
    "log": [(lambda a: (a * a + 0.5).log(), [_rng(0).normal(size=(3, 3))])],
    "abs": [(lambda a: (a + 0.1).abs(), [_rng(5).normal(size=(8,))])],
    "relu": [(lambda a: (a + 0.05).relu(), [_rng(3).normal(size=(10,))])],
    "leaky_relu": [
        (lambda a: (a + 0.05).leaky_relu(0.1), [_rng(3).normal(size=(10,))])
    ],
    "elu": [(lambda a: a.elu(), [_rng(4).normal(size=(10,))])],
    "sigmoid": [(lambda a: a.sigmoid(), [_rng(0).normal(size=(6,))])],
    "tanh": [(lambda a: a.tanh(), [_rng(0).normal(size=(6,))])],
    "masked_fill": [
        (lambda a: a.masked_fill(_MASK, -5.0), [_rng(0).normal(size=(2, 3))])
    ],
    "concatenate": [
        (
            lambda a, b: concatenate([a, b], axis=1),
            [_rng(0).normal(size=(2, 3)), _rng(1).normal(size=(2, 2))],
        ),
        (
            lambda a, b: concatenate([a, b], axis=-1),
            [_rng(2).normal(size=(2, 3)), _rng(3).normal(size=(2, 2))],
        ),
    ],
    "spmm": [(lambda x: spmm(_CSR, x), [_rng(0).normal(size=(4, 3))])],
    "spmv": [(lambda x: spmv(_CSR, x), [_rng(0).normal(size=(4,))])],
}


class TestRegistryCoverage:
    def test_every_primitive_has_a_gradcheck_case(self):
        registered = set(registered_primitives())
        missing = registered - set(CASES)
        assert not missing, f"primitives without gradcheck cases: {sorted(missing)}"

    @pytest.mark.parametrize(
        "name,case_index,function,inputs",
        [
            (name, index, function, inputs)
            for name, cases in sorted(CASES.items())
            for index, (function, inputs) in enumerate(cases)
        ],
        ids=lambda value: value if isinstance(value, (str, int)) else "",
    )
    def test_primitive_gradcheck(self, name, case_index, function, inputs):
        assert name in registered_primitives()
        assert gradcheck(function, inputs, seed=11 + case_index)


class TestCompositeGradients:
    """Composite ops built from primitives, through the same harness."""

    def test_stack_negative_axis(self):
        inputs = [_rng(0).normal(size=(2, 3)), _rng(1).normal(size=(2, 3))]
        assert gradcheck(lambda a, b: stack([a, b], axis=-1), inputs)

    def test_mean_tuple_axis(self):
        assert gradcheck(lambda a: a.mean(axis=(0, 2)), [_rng(0).normal(size=(2, 3, 4))])

    def test_softmax_log_softmax(self):
        assert gradcheck(lambda a: a.softmax(axis=1), [_rng(0).normal(size=(3, 4))])
        assert gradcheck(lambda a: a.log_softmax(axis=1), [_rng(1).normal(size=(3, 4))])

    def test_cross_entropy_gather(self):
        targets = np.array([0, 2, 1, 2])
        assert gradcheck(
            lambda logits: cross_entropy(logits, targets),
            [_rng(0).normal(size=(4, 3))],
        )

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_two_layer_gcn_loss(self, backend):
        """End-to-end gradcheck of a GCN-shaped loss on both backends."""
        rng = _rng(7)
        n, f, h, c = 6, 5, 4, 3
        adjacency = (rng.random((n, n)) < 0.4).astype(np.float64)
        adjacency = np.maximum(adjacency, adjacency.T)
        np.fill_diagonal(adjacency, 1.0)
        degrees = adjacency.sum(axis=1)
        operator_dense = adjacency / np.sqrt(np.outer(degrees, degrees))
        features = rng.normal(size=(n, f))
        labels = rng.integers(0, c, size=n)
        csr = CSRMatrix.from_dense(operator_dense)

        def propagate(tensor):
            if backend == "sparse":
                return spmm(csr, tensor)
            return Tensor(operator_dense).matmul(tensor)

        def loss(w1, w2):
            hidden = propagate(Tensor(features).matmul(w1)).tanh()
            logits = propagate(hidden.matmul(w2))
            return cross_entropy(logits, labels)

        with use_backend(backend):
            assert gradcheck(
                loss,
                [rng.normal(size=(f, h)) * 0.5, rng.normal(size=(h, c)) * 0.5],
                atol=1e-4,
                rtol=1e-3,
            )


class TestMaxTieBreaking:
    """Exact-value tests for max backward where finite differences fail."""

    def test_ties_share_gradient_equally_axis(self):
        x = Tensor(np.array([[1.0, 3.0, 3.0], [2.0, 2.0, 1.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(
            x.grad, np.array([[0.0, 0.5, 0.5], [0.5, 0.5, 0.0]])
        )

    def test_ties_share_gradient_equally_global(self):
        x = Tensor(np.array([4.0, 4.0, 1.0, 4.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, np.array([1 / 3, 1 / 3, 0.0, 1 / 3]))

    def test_keepdims_ties(self):
        x = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        (x.max(axis=1, keepdims=True) * 4.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.array([[2.0, 2.0]]))


class TestUnbroadcast:
    """Shape-reduction behaviour of the engine's unbroadcast helper."""

    @pytest.mark.parametrize(
        "grad_shape,target_shape",
        [
            ((5, 3, 4), (3, 4)),
            ((3, 4), (1, 4)),
            ((3, 4), (3, 1)),
            ((2, 3, 4), (1, 3, 1)),
            ((6,), ()),
            ((4, 4), (4, 4)),
        ],
    )
    def test_matches_sum_over_broadcast_axes(self, grad_shape, target_shape):
        grad = _rng(0).normal(size=grad_shape)
        reduced = unbroadcast(grad, target_shape)
        assert reduced.shape == target_shape
        expected = np.broadcast_to(np.ones(target_shape), grad_shape) * 0 + grad
        while expected.ndim > len(target_shape):
            expected = expected.sum(axis=0)
        for axis, size in enumerate(target_shape):
            if size == 1 and expected.shape[axis] != 1:
                expected = expected.sum(axis=axis, keepdims=True)
        np.testing.assert_allclose(reduced, expected.reshape(target_shape))

    def test_broadcast_gradients_have_input_shapes(self):
        left = Tensor(np.ones((3, 4)), requires_grad=True)
        right = Tensor(np.ones((1, 4)), requires_grad=True)
        scalar = Tensor(2.0, requires_grad=True)
        ((left * right) + scalar).sum().backward()
        assert left.grad.shape == (3, 4)
        assert right.grad.shape == (1, 4)
        assert scalar.grad.shape == ()
        np.testing.assert_allclose(right.grad, np.full((1, 4), 3.0))
        assert scalar.grad == pytest.approx(12.0)
