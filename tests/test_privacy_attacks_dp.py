"""Tests for the link-stealing / LinkTeller attacks, risk metrics and edge DP."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.privacy.attacks.link_stealing import (
    AttackResult,
    LinkStealingAttack,
    sample_attack_pairs,
)
from repro.privacy.attacks.linkteller import LinkTellerAttack
from repro.privacy.dp import dp_flip_probability, edge_rand, expected_flipped_edges, lap_graph
from repro.privacy.risk import (
    edge_privacy_risk,
    embedding_sensitivity,
    empirical_embedding_sensitivity,
    normalized_edge_privacy_risk,
    risk_report,
)
from repro.graphs.perturb import symmetric_difference


class TestSampleAttackPairs:
    def test_balanced_by_default(self, tiny_graph):
        pairs, labels = sample_attack_pairs(tiny_graph, rng=np.random.default_rng(0))
        assert labels.sum() == tiny_graph.num_edges
        assert (labels == 0).sum() == tiny_graph.num_edges
        assert pairs.shape == (2 * tiny_graph.num_edges, 2)

    def test_positive_pairs_are_edges(self, tiny_graph):
        pairs, labels = sample_attack_pairs(tiny_graph, rng=np.random.default_rng(0))
        for (i, j), label in zip(pairs, labels):
            assert tiny_graph.adjacency[i, j] == (1.0 if label == 1 else 0.0)

    def test_custom_negative_count(self, tiny_graph):
        pairs, labels = sample_attack_pairs(tiny_graph, num_negative=10, rng=np.random.default_rng(0))
        assert (labels == 0).sum() == 10


class TestLinkStealingAttack:
    def test_attack_succeeds_on_trained_model(self, trained_gcn, tiny_graph):
        """On a homophilous graph, Attack-0 must beat random guessing by a margin."""
        attack = LinkStealingAttack(seed=0)
        result = attack.evaluate(trained_gcn, tiny_graph)
        assert result.mean_auc > 0.6
        assert result.max_auc >= result.mean_auc
        assert len(result.auc_per_metric) == 8

    def test_attack_fails_on_uninformative_posteriors(self, tiny_graph):
        attack = LinkStealingAttack(metrics=["cosine", "euclidean"], seed=0)
        uniform = np.full((tiny_graph.num_nodes, 3), 1.0 / 3.0)
        pairs, labels = sample_attack_pairs(tiny_graph, rng=np.random.default_rng(0))
        result = attack.evaluate_posteriors(uniform, pairs, labels)
        assert result.mean_auc == pytest.approx(0.5, abs=0.05)

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            LinkStealingAttack(metrics=["cosine", "hamming"])

    def test_predict_edges_clusters_close_pairs(self):
        attack = LinkStealingAttack(seed=0)
        posteriors = np.array(
            [[0.9, 0.1], [0.88, 0.12], [0.1, 0.9], [0.12, 0.88]]
        )
        pairs = np.array([[0, 1], [2, 3], [0, 2], [1, 3]])
        predictions = attack.predict_edges(posteriors, pairs, metric="euclidean")
        assert predictions[0] and predictions[1]
        assert not predictions[2] and not predictions[3]

    def test_result_to_dict(self, trained_gcn, tiny_graph):
        result = LinkStealingAttack(metrics=["cosine"], seed=0).evaluate(trained_gcn, tiny_graph)
        flat = result.to_dict()
        assert "mean_auc" in flat and "auc_cosine" in flat

    def test_empty_result_mean_auc_nan(self):
        assert np.isnan(AttackResult().mean_auc)


class TestStructuralBaseline:
    def test_scores_match_pair_jaccard(self, tiny_graph):
        from repro.graphs.similarity import jaccard_for_pairs

        attack = LinkStealingAttack(seed=0)
        pairs, _ = sample_attack_pairs(tiny_graph, rng=np.random.default_rng(0))
        scores = attack.structural_scores(tiny_graph, pairs)
        np.testing.assert_array_equal(
            scores, jaccard_for_pairs(tiny_graph.adjacency, pairs)
        )

    def test_baseline_beats_random_on_homophilous_graph(self, tiny_graph):
        # With self-loops, 1-hop pairs always share two members (Lemma V.1),
        # so the structural baseline separates edges from sampled non-edges.
        auc = LinkStealingAttack(seed=0).evaluate_structural_baseline(tiny_graph)
        assert auc > 0.6

    def test_explicit_pairs_and_labels(self, tiny_graph):
        attack = LinkStealingAttack(seed=3)
        pairs, labels = sample_attack_pairs(tiny_graph, rng=np.random.default_rng(3))
        auc = attack.evaluate_structural_baseline(tiny_graph, pairs, labels)
        assert 0.0 <= auc <= 1.0


class TestLinkTeller:
    def test_influence_attack_beats_random(self, trained_gcn, tiny_graph):
        attack = LinkTellerAttack(perturbation=1e-2)
        auc = attack.evaluate(trained_gcn, tiny_graph, num_pairs=40, rng=0)
        assert auc > 0.55

    def test_invalid_perturbation(self):
        with pytest.raises(ValueError):
            LinkTellerAttack(perturbation=0.0)


class TestRiskMetrics:
    def test_risk_positive_for_trained_model(self, trained_gcn, tiny_graph):
        posteriors = trained_gcn.predict_proba(tiny_graph.features, tiny_graph.adjacency)
        risk = edge_privacy_risk(posteriors, tiny_graph, num_unconnected=500)
        assert risk > 0.0

    def test_risk_zero_for_constant_posteriors(self, tiny_graph):
        uniform = np.full((tiny_graph.num_nodes, 3), 1.0 / 3.0)
        assert edge_privacy_risk(uniform, tiny_graph, num_unconnected=200) == pytest.approx(0.0)

    def test_normalized_risk_non_negative(self, trained_gcn, tiny_graph):
        posteriors = trained_gcn.predict_proba(tiny_graph.features, tiny_graph.adjacency)
        assert normalized_edge_privacy_risk(posteriors, tiny_graph, num_unconnected=500) >= 0.0

    def test_risk_report_fields(self, trained_gcn, tiny_graph):
        posteriors = trained_gcn.predict_proba(tiny_graph.features, tiny_graph.adjacency)
        report = risk_report(posteriors, tiny_graph, num_unconnected=500)
        assert report["mean_connected_distance"] <= report["mean_unconnected_distance"]
        assert report["num_connected_pairs"] == tiny_graph.num_edges

    def test_embedding_sensitivity_formula(self):
        # δ = d1_i/((d_i+1)(d_i+2)) − d1_j/((d_j+1)(d_j+2)), scaled by ‖μ1−μ0‖.
        value = embedding_sensitivity(3, 1, 2, 0, class_mean_distance=2.0)
        expected = 2.0 * abs(2 / (4 * 5) - 0 / (2 * 3))
        assert value == pytest.approx(expected)

    def test_embedding_sensitivity_validation(self):
        with pytest.raises(ValueError):
            embedding_sensitivity(1, 1, 2, 0, 1.0)

    def test_eq20_larger_class_separation_leaks_more(self):
        """Eq. (20): larger ‖μ1 − μ0‖ (better separated classes) means higher sensitivity."""
        small = embedding_sensitivity(4, 2, 1, 0, class_mean_distance=0.5)
        large = embedding_sensitivity(4, 2, 1, 0, class_mean_distance=5.0)
        assert large > small

    def test_empirical_sensitivity_grows_with_separation(self):
        """The measured one-hop aggregation shift follows the analytic trend of Eq. (20).

        Node 3 has two inter-class neighbours while node 6 has none, so the
        δ factor of Eq. (20) is nonzero and the sensitivity of the intra-class
        pair (3, 6) must scale with the class-mean separation ‖μ1 − μ0‖.
        """
        rng = np.random.default_rng(0)
        adjacency = np.zeros((20, 20))
        for i in range(9):
            adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
        for inter_neighbor in (10, 11):  # give node 3 two class-1 neighbours
            adjacency[3, inter_neighbor] = adjacency[inter_neighbor, 3] = 1.0
        labels = np.array([0] * 10 + [1] * 10)
        pair = (3, 6)
        noise = 0.01 * rng.normal(size=(20, 4))

        def build_embeddings(separation):
            means = np.array([[0.0] * 4, [separation] * 4])
            return means[labels] + noise

        low = empirical_embedding_sensitivity(build_embeddings(0.2), adjacency, pair)
        high = empirical_embedding_sensitivity(build_embeddings(4.0), adjacency, pair)
        assert high > low


class TestEdgeDP:
    def test_flip_probability_decreases_with_epsilon(self):
        assert dp_flip_probability(1.0) > dp_flip_probability(4.0) > dp_flip_probability(8.0)
        assert 0.0 < dp_flip_probability(8.0) < 0.5

    def test_edge_rand_output_valid(self, tiny_graph):
        noisy = edge_rand(tiny_graph.adjacency, epsilon=2.0, rng=0)
        np.testing.assert_allclose(noisy, noisy.T)
        assert np.all(np.diag(noisy) == 0)
        assert set(np.unique(noisy)) <= {0.0, 1.0}

    def test_edge_rand_more_noise_for_smaller_epsilon(self, tiny_graph):
        strong = edge_rand(tiny_graph.adjacency, epsilon=1.0, rng=0)
        weak = edge_rand(tiny_graph.adjacency, epsilon=6.0, rng=0)
        assert symmetric_difference(tiny_graph.adjacency, strong) > symmetric_difference(
            tiny_graph.adjacency, weak
        )

    def test_edge_rand_expected_flips(self, tiny_graph):
        epsilon = 2.0
        expected = expected_flipped_edges(tiny_graph.adjacency, epsilon)
        observed = np.mean(
            [
                symmetric_difference(tiny_graph.adjacency, edge_rand(tiny_graph.adjacency, epsilon, rng=s))
                for s in range(5)
            ]
        )
        assert observed == pytest.approx(expected, rel=0.3)

    def test_lap_graph_preserves_edge_count(self, tiny_graph):
        noisy = lap_graph(tiny_graph.adjacency, epsilon=3.0, rng=0)
        original_edges = np.count_nonzero(np.triu(tiny_graph.adjacency, k=1))
        noisy_edges = np.count_nonzero(np.triu(noisy, k=1))
        assert noisy_edges == pytest.approx(original_edges, rel=0.05)

    def test_lap_graph_large_epsilon_recovers_graph(self, tiny_graph):
        noisy = lap_graph(tiny_graph.adjacency, epsilon=1000.0, rng=0)
        assert symmetric_difference(tiny_graph.adjacency, noisy) <= tiny_graph.num_edges * 0.05

    def test_lap_graph_empty_graph(self):
        empty = np.zeros((4, 4))
        np.testing.assert_array_equal(lap_graph(empty, epsilon=1.0, rng=0), empty)

    def test_epsilon_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            edge_rand(tiny_graph.adjacency, epsilon=0.0)
        with pytest.raises(ValueError):
            lap_graph(tiny_graph.adjacency, epsilon=-1.0)

    @given(epsilon=st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=10, deadline=None)
    def test_property_edge_rand_symmetric(self, epsilon):
        adjacency = np.zeros((8, 8))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        noisy = edge_rand(adjacency, epsilon, rng=0)
        assert np.allclose(noisy, noisy.T)
        assert np.all(np.diag(noisy) == 0)
