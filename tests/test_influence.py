"""Tests for influence-function machinery: gradients, HVPs, CG and estimators."""

import numpy as np
import pytest

from repro.influence.correlation import influence_correlation_table, is_conforming, pearson_correlation
from repro.influence.functions import InfluenceConfig, InfluenceEstimator
from repro.influence.gradients import (
    bias_gradient,
    function_gradient,
    per_node_loss_gradients,
    risk_gradient,
    training_loss_gradient,
)
from repro.influence.hessian import (
    conjugate_gradient_solve,
    dense_hessian,
    hessian_vector_product,
    inverse_hvp,
    make_loss_gradient_function,
)
from repro.nn.losses import cross_entropy
from repro.nn.parameters import parameters_to_vector
from repro.nn.tensor import Tensor


class TestGradients:
    def test_training_loss_gradient_shape(self, trained_gcn, tiny_graph):
        gradient = training_loss_gradient(trained_gcn, tiny_graph)
        assert gradient.shape == (parameters_to_vector(trained_gcn.parameters()).shape[0],)
        assert np.all(np.isfinite(gradient))

    def test_per_node_gradients_sum_to_total(self, trained_gcn, tiny_graph):
        """Mean of per-node gradients equals the gradient of the mean loss."""
        indices = tiny_graph.train_indices()[:10]
        per_node = per_node_loss_gradients(trained_gcn, tiny_graph, indices=indices)
        total = training_loss_gradient(trained_gcn, tiny_graph, indices=indices)
        np.testing.assert_allclose(np.mean(per_node, axis=0), total, atol=1e-8)

    def test_gradient_matches_numerical(self, trained_gcn, tiny_graph):
        """Autodiff parameter gradient agrees with finite differences of the loss."""
        indices = tiny_graph.train_indices()[:5]
        gradient = training_loss_gradient(trained_gcn, tiny_graph, indices=indices)
        gradient_function = make_loss_gradient_function(trained_gcn, tiny_graph, indices=indices)
        theta = parameters_to_vector(trained_gcn.parameters())

        def loss_at(vector):
            from repro.nn.parameters import vector_to_parameters

            vector_to_parameters(vector, trained_gcn.parameters())
            was_training = trained_gcn.training
            trained_gcn.eval()  # the analytic gradient is defined at the dropout-free forward
            try:
                logits = trained_gcn(tiny_graph.features, tiny_graph.adjacency)
                return float(cross_entropy(logits[indices], tiny_graph.labels[indices]).item())
            finally:
                vector_to_parameters(theta, trained_gcn.parameters())
                if was_training:
                    trained_gcn.train()

        rng = np.random.default_rng(0)
        for index in rng.choice(theta.size, size=5, replace=False):
            eps = 1e-5
            plus = theta.copy(); plus[index] += eps
            minus = theta.copy(); minus[index] -= eps
            numeric = (loss_at(plus) - loss_at(minus)) / (2 * eps)
            assert gradient[index] == pytest.approx(numeric, abs=1e-4)

    def test_bias_gradient_nonzero(self, trained_gcn, tiny_graph):
        gradient = bias_gradient(trained_gcn, tiny_graph)
        assert np.linalg.norm(gradient) > 0
        assert np.all(np.isfinite(gradient))

    def test_risk_gradient_nonzero(self, trained_gcn, tiny_graph):
        gradient = risk_gradient(trained_gcn, tiny_graph, num_unconnected=100)
        assert np.linalg.norm(gradient) > 0

    def test_function_gradient_custom(self, trained_gcn, tiny_graph):
        gradient = function_gradient(
            trained_gcn, tiny_graph, lambda logits, graph: (logits * logits).sum()
        )
        assert gradient.shape == (parameters_to_vector(trained_gcn.parameters()).shape[0],)

    def test_eval_mode_is_restored(self, trained_gcn, tiny_graph):
        trained_gcn.train()
        training_loss_gradient(trained_gcn, tiny_graph)
        assert trained_gcn.training
        trained_gcn.eval()


class TestHessian:
    def test_hvp_matches_dense_hessian(self, trained_gcn, tiny_graph):
        indices = tiny_graph.train_indices()[:8]
        gradient_function = make_loss_gradient_function(trained_gcn, tiny_graph, indices=indices)
        theta = parameters_to_vector(trained_gcn.parameters())
        rng = np.random.default_rng(0)
        # Project onto a small random subspace to keep the dense Hessian cheap:
        # compare H v against finite-difference columns for a few coordinates.
        vector = rng.normal(size=theta.size)
        hvp = hessian_vector_product(gradient_function, theta, vector, eps=1e-4)
        assert hvp.shape == theta.shape
        assert np.all(np.isfinite(hvp))
        # Symmetry check: vᵀ H u == uᵀ H v.
        other = rng.normal(size=theta.size)
        hvp_other = hessian_vector_product(gradient_function, theta, other, eps=1e-4)
        assert float(other @ hvp) == pytest.approx(float(vector @ hvp_other), rel=0.05, abs=1e-4)

    def test_hvp_zero_vector(self, trained_gcn, tiny_graph):
        gradient_function = make_loss_gradient_function(trained_gcn, tiny_graph)
        theta = parameters_to_vector(trained_gcn.parameters())
        np.testing.assert_array_equal(
            hessian_vector_product(gradient_function, theta, np.zeros_like(theta)), np.zeros_like(theta)
        )

    def test_conjugate_gradient_solves_spd_system(self):
        rng = np.random.default_rng(0)
        basis = rng.normal(size=(20, 20))
        matrix = basis @ basis.T + np.eye(20)
        rhs = rng.normal(size=20)
        solution = conjugate_gradient_solve(lambda v: matrix @ v, rhs, damping=0.0, max_iterations=200)
        np.testing.assert_allclose(matrix @ solution, rhs, atol=1e-5)

    def test_conjugate_gradient_damping(self):
        matrix = np.diag([1.0, 2.0, 3.0])
        rhs = np.ones(3)
        solution = conjugate_gradient_solve(lambda v: matrix @ v, rhs, damping=0.5, max_iterations=100)
        expected = np.linalg.solve(matrix + 0.5 * np.eye(3), rhs)
        np.testing.assert_allclose(solution, expected, atol=1e-6)

    def test_conjugate_gradient_rejects_negative_damping(self):
        with pytest.raises(ValueError):
            conjugate_gradient_solve(lambda v: v, np.ones(3), damping=-1.0)

    def test_dense_hessian_symmetric_quadratic(self):
        matrix = np.array([[2.0, 0.5], [0.5, 1.0]])

        def gradient_function(theta):
            return matrix @ theta

        hessian = dense_hessian(gradient_function, np.zeros(2))
        np.testing.assert_allclose(hessian, matrix, atol=1e-6)

    def test_inverse_hvp_consistency(self, trained_gcn, tiny_graph):
        """H (H⁻¹ v) ≈ v up to damping for a well-conditioned direction."""
        vector = training_loss_gradient(trained_gcn, tiny_graph)
        solution = inverse_hvp(trained_gcn, tiny_graph, vector, damping=0.5, max_iterations=30)
        gradient_function = make_loss_gradient_function(trained_gcn, tiny_graph)
        theta = parameters_to_vector(trained_gcn.parameters())
        reconstructed = hessian_vector_product(gradient_function, theta, solution) + 0.5 * solution
        # CG is truncated, so only require a large reduction of the residual.
        assert np.linalg.norm(reconstructed - vector) < 0.7 * np.linalg.norm(vector)


class TestInfluenceEstimator:
    @pytest.fixture(scope="class")
    def estimator(self, trained_gcn, tiny_graph):
        return InfluenceEstimator(
            trained_gcn, tiny_graph, config=InfluenceConfig(damping=0.1, cg_iterations=8)
        )

    def test_scores_align_with_train_nodes(self, estimator, tiny_graph):
        scores = estimator.compute_all()
        num_train = int(tiny_graph.train_mask.sum())
        assert scores.utility.shape == (num_train,)
        assert scores.bias.shape == (num_train,)
        assert scores.risk.shape == (num_train,)
        np.testing.assert_array_equal(scores.train_indices, tiny_graph.train_indices())

    def test_influences_are_finite_and_varied(self, estimator):
        bias = estimator.bias_influence()
        assert np.all(np.isfinite(bias))
        assert bias.std() > 0

    def test_node_gradient_cache(self, estimator):
        first = estimator.node_loss_gradients()
        second = estimator.node_loss_gradients()
        assert first is second

    def test_requires_labels(self, trained_gcn, tiny_graph):
        unlabeled = tiny_graph.copy()
        unlabeled.labels = None
        with pytest.raises(ValueError):
            InfluenceEstimator(trained_gcn, unlabeled)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InfluenceConfig(damping=-1.0)
        with pytest.raises(ValueError):
            InfluenceConfig(cg_iterations=0)


class TestCorrelation:
    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert pearson_correlation(a, b) == pytest.approx(np.corrcoef(a, b)[0, 1])

    def test_constant_vector_returns_zero(self):
        assert pearson_correlation(np.ones(10), np.arange(10.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(4))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(1), np.ones(1))

    def test_table_structure(self):
        influences = {
            "cora": {"gcn": {"bias": np.arange(5.0), "risk": -np.arange(5.0)}},
        }
        table = influence_correlation_table(influences)
        assert table["cora"]["gcn"] == pytest.approx(-1.0)

    def test_is_conforming_threshold(self):
        assert is_conforming(0.5)
        assert not is_conforming(0.2)
        assert not is_conforming(-0.9)
