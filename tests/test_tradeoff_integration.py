"""Integration tests of the paper's central claims on small surrogates.

These tests exercise the full stack (data → training → fairness → attack) and
assert the *qualitative* shapes the paper reports, at sizes small enough for
the regular test suite.
"""

import numpy as np
import pytest

from repro.core.config import MethodSettings, PPFRConfig
from repro.core.pipeline import run_all_methods
from repro.fairness.inform import bias_from_graph, inform_regularizer
from repro.fairness.reweighting import FairnessReweightingConfig
from repro.gnn.models import build_model
from repro.gnn.trainer import TrainConfig, Trainer
from repro.influence.functions import InfluenceConfig
from repro.privacy.attacks.link_stealing import LinkStealingAttack
from repro.privacy.risk import risk_report


@pytest.fixture(scope="module")
def regularised_pair(tiny_graph):
    """A vanilla-trained and a fairness-regularised GCN on the same graph."""
    config = TrainConfig(epochs=60, patience=None, track_best=False)
    vanilla = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=0)
    Trainer(vanilla, config).fit(tiny_graph)
    fair = build_model("gcn", tiny_graph.num_features, tiny_graph.num_classes, hidden_features=8, rng=0)
    Trainer(fair, config).fit(tiny_graph, regularizers=[inform_regularizer(weight=200.0)])
    return vanilla, fair


class TestPropositionV2:
    """RQ1: improving individual fairness increases edge privacy risk."""

    def test_regularisation_reduces_bias(self, regularised_pair, tiny_graph):
        vanilla, fair = regularised_pair
        bias_vanilla = bias_from_graph(
            vanilla.predict_proba(tiny_graph.features, tiny_graph.adjacency), tiny_graph
        )
        bias_fair = bias_from_graph(
            fair.predict_proba(tiny_graph.features, tiny_graph.adjacency), tiny_graph
        )
        assert bias_fair < bias_vanilla

    def test_regularisation_does_not_reduce_attack_auc(self, regularised_pair, tiny_graph):
        """The trade-off direction: the fairer model must not be safer to attack."""
        vanilla, fair = regularised_pair
        attack = LinkStealingAttack(seed=0)
        auc_vanilla = attack.evaluate(vanilla, tiny_graph).mean_auc
        auc_fair = attack.evaluate(fair, tiny_graph).mean_auc
        assert auc_fair >= auc_vanilla - 0.01

    def test_relative_separation_does_not_shrink(self, regularised_pair, tiny_graph):
        """Mechanism of Proposition V.2: min f_bias shrinks d1 at least as fast as d0.

        The attacker separates connected from unconnected pairs by the *relative*
        gap (d0 − d1) / d0; improving fairness must not shrink that gap.
        """
        vanilla, fair = regularised_pair

        def relative_gap(model):
            report = risk_report(
                model.predict_proba(tiny_graph.features, tiny_graph.adjacency),
                tiny_graph,
                num_unconnected=1000,
            )
            d0 = report["mean_unconnected_distance"]
            d1 = report["mean_connected_distance"]
            return (d0 - d1) / max(d0, 1e-12)

        assert relative_gap(fair) >= relative_gap(vanilla) - 0.02


class TestPPFRShape:
    """RQ2: PPFR improves fairness with restricted risk and limited accuracy cost."""

    @pytest.fixture(scope="class")
    def outcome(self, tiny_graph):
        settings = MethodSettings(
            train=TrainConfig(epochs=40, patience=None, track_best=False),
            fairness_weight=100.0,
            dp_epsilon=4.0,
            ppfr=PPFRConfig(
                gamma=0.2,
                fine_tune_fraction=0.2,
                reweighting=FairnessReweightingConfig(
                    influence=InfluenceConfig(damping=0.1, cg_iterations=8)
                ),
            ),
        )
        return run_all_methods(
            tiny_graph, "gcn", settings, methods=["reg", "dpreg", "ppfr"], hidden_features=8
        )

    def test_reg_trades_risk_for_fairness(self, outcome):
        reg = outcome["deltas"]["reg"]
        assert reg.delta_bias < 0
        assert reg.delta_risk > -0.02  # risk not meaningfully reduced by fairness alone

    def test_ppfr_improves_both_dimensions(self, outcome):
        ppfr = outcome["deltas"]["ppfr"]
        assert ppfr.delta_bias < 0
        assert ppfr.delta_risk <= 0.005

    def test_ppfr_keeps_a_bounded_accuracy_cost(self, outcome):
        """PPFR balances fairness and privacy at a bounded accuracy cost (Δ > 0).

        The cross-method ordering against DPReg (PPFR cheaper in accuracy) is a
        graph-size-dependent effect; it is asserted at experiment scale by the
        Table IV benchmark rather than on this tiny fixture.
        """
        ppfr = outcome["deltas"]["ppfr"]
        assert abs(ppfr.delta_accuracy) < 0.25
        assert ppfr.delta_combined > 0

    def test_all_models_remain_better_than_chance(self, outcome, tiny_graph):
        chance = 1.0 / tiny_graph.num_classes
        for evaluation in outcome["evaluations"].values():
            assert evaluation.accuracy > chance
