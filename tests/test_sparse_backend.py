"""Backend registry, auto-selection heuristic and dynamic-scoping tests."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import ComputeConfig
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad
from repro.sparse import (
    AUTO_MIN_NODES,
    CSRMatrix,
    DenseOperator,
    SparseOperator,
    available_backends,
    build_propagation,
    get_backend,
    get_backend_name,
    register_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.sparse.backend import ComputeBackend, _REGISTRY


def ring_adjacency(n):
    adjacency = np.zeros((n, n))
    idx = np.arange(n)
    adjacency[idx, (idx + 1) % n] = 1.0
    adjacency[(idx + 1) % n, idx] = 1.0
    return adjacency


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_backends()) >= {"dense", "sparse"}
        assert get_backend("dense").name == "dense"
        assert get_backend("sparse").name == "sparse"

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("gpu")
        with pytest.raises(KeyError, match="unknown backend"):
            set_backend("gpu")

    def test_auto_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_backend("auto", ComputeBackend())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("dense", ComputeBackend())

    def test_custom_backend_registration(self):
        class EchoBackend(ComputeBackend):
            name = "echo"

            def build_operator(self, adjacency, kind):
                return ("echo", kind)

        register_backend("echo", EchoBackend())
        try:
            with use_backend("echo"):
                assert build_propagation(np.eye(3), "gcn") == ("echo", "gcn")
        finally:
            _REGISTRY.pop("echo")


class TestSelection:
    def test_default_is_auto(self):
        assert get_backend_name() == "auto"

    def test_auto_small_graph_dense(self):
        small = ring_adjacency(16)
        assert resolve_backend(small).name == "dense"
        assert isinstance(build_propagation(small, "gcn"), DenseOperator)

    def test_auto_large_sparse_graph(self):
        large = ring_adjacency(AUTO_MIN_NODES)
        assert resolve_backend(large).name == "sparse"
        assert isinstance(build_propagation(large, "gcn"), SparseOperator)

    def test_auto_large_dense_graph_stays_dense(self):
        n = AUTO_MIN_NODES
        dense_graph = np.ones((n, n)) - np.eye(n)
        assert resolve_backend(dense_graph).name == "dense"

    def test_auto_csr_input_stays_sparse(self):
        csr = CSRMatrix.from_dense(ring_adjacency(8))
        assert resolve_backend(csr).name == "sparse"

    def test_explicit_override_beats_auto(self):
        small = ring_adjacency(16)
        assert resolve_backend(small, "sparse").name == "sparse"

    def test_use_backend_scoping(self):
        small = ring_adjacency(16)
        with use_backend("sparse"):
            assert get_backend_name() == "sparse"
            assert resolve_backend(small).name == "sparse"
            with use_backend("dense"):
                assert resolve_backend(small).name == "dense"
            assert resolve_backend(small).name == "sparse"
        assert get_backend_name() == "auto"

    def test_use_backend_none_inherits(self):
        with use_backend("sparse"):
            with use_backend(None):
                assert get_backend_name() == "sparse"

    def test_backend_selection_is_thread_local(self):
        """A backend choice in one thread must not leak into another."""
        seen = {}
        barrier = threading.Barrier(2)

        def sparse_worker():
            with use_backend("sparse"):
                barrier.wait()
                seen["sparse_worker"] = get_backend_name()
                barrier.wait()

        def plain_worker():
            barrier.wait()
            seen["plain_worker"] = get_backend_name()
            barrier.wait()

        threads = [
            threading.Thread(target=sparse_worker),
            threading.Thread(target=plain_worker),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == {"sparse_worker": "sparse", "plain_worker": "auto"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown propagation kind"):
            build_propagation(ring_adjacency(4), "chebyshev")
        with pytest.raises(ValueError, match="unknown propagation kind"):
            build_propagation(ring_adjacency(4), "chebyshev", backend="sparse")


class TestOperators:
    def test_operator_apis_agree(self, rng):
        adjacency = ring_adjacency(12)
        x = rng.normal(size=(12, 3))
        dense_op = build_propagation(adjacency, "gcn", backend="dense")
        sparse_op = build_propagation(adjacency, "gcn", backend="sparse")
        assert dense_op.shape == sparse_op.shape == (12, 12)
        np.testing.assert_allclose(dense_op.to_array(), sparse_op.to_array(), atol=1e-12)
        np.testing.assert_allclose(
            dense_op.matmul(Tensor(x)).data, sparse_op.matmul(Tensor(x)).data, atol=1e-12
        )
        assert sparse_op.memory_bytes() < dense_op.memory_bytes()


class TestComputeConfig:
    def test_default_inherits_ambient(self):
        config = ComputeConfig()
        with use_backend("sparse"):
            with config.activate():
                assert get_backend_name() == "sparse"

    def test_explicit_backend_applied(self):
        config = ComputeConfig(backend="sparse")
        with config.activate():
            assert get_backend_name() == "sparse"
        assert get_backend_name() == "auto"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            ComputeConfig(backend="tpu")


class TestGradModeContextVar:
    """Satellite: the autodiff mode flag is dynamically scoped per thread."""

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_does_not_leak_across_threads(self):
        """no_grad() in one thread must not disable recording in another."""
        barrier = threading.Barrier(2)
        results = {}

        def frozen_worker():
            with no_grad():
                barrier.wait()  # hold no_grad open while the peer records
                results["frozen"] = is_grad_enabled()
                barrier.wait()

        def recording_worker():
            barrier.wait()
            tensor = Tensor(np.ones(3), requires_grad=True)
            out = (tensor * 2.0).sum()
            results["recording"] = (is_grad_enabled(), out.requires_grad)
            barrier.wait()

        threads = [
            threading.Thread(target=frozen_worker),
            threading.Thread(target=recording_worker),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results["frozen"] is False
        assert results["recording"] == (True, True)
