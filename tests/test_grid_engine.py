"""Tests for the declarative experiment grid engine.

The acceptance property of the engine is *executor transparency*: the quick
table3 + figure4 grids must produce bitwise-identical ``ExperimentResult``s
under the serial, thread and process executors, with the artifact cache on
and off.  Alongside that, unit tests cover the cell-spec hashing, artifact
cache semantics, operator-cache revision safety and the ComputeConfig /
CLI surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ComputeConfig
from repro.experiments import figures, tables
from repro.experiments.__main__ import build_parser
from repro.experiments.grid import CellSpec, GridRunner, run_grid
from repro.experiments.presets import ExperimentPreset
from repro.graphs.revision import adjacency_revision, ensure_revision, tag_adjacency
from repro.sparse import OperatorCache, use_operator_cache
from repro.sparse.backend import build_propagation
from repro.utils.cache import ArtifactCache, stable_hash


TINY_PRESET = ExperimentPreset(
    name="grid-test",
    dataset_scale=0.3,
    epochs=8,
    models=("gcn",),
    hidden_features=8,
    cg_iterations=3,
)


def tiny_spec(**overrides) -> CellSpec:
    base = dict(
        kind="methods",
        dataset="cora",
        preset=TINY_PRESET,
        model="gcn",
        methods=("vanilla", "reg"),
        seed=0,
    )
    base.update(overrides)
    return CellSpec(**base)


class TestCellSpec:
    def test_key_is_content_stable(self):
        assert tiny_spec().key() == tiny_spec().key()
        assert tiny_spec().key() != tiny_spec(seed=1).key()
        assert tiny_spec().key() != tiny_spec(methods=("vanilla",)).key()

    def test_key_separates_backends(self):
        # Backends agree only to ~1e-8, so cached payloads must not alias.
        spec = tiny_spec()
        assert spec.key("dense") != spec.key("sparse") != spec.key("auto")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            tiny_spec(kind="bogus")

    def test_spec_is_hashable_and_picklable(self):
        import pickle

        spec = tiny_spec()
        assert hash(spec) == hash(tiny_spec())
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_stable_hash_rejects_exotic_values(self):
        with pytest.raises(TypeError):
            stable_hash(object())


class TestArtifactCache:
    def test_get_or_create_counts_hits_and_misses(self):
        cache = ArtifactCache()
        calls = []
        for _ in range(3):
            value = cache.get_or_create("k", lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = ArtifactCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.contains("a") and cache.contains("c") and not cache.contains("b")

    def test_concurrent_same_key_builds_once(self):
        import threading

        cache = ArtifactCache()
        builds = []

        def build():
            builds.append(1)
            return "artifact"

        threads = [
            threading.Thread(target=lambda: cache.get_or_create("cell", build))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1


class TestOperatorCacheRevisions:
    def test_cache_hits_for_same_revision(self, tiny_graph):
        cache = OperatorCache()
        with use_operator_cache(cache):
            first = build_propagation(tiny_graph.adjacency, kind="gcn")
            second = build_propagation(tiny_graph.adjacency, kind="gcn")
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_bump_revision_invalidates(self):
        from repro.graphs.graph import Graph

        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        graph = Graph(adjacency=adjacency, features=np.eye(4))
        cache = OperatorCache()
        with use_operator_cache(cache):
            before = build_propagation(graph.adjacency, kind="gcn")
            # In-place mutation must go through bump_revision; the cache then
            # can never serve the stale normalisation.
            graph.adjacency[2, 3] = graph.adjacency[3, 2] = 1.0
            graph.bump_revision()
            after = build_propagation(graph.adjacency, kind="gcn")
        assert before is not after
        assert not np.allclose(before.to_array(), after.to_array())

    def test_untagged_arrays_never_cached(self, rng):
        adjacency = (rng.random((6, 6)) > 0.5).astype(float)
        adjacency = np.triu(adjacency, 1) + np.triu(adjacency, 1).T
        cache = OperatorCache()
        with use_operator_cache(cache):
            build_propagation(adjacency, kind="gcn")
            build_propagation(adjacency, kind="gcn")
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_ensure_revision_refreshes_unowned_tags(self, rng):
        adjacency = (rng.random((5, 5)) > 0.5).astype(float)
        adjacency = np.triu(adjacency, 1) + np.triu(adjacency, 1).T
        first = ensure_revision(adjacency)
        assert adjacency_revision(adjacency) == first
        second = ensure_revision(adjacency)
        assert second != first  # unowned: refreshed, a mutated array can't stale-hit
        owned = tag_adjacency(adjacency, owned=True)
        assert ensure_revision(adjacency) == owned  # owned: stable

    def test_graph_revisions_are_unique_per_instance(self, tiny_graph):
        copy = tiny_graph.copy()
        assert copy.revision != tiny_graph.revision
        derived = tiny_graph.with_adjacency(tiny_graph.adjacency.copy())
        assert derived.revision not in (copy.revision, tiny_graph.revision)


class TestGridRunner:
    def test_repeated_cell_is_served_from_cache(self):
        runner = GridRunner()
        spec = tiny_spec()
        first = runner.run([spec])
        second = runner.run([spec])
        assert not first[0].cached and second[0].cached
        assert second[0].payload == first[0].payload
        assert runner.cache_stats.hits >= 1

    def test_duplicate_specs_in_one_batch_execute_once(self):
        runner = GridRunner()
        spec = tiny_spec()
        results = runner.run([spec, spec])
        assert [cell.cached for cell in results] == [False, True]
        assert results[0].payload == results[1].payload

    def test_methods_are_shared_across_overlapping_cells(self):
        runner = GridRunner()
        runner.run([tiny_spec(methods=("vanilla", "reg"))])
        misses_before = runner.cache_stats.misses
        runner.run([tiny_spec(methods=("vanilla", "reg", "pp"))])
        # Only the new method (train + eval) and the new cell payload miss;
        # vanilla and reg resolve from the first cell's artifacts.
        assert runner.cache_stats.misses == misses_before + 3
        assert runner.cache_stats.hits >= 4

    def test_shared_cache_never_aliases_backends(self):
        shared = ArtifactCache()
        spec = tiny_spec()
        GridRunner(backend="dense", artifact_cache=shared).run([spec])
        result = GridRunner(backend="sparse", artifact_cache=shared).run([spec])
        # The sparse runner must recompute, not reuse the dense payload.
        assert not result[0].cached

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            GridRunner(executor="fleet")
        with pytest.raises(ValueError):
            GridRunner(jobs=0)

    def test_from_compute_config(self):
        runner = GridRunner.from_config(
            ComputeConfig(backend="dense", executor="thread", jobs=3, cache=False)
        )
        assert runner.executor == "thread" and runner.jobs == 3
        assert runner.backend == "dense"
        assert runner.artifact_cache is None and runner.operator_cache is None

    def test_jobs_imply_thread_executor(self):
        assert GridRunner(jobs=2).executor == "thread"
        assert GridRunner().executor == "serial"


class TestComputeConfig:
    def test_executor_validation(self):
        with pytest.raises(ValueError):
            ComputeConfig(executor="boat")
        with pytest.raises(ValueError):
            ComputeConfig(jobs=0)
        config = ComputeConfig(executor="process", jobs=2, cache=False)
        assert config.executor == "process"

    def test_cli_parser_flags(self):
        args = build_parser().parse_args(
            ["table3", "--jobs", "2", "--executor", "process", "--no-cache"]
        )
        assert args.jobs == 2 and args.executor == "process" and args.cache is False
        assert build_parser().parse_args(["table3"]).cache is True


def _result_fingerprint(result):
    return (result.experiment, result.rows, result.metadata)


class TestExecutorDeterminism:
    """Acceptance: quick table3 + figure4 identical across executors and caches."""

    @pytest.fixture(scope="class")
    def reference(self):
        runner = GridRunner(executor="serial", cache=True)
        return {
            "table3": _result_fingerprint(
                tables.table3_accuracy_bias("quick", seed=0, runner=runner)
            ),
            "figure4": _result_fingerprint(
                figures.figure4_attack_auc("quick", seed=0, runner=runner)
            ),
        }

    @pytest.mark.parametrize(
        "executor,cache",
        [("serial", False), ("thread", True), ("process", True)],
        ids=["serial-nocache", "thread-cache", "process-cache"],
    )
    def test_bitwise_identical_results(self, reference, executor, cache):
        runner = GridRunner(executor=executor, jobs=2, cache=cache)
        table3 = tables.table3_accuracy_bias("quick", seed=0, runner=runner)
        figure4 = figures.figure4_attack_auc("quick", seed=0, runner=runner)
        assert _result_fingerprint(table3) == reference["table3"]
        assert _result_fingerprint(figure4) == reference["figure4"]

    def test_table3_and_figure4_share_cells(self, reference):
        runner = GridRunner(executor="serial", cache=True)
        tables.table3_accuracy_bias("quick", seed=0, runner=runner)
        hits_before = runner.cache_stats.hits
        figure4 = figures.figure4_attack_auc("quick", seed=0, runner=runner)
        # Figure 4 declares the exact cells Table III trained: all hits.
        assert runner.cache_stats.hits >= hits_before + 3
        assert _result_fingerprint(figure4) == reference["figure4"]


class TestGridBackendEquivalence:
    """Sparse vs dense Jaccard agreement on the quick figure4 datasets.

    The attack-AUC half of the acceptance criterion — full quick table3 /
    figure4 pipelines under forced dense vs sparse backends agreeing to
    1e-8 — is asserted end-to-end by
    ``tests/test_sparse_equivalence.py::TestPipelineEquivalence``, which now
    routes through the grid engine and the CSR similarity/bias path.
    """

    def test_quick_figure4_jaccard_sparse_vs_dense(self):
        from repro.datasets import load_dataset
        from repro.graphs.similarity import jaccard_similarity

        preset = CellSpec.resolve_preset("quick")
        for dataset in preset.strong_homophily_datasets:
            graph = load_dataset(dataset, seed=0, scale=preset.dataset_scale)
            dense = jaccard_similarity(graph.adjacency)
            sparse = jaccard_similarity(graph.csr())
            assert np.allclose(sparse.to_dense(), dense, atol=1e-8)
