"""Tests for the Graph container."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


def make_path_graph(num_nodes=4, num_features=2):
    adjacency = np.zeros((num_nodes, num_nodes))
    for i in range(num_nodes - 1):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    features = np.arange(num_nodes * num_features, dtype=float).reshape(num_nodes, num_features)
    return Graph(adjacency=adjacency, features=features, labels=np.zeros(num_nodes, dtype=int))


class TestConstruction:
    def test_basic_properties(self):
        graph = make_path_graph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 4
        assert graph.num_features == 2
        assert graph.num_classes == 1
        assert graph.density() == pytest.approx(2 * 4 / (5 * 4))

    def test_rejects_self_loops(self):
        adjacency = np.eye(3)
        with pytest.raises(ValueError, match="self-loops"):
            Graph(adjacency=adjacency, features=np.zeros((3, 1)))

    def test_rejects_asymmetric(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = 1.0
        with pytest.raises(ValueError, match="symmetric"):
            Graph(adjacency=adjacency, features=np.zeros((3, 1)))

    def test_rejects_feature_mismatch(self):
        with pytest.raises(ValueError):
            Graph(adjacency=np.zeros((3, 3)), features=np.zeros((2, 1)))

    def test_num_classes_requires_labels(self):
        graph = Graph(adjacency=np.zeros((2, 2)), features=np.zeros((2, 1)))
        with pytest.raises(ValueError):
            _ = graph.num_classes


class TestEdgeViews:
    def test_edge_list(self):
        graph = make_path_graph(4)
        edges = graph.edge_list()
        assert edges.shape == (3, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_neighbors(self):
        graph = make_path_graph(4)
        np.testing.assert_array_equal(graph.neighbors(1), [0, 2])

    def test_neighbors_out_of_range(self):
        with pytest.raises(IndexError):
            make_path_graph(3).neighbors(10)

    def test_degrees(self):
        graph = make_path_graph(4)
        np.testing.assert_array_equal(graph.degrees, [1, 2, 2, 1])

    def test_non_edge_sample_excludes_edges(self):
        graph = make_path_graph(6)
        rng = np.random.default_rng(0)
        pairs = graph.non_edge_sample(5, rng)
        assert pairs.shape == (5, 2)
        for i, j in pairs:
            assert graph.adjacency[i, j] == 0
            assert i < j

    def test_non_edge_sample_too_many_raises(self):
        # A triangle has no non-edges at all.
        adjacency = np.ones((3, 3)) - np.eye(3)
        graph = Graph(adjacency=adjacency, features=np.zeros((3, 1)))
        with pytest.raises(RuntimeError):
            graph.non_edge_sample(2, np.random.default_rng(0))


class TestDerivedGraphs:
    def test_with_adjacency_does_not_mutate(self):
        graph = make_path_graph(4)
        new_adjacency = np.zeros((4, 4))
        new_adjacency[0, 3] = new_adjacency[3, 0] = 1.0
        derived = graph.with_adjacency(new_adjacency)
        assert derived.num_edges == 1
        assert graph.num_edges == 3

    def test_with_masks(self):
        graph = make_path_graph(4)
        train = np.array([True, False, False, False])
        val = np.array([False, True, False, False])
        test = np.array([False, False, True, True])
        derived = graph.with_masks(train, val, test)
        np.testing.assert_array_equal(derived.train_indices(), [0])
        np.testing.assert_array_equal(derived.val_indices(), [1])
        np.testing.assert_array_equal(derived.test_indices(), [2, 3])

    def test_indices_require_masks(self):
        graph = make_path_graph(3)
        with pytest.raises(ValueError):
            graph.train_indices()

    def test_copy_is_deep(self):
        graph = make_path_graph(4)
        clone = graph.copy()
        clone.adjacency[0, 1] = 0.0
        assert graph.adjacency[0, 1] == 1.0

    def test_surrogate_fixture_is_valid(self, tiny_graph):
        assert tiny_graph.train_mask.sum() == 30
        assert tiny_graph.num_classes == 3
        assert (tiny_graph.degrees > 0).all()
