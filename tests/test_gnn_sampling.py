"""Tests for neighbour-sampled mini-batch training (:mod:`repro.gnn.sampling`).

The acceptance properties of the subsystem mirror the grid engine's:

* **equivalence** — exhaustive fanouts + a single batch covering the train
  nodes reproduce the full-batch forward logits to 1e-8 under both the
  dense and the sparse compute backend, for GCN and GraphSAGE;
* **determinism** — the batch schedule and every sampled block are pure
  functions of ``(seed, epoch, batch_index)``, so serial, thread-pool and
  process-pool execution produce byte-identical structures (the PR-2
  executor-transparency pattern);
* **edge cases** — isolated nodes, degree < fanout, empty frontiers and
  single-node batches are well-formed;
* **cache hygiene** — batch-local blocks never enter (nor get served from)
  the revision-keyed full-graph propagation-operator cache.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.gnn.models import build_model
from repro.gnn.sampling import BatchSpec, NeighborSampler, block_propagation
from repro.gnn.trainer import TrainConfig, Trainer
from repro.graphs.graph import Graph
from repro.graphs.khop import khop_frontier
from repro.graphs.revision import adjacency_revision
from repro.sparse import OperatorCache, use_operator_cache
from repro.sparse.backend import build_propagation, use_backend
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    gcn_norm_csr,
    induced_subgraph_csr,
    left_norm_csr,
    mean_aggregation_csr,
)


def _path_graph_with_isolates() -> Graph:
    """A 7-node graph: a 5-path (0-1-2-3-4) plus isolated nodes 5 and 6."""
    adjacency = np.zeros((7, 7))
    for i in range(4):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    features = np.eye(7)
    labels = np.array([0, 1, 0, 1, 0, 1, 0])
    masks = np.ones(7, dtype=bool)
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_mask=masks.copy(),
        val_mask=~masks,
        test_mask=~masks,
    )


# --------------------------------------------------------------------- #
# Exhaustive-sampling equivalence (satellite 1)
# --------------------------------------------------------------------- #
class TestExhaustiveEquivalence:
    @pytest.mark.parametrize("model_name", ["gcn", "graphsage"])
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_single_batch_matches_full_forward(self, tiny_graph, model_name, backend):
        model = build_model(
            model_name,
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        seeds = tiny_graph.train_indices()
        sampler = NeighborSampler(tiny_graph.csr(), seed=3)
        blocks = sampler.sample_blocks(seeds, (None,) * model.message_passing_layers)
        with use_backend(backend):
            structure = tiny_graph.adjacency if backend == "dense" else tiny_graph.csr()
            full = model.predict_logits(tiny_graph.features, structure)
            mini = model.predict_logits_blocks(tiny_graph.features, blocks)
        assert np.allclose(mini, full[seeds], atol=1e-8)

    def test_block_operators_match_full_kernels(self, tiny_graph):
        """Exhaustive block propagation rows equal the full-graph operator rows."""
        csr = tiny_graph.csr()
        seeds = np.arange(tiny_graph.num_nodes, dtype=np.int64)  # every node
        sampler = NeighborSampler(csr, seed=0)
        block = sampler.sample_layer(seeds, fanout=None)
        full = {
            "gcn": gcn_norm_csr(csr),
            "left": left_norm_csr(csr),
            "mean": mean_aggregation_csr(csr, include_self=True),
            "mean_noself": mean_aggregation_csr(csr, include_self=False),
        }
        for kind, reference in full.items():
            assert np.allclose(
                block_propagation(block, kind).to_dense(),
                reference.to_dense(),
                atol=1e-8,
            )

    def test_block_src_set_is_khop_frontier(self, tiny_graph):
        """A stack of exhaustive blocks covers exactly the L-hop receptive field."""
        seeds = tiny_graph.train_indices()[:5]
        sampler = NeighborSampler(tiny_graph.csr(), seed=0)
        blocks = sampler.sample_blocks(seeds, (None, None))
        receptive = khop_frontier(tiny_graph.csr(), seeds, hops=2)
        assert np.array_equal(np.sort(blocks[0].src_nodes), receptive)


# --------------------------------------------------------------------- #
# Seeded determinism across executors (satellite 2)
# --------------------------------------------------------------------- #
def _batch_fingerprint(payload) -> bytes:
    """Schedule + blocks of one (epoch, batch) drawn from scratch.

    Top-level so the process executor can pickle it; the sampler is rebuilt
    from the raw CSR arrays inside the worker, exactly as a fresh process
    would.
    """
    indptr, indices, data, n, seed, fanouts, epoch, batch_index = payload
    sampler = NeighborSampler(CSRMatrix(indptr, indices, data, (n, n)), seed=seed)
    batches = sampler.epoch_schedule(np.arange(n, dtype=np.int64), 16, epoch=epoch)
    seeds = batches[batch_index]
    blocks = sampler.sample_blocks(seeds, fanouts, epoch=epoch, batch_index=batch_index)
    return seeds.tobytes() + b"#" + b"#".join(block.fingerprint() for block in blocks)


class TestSeededDeterminism:
    @pytest.fixture(scope="class")
    def payloads(self, tiny_graph):
        csr = tiny_graph.csr()
        return [
            (
                csr.indptr,
                csr.indices,
                csr.data,
                tiny_graph.num_nodes,
                11,
                (4, 4),
                epoch,
                batch_index,
            )
            for epoch in range(2)
            for batch_index in range(3)
        ]

    # tiny_graph is consumed through `payloads`; listing it keeps fixture
    # construction in the main process for the session-scoped graph.
    def test_thread_and_process_executors_match_serial(self, payloads, tiny_graph):
        serial = [_batch_fingerprint(payload) for payload in payloads]
        with ThreadPoolExecutor(max_workers=4) as pool:
            threaded = list(pool.map(_batch_fingerprint, payloads))
        with ProcessPoolExecutor(max_workers=2) as pool:
            processed = list(pool.map(_batch_fingerprint, payloads))
        assert serial == threaded == processed

    def test_same_seed_same_schedule_and_blocks(self, tiny_graph):
        nodes = tiny_graph.train_indices()
        first = NeighborSampler(tiny_graph.csr(), seed=5)
        second = NeighborSampler(tiny_graph.csr(), seed=5)
        for epoch in range(3):
            a = first.epoch_schedule(nodes, 8, epoch=epoch)
            b = second.epoch_schedule(nodes, 8, epoch=epoch)
            assert [batch.tolist() for batch in a] == [batch.tolist() for batch in b]
            blocks_a = first.sample_blocks(a[0], (3, 3), epoch=epoch, batch_index=0)
            blocks_b = second.sample_blocks(b[0], (3, 3), epoch=epoch, batch_index=0)
            assert [x.fingerprint() for x in blocks_a] == [
                x.fingerprint() for x in blocks_b
            ]

    def test_different_seed_differs(self, tiny_graph):
        nodes = tiny_graph.train_indices()
        a = NeighborSampler(tiny_graph.csr(), seed=0).epoch_schedule(nodes, 8)
        b = NeighborSampler(tiny_graph.csr(), seed=1).epoch_schedule(nodes, 8)
        assert any(x.tolist() != y.tolist() for x, y in zip(a, b))

    def test_batched_training_is_reproducible(self, tiny_graph):
        def run():
            model = build_model(
                "gcn",
                in_features=tiny_graph.num_features,
                num_classes=tiny_graph.num_classes,
                hidden_features=8,
                rng=0,
            )
            config = TrainConfig(
                epochs=6,
                patience=None,
                track_best=False,
                batch_size=8,
                fanouts=(4, 4),
                batch_seed=2,
            )
            Trainer(model, config).fit(tiny_graph)
            return model.state_dict()

        first, second = run(), run()
        assert all(np.array_equal(first[key], second[key]) for key in first)


# --------------------------------------------------------------------- #
# Sampler / kernel edge cases (satellite 3)
# --------------------------------------------------------------------- #
class TestEdgeCases:
    def test_isolated_nodes_sample_only_themselves(self):
        graph = _path_graph_with_isolates()
        sampler = NeighborSampler(graph.csr(), seed=0)
        block = sampler.sample_layer(np.array([5, 6]), fanout=3, rng=np.random.default_rng(0))
        assert block.adjacency.nnz == 0
        assert block.src_nodes.tolist() == [5, 6]
        # gcn/left/mean self-loops keep isolated rows stochastic; mean_noself is zero.
        for kind in ("gcn", "left", "mean"):
            dense = block_propagation(block, kind).to_dense()
            assert np.allclose(np.diag(dense), 1.0)
        assert block_propagation(block, "mean_noself").nnz == 0

    def test_degree_below_fanout_takes_all_neighbors(self):
        graph = _path_graph_with_isolates()
        sampler = NeighborSampler(graph.csr(), seed=0)
        block = sampler.sample_layer(
            np.arange(5), fanout=10, rng=np.random.default_rng(0)
        )
        # fanout exceeds every degree, so the block equals the exhaustive one.
        exhaustive = sampler.sample_layer(np.arange(5), fanout=None)
        assert block.fingerprint() == exhaustive.fingerprint()

    def test_fanout_caps_sampled_degree(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph.csr(), seed=0)
        block = sampler.sample_layer(
            tiny_graph.train_indices(), fanout=2, rng=np.random.default_rng(1)
        )
        degrees = np.diff(block.adjacency.indptr)
        assert degrees.max() <= 2
        # sampled columns must be real neighbours
        dense = tiny_graph.adjacency
        for row in range(block.num_dst):
            cols = block.adjacency.indices[
                block.adjacency.indptr[row] : block.adjacency.indptr[row + 1]
            ]
            for col in block.src_nodes[cols]:
                assert dense[block.dst_nodes[row], col] > 0

    def test_duplicate_dst_rejected(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph.csr(), seed=0)
        with pytest.raises(ValueError):
            sampler.sample_layer(np.array([3, 3]), fanout=None)

    def test_empty_frontier(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph.csr(), seed=0)
        block = sampler.sample_layer(np.empty(0, dtype=np.int64), fanout=None)
        assert block.num_dst == 0 and block.num_src == 0
        assert block.adjacency.shape == (0, 0)
        blocks = sampler.sample_blocks(np.empty(0, dtype=np.int64), (2, 2))
        assert all(b.num_dst == 0 for b in blocks)

    def test_single_node_batch_trains_and_predicts(self, tiny_graph):
        model = build_model(
            "gcn",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        seed_node = tiny_graph.train_indices()[:1]
        sampler = NeighborSampler(tiny_graph.csr(), seed=0)
        blocks = sampler.sample_blocks(seed_node, (None, None))
        logits = model.predict_logits_blocks(tiny_graph.features, blocks)
        full = model.predict_logits(tiny_graph.features, tiny_graph.adjacency)
        assert logits.shape == (1, tiny_graph.num_classes)
        assert np.allclose(logits[0], full[seed_node[0]], atol=1e-8)

    def test_batch_spec_validation(self):
        with pytest.raises(ValueError):
            BatchSpec(batch_size=0)
        with pytest.raises(ValueError):
            BatchSpec(batch_size=4, fanouts=(0, 3))
        assert BatchSpec(batch_size=4).layer_fanouts(3) == (None, None, None)
        with pytest.raises(ValueError):
            BatchSpec(batch_size=4, fanouts=(2,)).layer_fanouts(2)

    def test_train_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(batch_size=-1)
        with pytest.raises(ValueError):
            TrainConfig(fanouts=(5, 5))  # fanouts without batch_size
        with pytest.raises(ValueError):
            TrainConfig(batch_size=4, eval_interval=0)

    def test_slice_rows_matches_dense(self, tiny_graph):
        csr = tiny_graph.csr()
        rows = np.array([4, 0, 4, 11])  # duplicates allowed, order preserved
        sliced = csr.slice_rows(rows)
        assert np.allclose(sliced.to_dense(), tiny_graph.adjacency[rows])
        with pytest.raises(ValueError):
            csr.slice_rows(np.array([tiny_graph.num_nodes]))

    def test_induced_subgraph_matches_dense(self, tiny_graph):
        nodes = np.array([3, 0, 17, 9])
        induced = induced_subgraph_csr(tiny_graph.csr(), nodes)
        assert np.allclose(
            induced.to_dense(), tiny_graph.adjacency[np.ix_(nodes, nodes)]
        )
        with pytest.raises(ValueError):
            induced_subgraph_csr(tiny_graph.csr(), np.array([1, 1]))

    def test_induced_subgraph_empty_and_isolated(self):
        graph = _path_graph_with_isolates()
        empty = induced_subgraph_csr(graph.csr(), np.empty(0, dtype=np.int64))
        assert empty.shape == (0, 0) and empty.nnz == 0
        isolated = induced_subgraph_csr(graph.csr(), np.array([5, 6]))
        assert isolated.shape == (2, 2) and isolated.nnz == 0


# --------------------------------------------------------------------- #
# Operator-cache hygiene (satellite 4)
# --------------------------------------------------------------------- #
class TestOperatorCacheHygiene:
    def test_blocks_are_never_revision_tagged(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph.csr(), seed=0)
        blocks = sampler.sample_blocks(tiny_graph.train_indices()[:8], (3, 3))
        for block in blocks:
            assert adjacency_revision(block.adjacency) is None

    def test_batched_training_does_not_pollute_opcache(self, tiny_graph):
        """Mini-batch epochs must leave the propagation cache to the full graph.

        Only the full-graph evaluation operator may enter the cache (one
        entry, hit every epoch); block operators bypass it entirely, and the
        entry served afterwards is still the untouched full-graph operator.
        """
        model = build_model(
            "gcn",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        cache = OperatorCache()
        config = TrainConfig(
            epochs=5, patience=None, track_best=False, batch_size=8, fanouts=(3, 3)
        )
        with use_operator_cache(cache):
            Trainer(model, config).fit(tiny_graph)
            stats = cache.stats
            # One miss per (revision, kind, backend) the *evaluation* needed;
            # batches contributed nothing.
            assert stats.size == stats.misses == 1
            assert stats.hits >= config.epochs - 1
            cached = build_propagation(tiny_graph.adjacency, kind="gcn")
        reference = build_propagation(tiny_graph.adjacency, kind="gcn")
        assert np.allclose(cached.to_array(), reference.to_array(), atol=0)

    def test_full_batch_path_unchanged_when_batching_off(self, tiny_graph):
        """batch_size=None must reproduce the original trainer bit-for-bit."""

        def run(config):
            model = build_model(
                "gcn",
                in_features=tiny_graph.num_features,
                num_classes=tiny_graph.num_classes,
                hidden_features=8,
                rng=0,
            )
            result = Trainer(model, config).fit(tiny_graph)
            return model.state_dict(), result.history

        state_a, history_a = run(TrainConfig(epochs=8, patience=None, track_best=False))
        state_b, history_b = run(
            TrainConfig(epochs=8, patience=None, track_best=False, batch_size=None)
        )
        assert history_a == history_b
        assert all(np.array_equal(state_a[key], state_b[key]) for key in state_a)


# --------------------------------------------------------------------- #
# Mini-batch training end-to-end
# --------------------------------------------------------------------- #
class TestMiniBatchTraining:
    def test_batched_training_learns(self, tiny_graph):
        model = build_model(
            "gcn",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        config = TrainConfig(
            epochs=40,
            patience=None,
            track_best=False,
            batch_size=8,
            fanouts=(5, 5),
            eval_interval=4,
        )
        result = Trainer(model, config).fit(tiny_graph)
        assert result.final_train_accuracy > 0.8
        # eval_interval spaces evaluations out; skipped epochs record NaN.
        evaluated = np.isfinite(result.history["val_accuracy"])
        assert 0 < evaluated.sum() < result.epochs_run

    def test_early_stop_only_fires_on_evaluated_epochs(self, tiny_graph):
        """Regression: with eval_interval > 1 a stale patience counter must
        not break on a skipped epoch, which would report NaN final
        accuracies for a model state nobody measured."""
        model = build_model(
            "gcn",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        config = TrainConfig(
            epochs=60,
            patience=1,
            min_epochs=12,
            batch_size=8,
            fanouts=(3, 3),
            eval_interval=5,
        )
        result = Trainer(model, config).fit(tiny_graph)
        assert np.isfinite(result.final_train_accuracy)
        assert np.isfinite(result.final_val_accuracy)
        # The stopping epoch itself was evaluated.
        assert np.isfinite(result.history["val_accuracy"][-1])

    @pytest.mark.parametrize("model_seed", [0, 1, 2])
    def test_batched_sage_stays_finite(self, tiny_graph, model_seed):
        """Regression: zero post-ReLU block rows must not NaN-poison training.

        Sampled SAGE blocks hit exactly-zero rows far more often than the
        full-batch path; the stable row normalisation keeps every gradient
        finite (with the plain kernel, training collapsed to chance).
        """
        model = build_model(
            "graphsage",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=model_seed,
        )
        config = TrainConfig(
            epochs=30,
            patience=None,
            track_best=False,
            batch_size=8,
            fanouts=(3, 3),
            batch_seed=model_seed,
        )
        result = Trainer(model, config).fit(tiny_graph)
        assert all(
            np.isfinite(value).all() for value in model.state_dict().values()
        )
        assert result.final_train_accuracy > 0.5

    def test_trainer_accepts_explicit_batch_spec(self, tiny_graph):
        model = build_model(
            "graphsage",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        spec = BatchSpec(batch_size=16, fanouts=(4, 4), seed=9)
        trainer = Trainer(
            model, TrainConfig(epochs=10, patience=None, track_best=False), batch_spec=spec
        )
        result = trainer.fit(tiny_graph)
        assert result.epochs_run == 10

    def test_method_settings_with_batching(self):
        from repro.core.config import MethodSettings

        settings = MethodSettings()
        batched = settings.with_batching(32, fanouts=(10, 10), batch_seed=4)
        assert batched.train.batch_size == 32
        assert batched.train.fanouts == (10, 10)
        assert settings.train.batch_size is None  # original untouched
        assert batched.with_batching(None).train.batch_size is None

    def test_cli_parser_batch_flags(self):
        from repro.experiments.__main__ import build_parser, parse_fanouts

        args = build_parser().parse_args(
            ["table3", "--batch-size", "64", "--fanouts", "10,all", "--eval-interval", "5"]
        )
        assert args.batch_size == 64 and args.fanouts == (10, None)
        assert args.eval_interval == 5
        assert build_parser().parse_args(["table3"]).batch_size is None
        assert parse_fanouts("5") == (5,)
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--fanouts", "0,2"])

    def test_preset_batch_fields_reach_train_config(self):
        from dataclasses import replace

        from repro.experiments.presets import get_preset

        preset = replace(
            get_preset("smoke"), batch_size=16, fanouts=(4, 4), eval_interval=3
        )
        train = preset.method_settings("cora").train
        assert train.batch_size == 16
        assert train.fanouts == (4, 4)
        assert train.eval_interval == 3


# --------------------------------------------------------------------- #
# Vectorised fanout sampling (PR-4 satellite)
# --------------------------------------------------------------------- #
def _dense_test_graph(seed: int = 42, n: int = 40, density: float = 0.18) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density).astype(float)
    dense = np.triu(dense, 1)
    return CSRMatrix.from_dense(dense + dense.T)


class TestVectorisedSampler:
    """The batched argsort sampler replacing the per-row ``rng.choice`` loop."""

    GOLDEN_BLOCKS = "590d393a795ed010fd34dc6c8483abe57669e378079323b3f83f952ad0b2d408"
    GOLDEN_KEYED = "e8563b6bf5213fae323be2fb36817abdc3d9f9b554ee2225e047fcc3a92a4e1b"

    def test_seeded_golden_blocks(self):
        """Pinned stream: the vectorised sampler's output is frozen here.

        Byte-identity with the historical per-row ``rng.choice`` stream is
        NOT required (the draw order changed); what is pinned is that the
        *new* stream never drifts silently across refactors.
        """
        import hashlib

        sampler = NeighborSampler(_dense_test_graph(), seed=0)
        blocks = sampler.sample_blocks(np.arange(8), (2, 3), epoch=1, batch_index=2)
        digest = hashlib.sha256(b"|".join(b.fingerprint() for b in blocks)).hexdigest()
        assert digest == self.GOLDEN_BLOCKS

    def test_seeded_golden_keyed_blocks(self):
        import hashlib

        sampler = NeighborSampler(_dense_test_graph(), seed=0)
        blocks = sampler.ego_blocks(np.arange(8), (2, 3), key=123)
        digest = hashlib.sha256(b"|".join(b.fingerprint() for b in blocks)).hexdigest()
        assert digest == self.GOLDEN_KEYED

    def test_sampled_rows_are_valid_subsets(self):
        csr = _dense_test_graph(seed=3, n=60, density=0.3)
        sampler = NeighborSampler(csr, seed=1)
        fanout = 4
        block = sampler.sample_layer(
            np.arange(60), fanout, np.random.default_rng(9)
        )
        degrees = np.diff(csr.indptr)
        counts = np.diff(block.adjacency.indptr)
        assert np.array_equal(counts, np.minimum(degrees, fanout))
        for row in range(60):
            start, stop = block.adjacency.indptr[row], block.adjacency.indptr[row + 1]
            sampled = np.sort(block.src_nodes[block.adjacency.indices[start:stop]])
            full = csr.indices[csr.indptr[row] : csr.indptr[row + 1]]
            assert np.all(np.isin(sampled, full))
            # Ascending-column order is preserved within each row.
            local = block.adjacency.indices[start:stop]
            globals_ = block.src_nodes[local]
            assert np.array_equal(globals_, np.sort(globals_))

    def test_sampling_is_approximately_uniform(self):
        """Rank-of-uniform-keys selection draws uniform without-replacement subsets."""
        star = np.zeros((9, 9))
        star[0, 1:] = star[1:, 0] = 1.0  # node 0 has 8 neighbours
        sampler = NeighborSampler(CSRMatrix.from_dense(star), seed=0)
        rng = np.random.default_rng(7)
        counts = np.zeros(9)
        trials = 4000
        for _ in range(trials):
            block = sampler.sample_layer(np.array([0]), 2, rng)
            chosen = block.src_nodes[block.adjacency.indices]
            counts[chosen] += 1
        expected = trials * 2 / 8
        assert np.all(np.abs(counts[1:] - expected) < 5 * np.sqrt(expected))

    def test_keyed_sampling_batch_independent(self):
        """A dst row's keyed sample never depends on its batch companions."""
        sampler = NeighborSampler(_dense_test_graph(seed=5, density=0.4), seed=0)
        alone = sampler.sample_layer_keyed(np.array([7]), 3, key=99)
        grouped = sampler.sample_layer_keyed(np.array([2, 7, 31]), 3, key=99)
        row_alone = alone.src_nodes[
            alone.adjacency.indices[alone.adjacency.indptr[0] : alone.adjacency.indptr[1]]
        ]
        row_grouped = grouped.src_nodes[
            grouped.adjacency.indices[grouped.adjacency.indptr[1] : grouped.adjacency.indptr[2]]
        ]
        assert np.array_equal(np.sort(row_alone), np.sort(row_grouped))

    def test_keyed_exhaustive_equals_plain_exhaustive(self):
        sampler = NeighborSampler(_dense_test_graph(), seed=0)
        nodes = np.arange(10)
        keyed = sampler.ego_blocks(nodes, (None, None), key=5)
        plain = sampler.sample_blocks(nodes, (None, None))
        assert [a.fingerprint() for a in keyed] == [b.fingerprint() for b in plain]


# --------------------------------------------------------------------- #
# Neighbour-sampled evaluation (PR-4 satellite)
# --------------------------------------------------------------------- #
class TestSampledEvaluation:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("model_name", ["gcn", "graphsage"])
    def test_sampled_eval_matches_full_graph_eval(
        self, tiny_graph, backend, model_name
    ):
        """Exhaustive ego-block evaluation equals full-graph evaluation.

        Training histories (loss, per-epoch accuracies) must agree epoch by
        epoch — the accuracies are counts over identical-to-1e-8 logits.
        """
        from repro.sparse.backend import use_backend as _use_backend

        results = {}
        with _use_backend(backend):
            for sampled in (False, True):
                model = build_model(
                    model_name,
                    in_features=tiny_graph.num_features,
                    num_classes=tiny_graph.num_classes,
                    hidden_features=8,
                    rng=0,
                )
                config = TrainConfig(
                    epochs=10,
                    patience=None,
                    track_best=False,
                    sampled_eval=sampled,
                )
                results[sampled] = Trainer(model, config).fit(tiny_graph)
        assert results[False].history["loss"] == results[True].history["loss"]
        assert (
            results[False].history["train_accuracy"]
            == results[True].history["train_accuracy"]
        )
        assert (
            results[False].history["val_accuracy"]
            == results[True].history["val_accuracy"]
        )

    def test_sampled_eval_with_minibatch_training(self, tiny_graph):
        model = build_model(
            "gcn",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        config = TrainConfig(
            epochs=20,
            patience=None,
            track_best=False,
            batch_size=8,
            fanouts=(5, 5),
            eval_interval=4,
            sampled_eval=True,
        )
        result = Trainer(model, config).fit(tiny_graph)
        assert result.final_train_accuracy > 0.8
        assert np.isfinite(result.final_val_accuracy)

    def test_sampled_eval_gat_falls_back(self, tiny_graph):
        model = build_model(
            "gat",
            in_features=tiny_graph.num_features,
            num_classes=tiny_graph.num_classes,
            hidden_features=8,
            rng=0,
        )
        config = TrainConfig(
            epochs=4, patience=None, track_best=False, sampled_eval=True
        )
        result = Trainer(model, config).fit(tiny_graph)
        assert np.isfinite(result.final_train_accuracy)


# --------------------------------------------------------------------- #
# Incremental degree maintenance (serving-mutation satellite)
# --------------------------------------------------------------------- #
class TestIncrementalDegrees:
    """NeighborSampler.apply_mutation splices degrees instead of rebuilding."""

    def _session(self, seed=0, n=60):
        from repro.serve.session import GraphSession

        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < 0.08).astype(float)
        dense = np.triu(dense, 1)
        dense = dense + dense.T
        features = rng.random((n, 4))
        return GraphSession(CSRMatrix.from_dense(dense), features)

    def test_degrees_track_a_mutation_chain(self):
        session = self._session()
        sampler = NeighborSampler(session.csr, seed=0)
        session.add_listener(sampler.apply_mutation)

        session.add_edges(np.array([[0, 7], [12, 40], [3, 59]]))
        session.remove_edges(np.array([[0, 7]]))
        session.add_node(np.zeros(4), neighbors=np.array([1, 2, 3]))
        session.add_node(np.zeros(4))  # isolated: degree stays d̃ = 1

        fresh = NeighborSampler(session.csr, seed=0)
        assert sampler.csr is session.csr
        assert sampler.num_nodes == session.num_nodes
        np.testing.assert_array_equal(
            sampler.degrees_with_self, fresh.degrees_with_self
        )

    def test_spliced_sampler_draws_identical_blocks(self):
        session = self._session(seed=1)
        sampler = NeighborSampler(session.csr, seed=3)
        session.add_listener(sampler.apply_mutation)
        session.add_edges(np.array([[2, 30], [5, 45]]))
        fresh = NeighborSampler(session.csr, seed=3)
        nodes = np.array([0, 2, 30, 58])
        for incremental, rebuilt in zip(
            sampler.ego_blocks(nodes, (2, 2), key=9),
            fresh.ego_blocks(nodes, (2, 2), key=9),
        ):
            assert incremental.fingerprint() == rebuilt.fingerprint()

    def test_shrinking_structure_rejected(self):
        sampler = NeighborSampler(np.zeros((4, 4)))

        class Event:
            new_csr = CSRMatrix.from_dense(np.zeros((3, 3)))
            touched_rows = np.empty(0, dtype=np.int64)

        with pytest.raises(ValueError, match="grow"):
            sampler.apply_mutation(Event())

    def test_with_mutation_is_a_snapshot_copy(self):
        """The copying variant leaves the original sampler untouched (the
        engine swaps it in so in-flight readers keep a consistent view)."""
        session = self._session(seed=2)
        sampler = NeighborSampler(session.csr, seed=0)
        before_csr = sampler.csr
        before_degrees = sampler.degrees_with_self.copy()

        class Listener:
            updated = None

            def __call__(self, event):
                Listener.updated = sampler.with_mutation(event)

        session.add_listener(Listener())
        session.add_edges(np.array([[0, 9], [4, 33]]))
        updated = Listener.updated
        assert updated is not sampler
        assert sampler.csr is before_csr
        np.testing.assert_array_equal(sampler.degrees_with_self, before_degrees)
        fresh = NeighborSampler(session.csr, seed=0)
        assert updated.csr is session.csr
        np.testing.assert_array_equal(
            updated.degrees_with_self, fresh.degrees_with_self
        )
