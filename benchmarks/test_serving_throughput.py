"""Serving benchmark: warm-cache sampled serving vs naive full-graph forward.

The point of the serving subsystem is per-request cost: a naive deployment
answers every prediction request with one full-graph forward — Θ(N + m)
even on the sparse backend — while the engine's sampled ego-block path costs
``O(Π fanouts)`` per miss and O(1) per warm-cache hit.  A closed-loop load
generator over a 20k-node SBM graph measures both and reports requests/sec
plus p50/p99 latencies.

Acceptance (ISSUE 4): warm-cache sampled serving sustains ≥ 10× the
requests/sec of the naive full-graph baseline at 20k nodes.  (Staleness
under incremental updates is asserted by ``tests/test_serving.py``.)

A second leg measures the vectorised fanout sampler against the historical
per-row ``rng.choice`` loop it replaced (the PR-3 follow-on hot spot): same
row counts, ≥ 2× faster at benchmark scale.

A third leg (ISSUE 7) measures the cold-**miss** path: a deep flush of
distinct uncached requests served by fused plan replay over one
block-diagonal megabatch versus the unfused per-micro-batch module
forwards.  Megabatching wins twice — deduplicated receptive fields (one
sampling pass over the union of the ego blocks) and one kernel dispatch
sequence per flush instead of one per micro-batch — so the gap widens with
flush depth; at a 4096-request flush the fused path must be ≥ 2× the
unfused one, with the plan counters proving the timed path *replayed* a
cached plan rather than re-recording it.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from conftest import run_once
from repro.datasets.synthetic import generate_scaling_graph
from repro.gnn.models import build_model
from repro.gnn.plan import PlanCache, record_plan
from repro.gnn.sampling import _subsample_rows
from repro.serve.batching import RequestBatcher
from repro.serve.engine import InferenceEngine, ServeConfig
from repro.serve.session import GraphSession
from repro.sparse.csr import CSRMatrix
from repro.sparse.backend import use_backend

NUM_NODES = 20_000
NUM_FEATURES = 16
NUM_CLASSES = 4
AVERAGE_DEGREE = 10.0
FANOUTS = (10, 10)
WORKING_SET = 512        # distinct nodes the request stream draws from
WARM_REQUESTS = 4_000    # measured warm-phase requests
NAIVE_REQUESTS = 5       # full-graph forwards are expensive; few suffice
MIN_SPEEDUP = 10.0
PLAN_FLUSH = 4_096       # cold-miss megabatch flush depth for the plan leg
PLAN_MICRO_BATCH = 64    # unfused leg micro-batch (the pre-plan default)
PLAN_REPEATS = 3         # best-of timing repeats per leg
PLAN_MIN_SPEEDUP = 2.0


def _setup():
    csr, features, labels = generate_scaling_graph(
        NUM_NODES,
        num_classes=NUM_CLASSES,
        average_degree=AVERAGE_DEGREE,
        num_features=NUM_FEATURES,
        seed=0,
    )
    # Serving throughput is independent of the weights; an untrained model
    # keeps the benchmark about the serving path, not a training budget.
    model = build_model(
        "gcn",
        in_features=NUM_FEATURES,
        num_classes=NUM_CLASSES,
        hidden_features=16,
        rng=0,
    )
    model.eval()
    return csr, features, model


def _naive_rps(model, features, csr) -> float:
    start = time.perf_counter()
    for node in range(NAIVE_REQUESTS):
        model.predict_logits(features, csr)[node]
    return NAIVE_REQUESTS / (time.perf_counter() - start)


def _served_metrics(model, features, csr) -> dict:
    session = GraphSession(csr, features)
    engine = InferenceEngine(model, session, ServeConfig(fanouts=FANOUTS))
    rng = np.random.default_rng(1)
    working_set = rng.choice(NUM_NODES, size=WORKING_SET, replace=False)

    cold_start = time.perf_counter()
    engine.predict_logits(working_set)  # prime: every request below can hit
    cold_seconds = time.perf_counter() - cold_start

    stream = rng.choice(working_set, size=WARM_REQUESTS, replace=True)
    latencies: List[float] = []
    warm_start = time.perf_counter()
    for node in stream:
        begin = time.perf_counter()
        engine.predict_logits(int(node))
        latencies.append(time.perf_counter() - begin)
    warm_seconds = time.perf_counter() - warm_start

    ordered = np.sort(latencies)
    stats = engine.cache_stats
    return {
        "warm_rps": WARM_REQUESTS / warm_seconds,
        "cold_rps": WORKING_SET / cold_seconds,
        "p50_ms": 1e3 * ordered[int(0.50 * (ordered.size - 1))],
        "p99_ms": 1e3 * ordered[int(0.99 * (ordered.size - 1))],
        "hit_rate": stats.hit_rate,
    }


def _reference_subsample_rows(sliced: CSRMatrix, fanout: int, rng) -> CSRMatrix:
    """The historical per-row ``rng.choice`` loop (kept for the comparison)."""
    counts = np.diff(sliced.indptr)
    keep_positions = []
    new_counts = np.minimum(counts, fanout)
    for row in range(sliced.shape[0]):
        start, stop = int(sliced.indptr[row]), int(sliced.indptr[row + 1])
        degree = stop - start
        if degree == 0:
            continue
        if degree <= fanout:
            keep_positions.append(np.arange(start, stop, dtype=np.int64))
        else:
            chosen = rng.choice(degree, size=fanout, replace=False)
            chosen.sort()
            keep_positions.append(start + chosen.astype(np.int64))
    if keep_positions:
        flat = np.concatenate(keep_positions)
        indices, data = sliced.indices[flat], sliced.data[flat]
    else:
        indices = np.empty(0, dtype=np.int64)
        data = np.empty(0, dtype=np.float64)
    indptr = np.zeros(sliced.shape[0] + 1, dtype=np.int64)
    np.cumsum(new_counts, out=indptr[1:])
    return CSRMatrix(indptr, indices, data, sliced.shape)


def _sampler_comparison(csr) -> dict:
    rows = np.arange(csr.shape[0], dtype=np.int64)
    sliced = csr.slice_rows(rows)
    fanout = 5

    start = time.perf_counter()
    reference = _reference_subsample_rows(sliced, fanout, np.random.default_rng(0))
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vectorised = _subsample_rows(sliced, fanout, np.random.default_rng(0))
    vector_seconds = time.perf_counter() - start

    assert np.array_equal(
        np.diff(reference.indptr), np.diff(vectorised.indptr)
    ), "samplers must keep identical per-row counts"
    return {
        "loop_seconds": loop_seconds,
        "vector_seconds": vector_seconds,
        "speedup": loop_seconds / vector_seconds,
    }


def _flush_once(batcher: RequestBatcher, working: np.ndarray) -> tuple:
    """Submit every node of ``working`` and drain inline; returns (s, rows)."""
    futures = [batcher.submit(int(node)) for node in working]
    start = time.perf_counter()
    batcher.flush()
    elapsed = time.perf_counter() - start
    return elapsed, np.vstack([future.result() for future in futures])


def _plan_comparison(csr, features, model) -> dict:
    """Cold-miss fused-vs-unfused: one deep flush of distinct requests.

    Both legs serve the identical PLAN_FLUSH-node flush with the logit cache
    off, so every timed request is on the miss path.  The unfused leg is the
    pre-plan serving stack (module forwards over strict micro-batches); the
    fused leg coalesces the flush into one megabatch and replays the cached
    plan.  The plan is recorded (and validated) by an untimed priming call —
    the counters assert the timed flushes replayed it, never re-recorded.
    """
    rng = np.random.default_rng(11)
    working = rng.choice(NUM_NODES, size=PLAN_FLUSH, replace=False)

    session = GraphSession(csr, features)
    unfused_engine = InferenceEngine(
        model, session, ServeConfig(fanouts=FANOUTS, cache=False, plan=False)
    )
    unfused_batcher = RequestBatcher(
        unfused_engine, max_batch_size=PLAN_MICRO_BATCH, coalesce_batches=1
    )
    unfused_seconds = None
    for _ in range(PLAN_REPEATS):
        elapsed, unfused_rows = _flush_once(unfused_batcher, working)
        unfused_seconds = elapsed if unfused_seconds is None else min(
            unfused_seconds, elapsed
        )

    plan_cache = PlanCache()
    fused_engine = InferenceEngine(
        model,
        GraphSession(csr, features),
        ServeConfig(fanouts=FANOUTS, cache=False, megabatch_segment=PLAN_FLUSH),
        plan_cache=plan_cache,
    )
    fused_engine.predict_logits(working[:8])  # prime: record + validate once
    fused_batcher = RequestBatcher(
        fused_engine,
        max_batch_size=PLAN_MICRO_BATCH,
        coalesce_batches=PLAN_FLUSH // PLAN_MICRO_BATCH,
    )
    fused_seconds = None
    for _ in range(PLAN_REPEATS):
        elapsed, fused_rows = _flush_once(fused_batcher, working)
        fused_seconds = elapsed if fused_seconds is None else min(
            fused_seconds, elapsed
        )

    np.testing.assert_allclose(fused_rows, unfused_rows, rtol=0.0, atol=1e-8)

    # Per-op dispatch accounting: a replay runs the plan's flat kernel list
    # once per megabatch; the unfused leg walks the module graph once per
    # micro-batch, dispatching the same kernel sequence each time.
    plan = record_plan(model)
    micro_batches = PLAN_FLUSH // PLAN_MICRO_BATCH
    stats = fused_engine.cache_stats
    return {
        "unfused_seconds": unfused_seconds,
        "fused_seconds": fused_seconds,
        "speedup": unfused_seconds / fused_seconds,
        "unfused_rps": PLAN_FLUSH / unfused_seconds,
        "fused_rps": PLAN_FLUSH / fused_seconds,
        "op_count": plan.op_count,
        "unfused_dispatches": micro_batches * plan.op_count,
        "fused_dispatches": plan.op_count,
        "unfused_spmm": micro_batches * plan.num_layers,
        "fused_spmm": plan.num_layers,
        "plans_recorded": stats.plans_recorded,
        "plan_replays": stats.plan_replays,
        "plan_fallbacks": stats.plan_fallbacks,
        "mean_megabatch_size": stats.mean_megabatch_size,
    }


def _report():
    csr, features, model = _setup()
    with use_backend("sparse"):
        naive_rps = _naive_rps(model, features, csr)
        served = _served_metrics(model, features, csr)
        plan = _plan_comparison(csr, features, model)
    sampling = _sampler_comparison(csr)
    return {"naive_rps": naive_rps, **served, "sampling": sampling, "plan": plan}


def test_serving_throughput(benchmark):
    metrics = run_once(benchmark, _report)
    print()
    print(
        f"naive full-graph: {metrics['naive_rps']:8.1f} req/s   "
        f"(one Θ(N+m) forward per request, N={NUM_NODES})"
    )
    print(
        f"served cold:      {metrics['cold_rps']:8.1f} req/s   "
        f"(miss: sampled ego-block forward, fanouts {FANOUTS})"
    )
    print(
        f"served warm:      {metrics['warm_rps']:8.1f} req/s   "
        f"(hit rate {metrics['hit_rate']:.2f}, "
        f"p50 {metrics['p50_ms']:.3f}ms, p99 {metrics['p99_ms']:.3f}ms)"
    )
    sampling = metrics["sampling"]
    print(
        f"fanout sampling:  loop {sampling['loop_seconds'] * 1e3:.1f}ms → "
        f"vectorised {sampling['vector_seconds'] * 1e3:.1f}ms "
        f"({sampling['speedup']:.1f}×)"
    )
    plan = metrics["plan"]
    print(
        f"cold-miss flush ({PLAN_FLUSH} requests): "
        f"unfused {plan['unfused_seconds'] * 1e3:.1f}ms "
        f"({plan['unfused_rps']:.0f} req/s) → "
        f"fused {plan['fused_seconds'] * 1e3:.1f}ms "
        f"({plan['fused_rps']:.0f} req/s)  {plan['speedup']:.2f}×"
    )
    print(
        f"  dispatches/flush: unfused {plan['unfused_dispatches']} "
        f"({plan['unfused_spmm']} spmm) → fused {plan['fused_dispatches']} "
        f"({plan['fused_spmm']} spmm, {plan['op_count']} plan ops); "
        f"plans recorded {plan['plans_recorded']}, "
        f"replays {plan['plan_replays']}, "
        f"fallbacks {plan['plan_fallbacks']}"
    )

    speedup = metrics["warm_rps"] / metrics["naive_rps"]
    assert speedup >= MIN_SPEEDUP, (
        f"warm-cache serving is only {speedup:.1f}× the naive baseline "
        f"(required ≥ {MIN_SPEEDUP}×)"
    )
    # The vectorised sampler must beat the python loop it replaced.
    assert sampling["speedup"] >= 2.0, (
        f"vectorised sampler speedup {sampling['speedup']:.1f}× < 2×"
    )
    # Fused plan replay must carry the cold-miss path (ISSUE 7), and the
    # counters must prove the timed flushes replayed one cached plan.
    assert plan["speedup"] >= PLAN_MIN_SPEEDUP, (
        f"fused cold-miss flush is only {plan['speedup']:.2f}× the unfused "
        f"path (required ≥ {PLAN_MIN_SPEEDUP}×)"
    )
    assert plan["plans_recorded"] == 1, "plan must be recorded exactly once"
    assert plan["plan_replays"] >= PLAN_REPEATS, "timed flushes must replay"
    assert plan["plan_fallbacks"] == 0, "no fused flush may fall back"
