"""Serving benchmark: warm-cache sampled serving vs naive full-graph forward.

The point of the serving subsystem is per-request cost: a naive deployment
answers every prediction request with one full-graph forward — Θ(N + m)
even on the sparse backend — while the engine's sampled ego-block path costs
``O(Π fanouts)`` per miss and O(1) per warm-cache hit.  A closed-loop load
generator over a 20k-node SBM graph measures both and reports requests/sec
plus p50/p99 latencies.

Acceptance (ISSUE 4): warm-cache sampled serving sustains ≥ 10× the
requests/sec of the naive full-graph baseline at 20k nodes.  (Staleness
under incremental updates is asserted by ``tests/test_serving.py``.)

A second leg measures the vectorised fanout sampler against the historical
per-row ``rng.choice`` loop it replaced (the PR-3 follow-on hot spot): same
row counts, ≥ 2× faster at benchmark scale.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from conftest import run_once
from repro.datasets.synthetic import generate_scaling_graph
from repro.gnn.models import build_model
from repro.gnn.sampling import _subsample_rows
from repro.serve.engine import InferenceEngine, ServeConfig
from repro.serve.session import GraphSession
from repro.sparse.csr import CSRMatrix
from repro.sparse.backend import use_backend

NUM_NODES = 20_000
NUM_FEATURES = 16
NUM_CLASSES = 4
AVERAGE_DEGREE = 10.0
FANOUTS = (10, 10)
WORKING_SET = 512        # distinct nodes the request stream draws from
WARM_REQUESTS = 4_000    # measured warm-phase requests
NAIVE_REQUESTS = 5       # full-graph forwards are expensive; few suffice
MIN_SPEEDUP = 10.0


def _setup():
    csr, features, labels = generate_scaling_graph(
        NUM_NODES,
        num_classes=NUM_CLASSES,
        average_degree=AVERAGE_DEGREE,
        num_features=NUM_FEATURES,
        seed=0,
    )
    # Serving throughput is independent of the weights; an untrained model
    # keeps the benchmark about the serving path, not a training budget.
    model = build_model(
        "gcn",
        in_features=NUM_FEATURES,
        num_classes=NUM_CLASSES,
        hidden_features=16,
        rng=0,
    )
    model.eval()
    return csr, features, model


def _naive_rps(model, features, csr) -> float:
    start = time.perf_counter()
    for node in range(NAIVE_REQUESTS):
        model.predict_logits(features, csr)[node]
    return NAIVE_REQUESTS / (time.perf_counter() - start)


def _served_metrics(model, features, csr) -> dict:
    session = GraphSession(csr, features)
    engine = InferenceEngine(model, session, ServeConfig(fanouts=FANOUTS))
    rng = np.random.default_rng(1)
    working_set = rng.choice(NUM_NODES, size=WORKING_SET, replace=False)

    cold_start = time.perf_counter()
    engine.predict_logits(working_set)  # prime: every request below can hit
    cold_seconds = time.perf_counter() - cold_start

    stream = rng.choice(working_set, size=WARM_REQUESTS, replace=True)
    latencies: List[float] = []
    warm_start = time.perf_counter()
    for node in stream:
        begin = time.perf_counter()
        engine.predict_logits(int(node))
        latencies.append(time.perf_counter() - begin)
    warm_seconds = time.perf_counter() - warm_start

    ordered = np.sort(latencies)
    stats = engine.cache_stats
    return {
        "warm_rps": WARM_REQUESTS / warm_seconds,
        "cold_rps": WORKING_SET / cold_seconds,
        "p50_ms": 1e3 * ordered[int(0.50 * (ordered.size - 1))],
        "p99_ms": 1e3 * ordered[int(0.99 * (ordered.size - 1))],
        "hit_rate": stats.hit_rate,
    }


def _reference_subsample_rows(sliced: CSRMatrix, fanout: int, rng) -> CSRMatrix:
    """The historical per-row ``rng.choice`` loop (kept for the comparison)."""
    counts = np.diff(sliced.indptr)
    keep_positions = []
    new_counts = np.minimum(counts, fanout)
    for row in range(sliced.shape[0]):
        start, stop = int(sliced.indptr[row]), int(sliced.indptr[row + 1])
        degree = stop - start
        if degree == 0:
            continue
        if degree <= fanout:
            keep_positions.append(np.arange(start, stop, dtype=np.int64))
        else:
            chosen = rng.choice(degree, size=fanout, replace=False)
            chosen.sort()
            keep_positions.append(start + chosen.astype(np.int64))
    if keep_positions:
        flat = np.concatenate(keep_positions)
        indices, data = sliced.indices[flat], sliced.data[flat]
    else:
        indices = np.empty(0, dtype=np.int64)
        data = np.empty(0, dtype=np.float64)
    indptr = np.zeros(sliced.shape[0] + 1, dtype=np.int64)
    np.cumsum(new_counts, out=indptr[1:])
    return CSRMatrix(indptr, indices, data, sliced.shape)


def _sampler_comparison(csr) -> dict:
    rows = np.arange(csr.shape[0], dtype=np.int64)
    sliced = csr.slice_rows(rows)
    fanout = 5

    start = time.perf_counter()
    reference = _reference_subsample_rows(sliced, fanout, np.random.default_rng(0))
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vectorised = _subsample_rows(sliced, fanout, np.random.default_rng(0))
    vector_seconds = time.perf_counter() - start

    assert np.array_equal(
        np.diff(reference.indptr), np.diff(vectorised.indptr)
    ), "samplers must keep identical per-row counts"
    return {
        "loop_seconds": loop_seconds,
        "vector_seconds": vector_seconds,
        "speedup": loop_seconds / vector_seconds,
    }


def _report():
    csr, features, model = _setup()
    with use_backend("sparse"):
        naive_rps = _naive_rps(model, features, csr)
        served = _served_metrics(model, features, csr)
    sampling = _sampler_comparison(csr)
    return {"naive_rps": naive_rps, **served, "sampling": sampling}


def test_serving_throughput(benchmark):
    metrics = run_once(benchmark, _report)
    print()
    print(
        f"naive full-graph: {metrics['naive_rps']:8.1f} req/s   "
        f"(one Θ(N+m) forward per request, N={NUM_NODES})"
    )
    print(
        f"served cold:      {metrics['cold_rps']:8.1f} req/s   "
        f"(miss: sampled ego-block forward, fanouts {FANOUTS})"
    )
    print(
        f"served warm:      {metrics['warm_rps']:8.1f} req/s   "
        f"(hit rate {metrics['hit_rate']:.2f}, "
        f"p50 {metrics['p50_ms']:.3f}ms, p99 {metrics['p99_ms']:.3f}ms)"
    )
    sampling = metrics["sampling"]
    print(
        f"fanout sampling:  loop {sampling['loop_seconds'] * 1e3:.1f}ms → "
        f"vectorised {sampling['vector_seconds'] * 1e3:.1f}ms "
        f"({sampling['speedup']:.1f}×)"
    )

    speedup = metrics["warm_rps"] / metrics["naive_rps"]
    assert speedup >= MIN_SPEEDUP, (
        f"warm-cache serving is only {speedup:.1f}× the naive baseline "
        f"(required ≥ {MIN_SPEEDUP}×)"
    )
    # The vectorised sampler must beat the python loop it replaced.
    assert sampling["speedup"] >= 2.0, (
        f"vectorised sampler speedup {sampling['speedup']:.1f}× < 2×"
    )
