"""Benchmark: Table IV — effectiveness of PPFR vs the Reg/DPReg/DPFR baselines."""

from conftest import run_once

from repro.experiments.tables import table4_ppfr_effectiveness


def test_table4_ppfr_effectiveness(benchmark, smoke_preset):
    result = run_once(
        benchmark,
        table4_ppfr_effectiveness,
        preset=smoke_preset,
        seed=0,
        datasets=["cora", "citeseer", "pubmed"],
        models=["gcn"],
        methods=("reg", "dpreg", "dpfr", "ppfr"),
    )
    print("\n" + result.formatted())
    rows = {(row["dataset"], row["method"]): row for row in result.rows}
    datasets = {row["dataset"] for row in result.rows}

    # Shape checks mirroring the paper's qualitative claims:
    # (1) every method reduces bias on most datasets,
    ppfr_bias_reduced = sum(
        1 for d in datasets if rows[(d, "ppfr")]["delta_bias_percent"] < 0
    )
    assert ppfr_bias_reduced >= len(datasets) - 1
    # (2) PPFR restricts privacy risk (Δrisk ≤ small positive tolerance) on most datasets,
    ppfr_risk_ok = sum(
        1 for d in datasets if rows[(d, "ppfr")]["delta_risk_percent"] <= 0.5
    )
    assert ppfr_risk_ok >= len(datasets) - 1
    # (3) PPFR achieves a positive combined Δ on the majority of datasets,
    ppfr_positive = sum(1 for d in datasets if rows[(d, "ppfr")]["delta_combined"] > 0)
    assert ppfr_positive >= len(datasets) - 1
    # (4) Reg alone does not reduce risk as much as PPFR (per-dataset majority).
    reg_worse = sum(
        1
        for d in datasets
        if rows[(d, "reg")]["delta_risk_percent"] >= rows[(d, "ppfr")]["delta_risk_percent"]
    )
    assert reg_worse >= len(datasets) - 1
