"""Benchmark: Table V — the method grid on weak-homophily graphs (Enzymes, Credit)."""

from conftest import run_once

from repro.experiments.tables import table5_weak_homophily


def test_table5_weak_homophily(benchmark, smoke_preset):
    result = run_once(
        benchmark,
        table5_weak_homophily,
        preset=smoke_preset,
        seed=0,
        datasets=["enzymes", "credit"],
        methods=("reg", "dpreg", "dpfr", "ppfr"),
    )
    print("\n" + result.formatted())
    rows = {(row["dataset"], row["method"]): row for row in result.rows}
    # Shape checks at smoke scale: the grid completes on both weak-homophily
    # surrogates, PPFR still reduces bias, and the fairness-only baseline's
    # risk increase stays bounded (the paper's "limited or non-existent
    # trade-off" on weak homophily; the sign flip of Reg's Δ on Credit shows
    # up at the quick/full presets — see EXPERIMENTS.md).
    assert {d for d, _ in rows} == {"enzymes", "credit"}
    assert all(rows[(d, "ppfr")]["delta_bias_percent"] < 5.0 for d in ("enzymes", "credit"))
    assert all(rows[(d, "reg")]["delta_risk_percent"] < 10.0 for d in ("enzymes", "credit"))
