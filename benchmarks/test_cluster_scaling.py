"""Cluster benchmark: cold-miss serving throughput, 4 shards vs 1 process.

The single-process engine computes every cache miss under one GIL; the shard
router fans a request batch out to worker *processes* that compute their
misses concurrently.  This benchmark drives an all-miss (cold) request
stream — each node asked exactly once, so caching never helps — over a
20k-node SBM graph and compares requests/sec:

* single process — one ``InferenceEngine`` answering batches directly;
* cluster — a 4-shard ``ShardRouter`` over child-process workers, same
  batches, same sampled fanouts.

Acceptance (ISSUE 5): ≥ 2× cold-miss throughput with 4 shards at 20k nodes.
Process-level parallelism needs hardware to run on, so the assertion is
gated on the cores actually available to this run (GitHub CI runners and
any real serving host have ≥ 4): with fewer cores the benchmark still
verifies the cluster answers correctly and within a sane overhead factor of
the single process, and prints the measured numbers.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import run_once
from repro.cluster import ShardRouter
from repro.datasets.synthetic import generate_scaling_graph
from repro.gnn.models import build_model
from repro.serve.engine import InferenceEngine, ServeConfig
from repro.serve.session import GraphSession
from repro.sparse.backend import use_backend

NUM_NODES = 20_000
NUM_FEATURES = 16
NUM_CLASSES = 4
AVERAGE_DEGREE = 10.0
FANOUTS = (10, 10)
NUM_SHARDS = 4
REQUESTS = 4_096
BATCH = 256


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _setup():
    csr, features, labels = generate_scaling_graph(
        NUM_NODES,
        num_classes=NUM_CLASSES,
        average_degree=AVERAGE_DEGREE,
        num_features=NUM_FEATURES,
        seed=0,
    )
    model = build_model(
        "gcn",
        in_features=NUM_FEATURES,
        num_classes=NUM_CLASSES,
        hidden_features=16,
        rng=0,
    )
    model.eval()
    rng = np.random.default_rng(1)
    stream = rng.choice(NUM_NODES, size=REQUESTS, replace=False)
    batches = [stream[start : start + BATCH] for start in range(0, REQUESTS, BATCH)]
    return csr, features, model, batches


def _single_process_rps(model, csr, features, batches) -> float:
    session = GraphSession(csr, features)
    engine = InferenceEngine(model, session, ServeConfig(fanouts=FANOUTS))
    start = time.perf_counter()
    for batch in batches:
        engine.predict_logits(batch)
    return REQUESTS / (time.perf_counter() - start)


def _cluster_metrics(model, csr, features, batches) -> dict:
    session = GraphSession(csr, features)
    spawn_start = time.perf_counter()
    router = ShardRouter(
        model,
        session,
        num_shards=NUM_SHARDS,
        strategy="hash",
        config=ServeConfig(fanouts=FANOUTS),
        workers="process",
    )
    spawn_seconds = time.perf_counter() - spawn_start
    with router:
        first = router.predict_logits(batches[0][:8])  # handshake warm-up
        start = time.perf_counter()
        for batch in batches:
            router.predict_logits(batch)
        elapsed = time.perf_counter() - start
        stats = router.stats()
        partition = router.partition.stats(csr)
    # correctness spot-check: cluster answers equal a fresh engine's
    reference = InferenceEngine(
        model, GraphSession(csr, features), ServeConfig(fanouts=FANOUTS)
    )
    assert np.allclose(
        first, reference.predict_logits(batches[0][:8]), atol=1e-8
    ), "sharded answers diverged from the single-process engine"
    return {
        "rps": REQUESTS / elapsed,
        "spawn_seconds": spawn_seconds,
        "partition": partition,
        "per_shard_requests": [s["requests"] for s in stats.shards],
    }


def _report():
    csr, features, model, batches = _setup()
    with use_backend("sparse"):
        single_rps = _single_process_rps(model, csr, features, batches)
        cluster = _cluster_metrics(model, csr, features, batches)
    return {"single_rps": single_rps, **cluster}


def test_cluster_cold_miss_scaling(benchmark):
    cores = _effective_cores()
    metrics = run_once(benchmark, _report)
    speedup = metrics["rps"] / metrics["single_rps"]
    partition = metrics["partition"]
    print()
    print(
        f"single process:  {metrics['single_rps']:8.1f} req/s   "
        f"(all-miss sampled serving, fanouts {FANOUTS}, N={NUM_NODES})"
    )
    print(
        f"cluster x{NUM_SHARDS}:      {metrics['rps']:8.1f} req/s   "
        f"({speedup:.2f}x, spawn {metrics['spawn_seconds']:.2f}s, "
        f"{cores} core(s) available)"
    )
    print(
        f"partition:       balance {partition['balance']:.2f}, "
        f"edge cut {partition['edge_cut']:.2f}, "
        f"replication {partition['replication']:.2f}x, "
        f"shard requests {metrics['per_shard_requests']}"
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"4-shard cold-miss throughput is only {speedup:.2f}x the single "
            f"process (required >= 2x with {cores} cores)"
        )
    elif cores >= 2:
        assert speedup >= 1.2, (
            f"cold-miss speedup {speedup:.2f}x < 1.2x with {cores} cores"
        )
    else:
        # Single-core hosts cannot express process parallelism; require only
        # that the routing/IPC layer stays within a sane overhead factor.
        assert speedup >= 0.25, (
            f"cluster overhead factor {speedup:.2f}x is pathological"
        )
