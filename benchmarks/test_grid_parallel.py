"""Benchmark: parallel grid execution + warm caches vs the serial cold path.

Acceptance criterion of the grid-engine PR: a *repeated* quick table3 run
(the workload of iterating on an experiment, or of figures that re-declare a
table's cells) through a parallel runner with warm operator/model caches
must cut wall-clock by ≥ 2× over the serial cold path.  The comparison runs
the same grid twice per configuration:

* **serial cold** — ``GridRunner(executor="serial", cache=False)``: every
  cell (and every epoch's propagation operator) is rebuilt from scratch,
  twice — the behaviour of the pre-engine hand-rolled loops;
* **parallel warm** — ``GridRunner(executor="thread", jobs=2, cache=True)``:
  independent (dataset) cells train concurrently, per-epoch operators are
  memoised by graph revision, and the second run resolves every cell from
  the artifact cache.

Both configurations produce bitwise-identical rows (asserted), so the
speedup is pure engineering headroom.
"""

from __future__ import annotations

import time

from repro.experiments.grid import GridRunner
from repro.experiments.tables import table3_accuracy_bias


def _repeated_table3(runner: GridRunner):
    first = table3_accuracy_bias("quick", seed=0, runner=runner)
    second = table3_accuracy_bias("quick", seed=0, runner=runner)
    return first, second


def test_parallel_warm_cache_speedup(benchmark):
    cold_runner = GridRunner(executor="serial", cache=False)
    start = time.perf_counter()
    cold_first, cold_second = _repeated_table3(cold_runner)
    cold_seconds = time.perf_counter() - start

    warm_runner = GridRunner(executor="thread", jobs=2, cache=True)

    def warm():
        return _repeated_table3(warm_runner)

    warm_first, warm_second = benchmark.pedantic(warm, rounds=1, iterations=1)
    warm_seconds = benchmark.stats.stats.mean

    speedup = cold_seconds / warm_seconds
    print(
        f"\nrepeated quick table3: serial cold {cold_seconds:.2f}s, "
        f"thread(jobs=2)+cache {warm_seconds:.2f}s -> {speedup:.1f}x "
        f"({warm_runner.cache_stats})"
    )

    # Identical results under every configuration...
    assert cold_first.rows == cold_second.rows == warm_first.rows == warm_second.rows
    # ...the repeat resolves entirely from cache...
    assert warm_runner.cache_stats.hits >= 3
    # ...and the engine pays for itself: ≥ 2× over the serial cold path.
    assert speedup >= 2.0, f"expected >= 2x, measured {speedup:.2f}x"
