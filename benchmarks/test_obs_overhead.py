"""Micro-benchmark: telemetry must be near-free when disabled.

The observability layer leaves spans and counters inline on the serving hot
path (engine predict, cache lookup, plan replay, batcher queue).  Its
disabled-path budget is pinned here:

* **a disabled span call is one ContextVar read** returning a shared no-op
  singleton — measured directly in a tight loop;
* **the per-request instrumentation cost** (disabled span calls × span
  sites on the warm-cache leg) must stay under 2% of the measured
  warm-cache per-request latency;
* with telemetry **enabled**, the same request records a trace — the smoke
  check that the machinery being budgeted is actually live.
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets.synthetic import generate_scaling_graph
from repro.gnn.models import build_model
from repro.obs.trace import NULL_SPAN, Tracer, span, use_tracer, use_tracing
from repro.serve import GraphSession, InferenceEngine, RequestBatcher

NUM_NODES = 400
NUM_FEATURES = 8
NUM_CLASSES = 3

# Disabled span-call sites on the warm-cache leg.  Per *request* only the
# ``start_trace`` in ``submit`` runs (the queue span is guarded behind a
# ``root is not NULL_SPAN`` check); the remaining sites run once per
# *batch*: ``engine.predict`` and ``engine.cache_lookup`` (the
# ``batcher.engine_call`` site is likewise guarded), counted with headroom.
SPAN_SITES_PER_SUBMIT = 1
SPAN_SITES_PER_BATCH = 4
BATCH = 64

OVERHEAD_BUDGET = 0.02


def _serving_stack():
    csr, features, _ = generate_scaling_graph(
        NUM_NODES,
        num_classes=NUM_CLASSES,
        average_degree=5.0,
        num_features=NUM_FEATURES,
        seed=0,
    )
    model = build_model(
        "gcn",
        in_features=NUM_FEATURES,
        num_classes=NUM_CLASSES,
        hidden_features=8,
        rng=0,
    )
    model.eval()
    session = GraphSession(csr, features)
    return InferenceEngine(model, session)


def test_disabled_span_is_noop_singleton():
    with use_tracing(False):
        assert span("engine.predict") is NULL_SPAN


def test_disabled_overhead_within_budget():
    engine = _serving_stack()
    batcher = RequestBatcher(engine, max_batch_size=BATCH)
    nodes = np.arange(BATCH)

    with use_tracing(False):
        # Warm the logit cache and the fused plan.
        for node in nodes:
            batcher.submit(int(node))
        batcher.flush()

        # Warm-cache serving leg: every request hits the cache.
        rounds = 5
        started = time.perf_counter()
        for _ in range(rounds):
            for node in nodes:
                batcher.submit(int(node))
            batcher.flush()
        per_request = (time.perf_counter() - started) / (rounds * nodes.size)

        # Disabled span call cost, amortised over a tight loop.
        calls = 200_000
        started = time.perf_counter()
        for _ in range(calls):
            span("engine.predict")
        per_span = (time.perf_counter() - started) / calls

    sites_per_request = SPAN_SITES_PER_SUBMIT + SPAN_SITES_PER_BATCH / BATCH
    per_request_overhead = per_span * sites_per_request
    ratio = per_request_overhead / per_request
    print(
        f"\nwarm-cache request: {per_request * 1e6:.1f}µs; disabled span: "
        f"{per_span * 1e9:.0f}ns × {sites_per_request:.2f} sites/request = "
        f"{per_request_overhead * 1e9:.0f}ns ({ratio * 100:.3f}% of request)"
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"disabled telemetry costs {ratio * 100:.2f}% of the warm-cache "
        f"serving leg (budget {OVERHEAD_BUDGET * 100:.0f}%)"
    )


def test_enabled_tracing_records_the_request():
    engine = _serving_stack()
    tracer = Tracer()
    with use_tracer(tracer), use_tracing(True):
        batcher = RequestBatcher(engine, max_batch_size=8)
        future = batcher.submit(0)
        batcher.flush()
        future.result()
    tids = tracer.trace_ids()
    assert len(tids) == 1
    names = {s["name"] for s in tracer.trace(tids[0])}
    assert {"request", "engine.predict"} <= names
