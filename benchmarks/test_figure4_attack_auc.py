"""Benchmark: Figure 4 — link-stealing AUC per distance, vanilla vs Reg."""

from conftest import run_once

from repro.experiments.figures import figure4_attack_auc


def test_figure4_attack_auc(benchmark, smoke_preset):
    result = run_once(
        benchmark,
        figure4_attack_auc,
        preset=smoke_preset,
        seed=0,
        datasets=["cora", "citeseer", "pubmed"],
    )
    print("\n" + result.formatted(columns=["dataset", "method", "auc_mean", "auc_cosine", "auc_correlation"]))
    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], {})[row["method"]] = row
    # Shape check: the attack succeeds (AUC well above 0.5) everywhere, and on
    # the majority of datasets the fairer (Reg) model is at least as leaky.
    for rows in by_dataset.values():
        assert rows["vanilla"]["auc_mean"] > 0.6
    leakier = sum(
        1 for rows in by_dataset.values()
        if rows["reg"]["auc_mean"] >= rows["vanilla"]["auc_mean"] - 0.01
    )
    assert leakier >= len(by_dataset) - 1
