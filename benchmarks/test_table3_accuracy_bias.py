"""Benchmark: Table III — accuracy and bias of GCN, Vanilla vs Reg."""

from conftest import run_once

from repro.experiments.tables import table3_accuracy_bias


def test_table3_accuracy_bias(benchmark, smoke_preset):
    result = run_once(
        benchmark,
        table3_accuracy_bias,
        preset=smoke_preset,
        seed=0,
        datasets=["cora", "citeseer", "pubmed"],
    )
    print("\n" + result.formatted())
    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], {})[row["method"]] = row
    # Shape check: Reg reduces bias on the majority of datasets and never
    # increases accuracy by a large margin (fairness costs performance).
    bias_reduced = sum(
        1 for rows in by_dataset.values() if rows["reg"]["bias"] <= rows["vanilla"]["bias"]
    )
    assert bias_reduced >= 2
    for rows in by_dataset.values():
        assert rows["reg"]["accuracy_percent"] <= rows["vanilla"]["accuracy_percent"] + 5.0
