"""Benchmark: Lemma V.1 / Proposition V.2 diagnostics across all surrogates."""

from conftest import run_once

from repro.experiments.tables import proposition_tradeoff_diagnostics


def test_proposition_tradeoff(benchmark, smoke_preset):
    result = run_once(
        benchmark,
        proposition_tradeoff_diagnostics,
        preset=smoke_preset,
        seed=0,
    )
    print("\n" + result.formatted())
    rows = {row["dataset"]: row for row in result.rows}
    # Homophily assumption p > q holds on every surrogate.
    assert all(row["p_intra"] > row["q_inter"] for row in rows.values())
    # Sparsity: the 2-hop fraction of unconnected pairs is small (Eq. 5).
    assert all(row["two_hop_ratio_empirical"] < 0.3 for row in rows.values())
    # The strong-homophily graphs are more homophilous than the weak ones.
    strong = min(rows[d]["edge_homophily"] for d in ("cora", "pubmed"))
    weak = max(rows[d]["edge_homophily"] for d in ("enzymes", "credit"))
    assert strong > weak
