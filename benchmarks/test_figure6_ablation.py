"""Benchmark: Figure 6 — PPFR ablations (FR epochs, PP ratio, PP+FR epochs)."""

from conftest import run_once

from repro.experiments.figures import figure6_ablation


def test_figure6_ablation(benchmark, smoke_preset):
    result = run_once(
        benchmark,
        figure6_ablation,
        preset=smoke_preset,
        seed=0,
        dataset="cora",
        epoch_fractions=(0.1, 0.2),
        gammas=(0.0, 0.2, 0.4),
    )
    print("\n" + result.formatted())
    panels = {}
    for row in result.rows:
        panels.setdefault(row["panel"], []).append(row)
    assert {"vanilla", "fr_epochs", "pp_gamma", "ppfr_epochs"} <= set(panels)

    vanilla = panels["vanilla"][0]
    # Panel 2 (middle figure): increasing the perturbation ratio γ does not
    # increase the attack AUC, and γ=0.4 costs at least as much accuracy as γ=0.
    gamma_rows = sorted(panels["pp_gamma"], key=lambda row: row["sweep_value"])
    assert gamma_rows[-1]["risk_auc"] <= gamma_rows[0]["risk_auc"] + 0.01
    assert gamma_rows[-1]["accuracy"] <= gamma_rows[0]["accuracy"] + 0.02
    # Panel 3 (right figure): with PP active, risk stays near the vanilla level.
    for row in panels["ppfr_epochs"]:
        assert row["risk_auc"] <= vanilla["risk_auc"] + 0.02
