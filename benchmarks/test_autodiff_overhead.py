"""Micro-benchmark: tape overhead after the VJP primitive-registry rewrite.

Three claims of the autodiff core rewrite are pinned here:

* **constant operands do zero gradient work** — ops whose other operand is a
  constant record a node with a single parent link and fire a single VJP;
  the constant side allocates no gradient buffer at all (the old tape
  computed and then discarded a full-size product per constant operand);
* **gather backward never densifies** — ``__getitem__`` adjoints are lazy
  ``(index, values)`` pairs scattered *in place* into the dense gradient the
  surrounding graph already produced; no zeros-of-the-input allocation
  happens (the old tape allocated one per indexing op);
* the in-place scatter-merge is **faster** than the old
  ``zeros_like + np.add.at + add`` dense-scatter strategy, which is the
  per-batch saving on the sampled training and serving paths.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro.datasets.synthetic import generate_scaling_graph
from repro.gnn.layers import GCNConv
from repro.gnn.sampling import NeighborSampler
from repro.nn import functional as F
from repro.nn.autodiff import STATS
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng, spawn_children

ROWS, COLS = 100_000, 32
BUFFER_BYTES = ROWS * COLS * 8


def test_constant_operand_ops_allocate_no_gradient_buffers():
    """A mul with a constant operand fires one VJP, not two."""
    rng = np.random.default_rng(0)
    constant = Tensor(rng.normal(size=(ROWS, COLS)))
    weight = Tensor(rng.normal(size=(COLS,)), requires_grad=True)

    loss = (constant * weight).sum()
    STATS.reset()
    tracemalloc.start()
    loss.backward()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Two nodes (mul, sum) and exactly one VJP each: the constant operand of
    # the mul has no parent link, so its g * a product — a full (ROWS, COLS)
    # buffer under the old tape — is never computed.
    assert STATS.vjp_calls == 2, STATS.snapshot()
    assert constant.grad is None and constant._node is None
    assert weight.grad is not None and weight.grad.shape == (COLS,)
    # Exactly two live full-size buffers: the broadcast seed from the sum's
    # VJP and g * constant for the weight's VJP.  The old tape additionally
    # computed (and discarded) g * weight for the constant operand, pushing
    # the peak to three buffers.
    assert peak < 2.5 * BUFFER_BYTES, f"backward peak {peak} bytes"


def test_constant_only_ops_record_no_nodes():
    constant = Tensor(np.ones((512, 8)))
    STATS.reset()
    out = (constant * 2.0 + 1.0)[np.arange(16)].sum()
    assert STATS.nodes == 0, STATS.snapshot()
    assert not out.requires_grad


def test_getitem_backward_allocates_no_dense_zeros():
    """The sampler-shaped slice pattern: gather grads merge in place."""
    rng = np.random.default_rng(1)
    x = Tensor(rng.normal(size=(ROWS, COLS)), requires_grad=True)
    index = rng.choice(ROWS, size=4096, replace=False)

    hidden = x * 2.0
    loss = hidden.sum() * 0.25 + (hidden[index] * 3.0).sum()
    STATS.reset()
    loss.backward()

    assert STATS.sparse_adjoints == 1, STATS.snapshot()
    assert STATS.scatter_merges == 1, STATS.snapshot()
    # The gather contribution scattered into the dense gradient produced by
    # the sum branch: no zeros-of-hidden buffer was ever allocated.
    assert STATS.densifications == 0, STATS.snapshot()

    expected = np.full((ROWS, COLS), 0.5)
    expected[index] += 6.0
    np.testing.assert_allclose(x.grad, expected)


def test_scatter_merge_beats_dense_scatter():
    """In-place add.at vs the old zeros_like + add.at + dense add."""
    rng = np.random.default_rng(2)
    dense_grad = rng.normal(size=(ROWS, COLS))
    index = rng.choice(ROWS, size=4096, replace=False)
    values = rng.normal(size=(4096, COLS))

    def old_strategy():
        scatter = np.zeros_like(dense_grad)  # per-indexing-op allocation
        np.add.at(scatter, index, values)
        return dense_grad + scatter

    def new_strategy():
        merged = dense_grad.copy()  # the accumulator's single owned copy
        np.add.at(merged, index, values)
        return merged

    np.testing.assert_allclose(old_strategy(), new_strategy())
    old_time = min(_timed(old_strategy) for _ in range(3))
    new_time = min(_timed(new_strategy) for _ in range(3))
    print(f"\ndense-scatter {old_time * 1e3:.2f} ms vs in-place merge {new_time * 1e3:.2f} ms")
    assert new_time < old_time, (new_time, old_time)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class _TwoLayerGCN:
    def __init__(self, rng) -> None:
        rng0, rng1 = spawn_children(ensure_rng(rng), 2)
        self.conv0 = GCNConv(16, 16, rng=rng0)
        self.conv1 = GCNConv(16, 4, rng=rng1)

    def parameters(self):
        return self.conv0.parameters() + self.conv1.parameters()

    def forward(self, x, op0, op1):
        return self.conv1(F.relu(self.conv0(x, op0)), op1)


def test_sampled_training_epoch_tape_overhead():
    """One sampled epoch: no densification anywhere, constants off the tape."""
    num_nodes, batch_size = 5_000, 256
    csr, features, labels = generate_scaling_graph(
        num_nodes, num_classes=4, average_degree=20.0, num_features=16, seed=0
    )
    train_idx = np.sort(
        np.random.default_rng(1).choice(num_nodes, 1024, replace=False)
    ).astype(np.int64)

    model = _TwoLayerGCN(rng=0)
    optimizer = Adam(model.parameters(), lr=0.01)
    sampler = NeighborSampler(csr, seed=0)

    STATS.reset()
    start = time.perf_counter()
    batches = sampler.epoch_schedule(train_idx, batch_size, epoch=0)
    for batch_index, seeds in enumerate(batches):
        optimizer.zero_grad()
        blocks = sampler.sample_blocks(seeds, (5, 5), epoch=0, batch_index=batch_index)
        x = Tensor(features[blocks[0].src_nodes])
        logits = model.forward(x, blocks[0].operator("gcn"), blocks[1].operator("gcn"))
        loss = cross_entropy(logits, labels[seeds])
        loss.backward()
        optimizer.step()
    elapsed = time.perf_counter() - start

    snapshot = STATS.snapshot()
    print(f"\nsampled epoch: {elapsed * 1e3:.1f} ms, tape stats {snapshot}")
    # The loss gathers target log-probs per batch (one sparse adjoint each).
    # The only densification is the tiny (batch, classes) cotangent where
    # that gather meets log_softmax — never a model-sized zeros-of-input.
    assert snapshot["sparse_adjoints"] >= len(batches)
    assert snapshot["densifications"] <= len(batches), snapshot
    # Constant operands (features, propagation blocks, dropout masks) are
    # off the tape entirely: every VJP fired belongs to a grad-bearing
    # operand, so there are strictly fewer VJP calls than 2 per node.
    assert snapshot["vjp_calls"] < 2 * snapshot["nodes"], snapshot
