"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the ``smoke``
preset (reduced surrogate sizes and training budgets) and prints the resulting
rows so the run doubles as a qualitative reproduction report.  Benchmarks run
a single round — the quantity being measured is the end-to-end cost of the
experiment, not a micro-kernel.
"""

from __future__ import annotations

import pytest

from repro.experiments.presets import get_preset


@pytest.fixture(scope="session")
def smoke_preset():
    return get_preset("smoke")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
