"""Benchmark: Figure 5 — accuracy cost (ΔAcc %) of each method on GCN/GAT."""

from conftest import run_once

from repro.experiments.figures import figure5_accuracy_cost


def test_figure5_accuracy_cost(benchmark, smoke_preset):
    result = run_once(
        benchmark,
        figure5_accuracy_cost,
        preset=smoke_preset,
        seed=0,
        datasets=["cora"],
    )
    print("\n" + result.formatted())
    by_method = {row["method"]: row["delta_accuracy_percent"] for row in result.rows}
    # Shape check at smoke scale: no method collapses the model, and the
    # fairness-only baseline (Reg) keeps a small accuracy cost.  The stricter
    # ordering |ΔAcc(PPFR)| < |ΔAcc(DPReg)| reported in the paper emerges at
    # the quick/full presets (larger surrogates); see EXPERIMENTS.md.
    assert set(by_method) == {"reg", "dpreg", "dpfr", "ppfr"}
    assert all(value > -60.0 for value in by_method.values())
    assert by_method["reg"] > -15.0
