"""Scalability benchmark: sparse vs dense graph propagation on SBM graphs.

Synthetic planted-partition graphs from 1k to 50k nodes (average degree 20,
homophily 0.8 — the regime of the paper's datasets) are pushed through the
full propagation pipeline on both backends:

* build the GCN operator ``D̃^{-1/2}(A+I)D̃^{-1/2}``, and
* run one autodiff forward + backward of ``P @ X`` (the inner loop of every
  training epoch).

The dense path is O(n²) in memory and time; the CSR path is O(m).  The test
asserts the headline claims: ≥5× speedup and ≥10× operator-memory reduction
at 20k nodes, with speedup growing super-linearly in n, and a 50k-node graph
(dense footprint would be 20 GB) completing on the sparse path alone.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import run_once
from repro.datasets.synthetic import generate_scaling_graph
from repro.nn.tensor import Tensor
from repro.sparse import CSRMatrix, spmm
from repro.sparse.ops import gcn_norm_csr

NUM_FEATURES = 16
AVERAGE_DEGREE = 20.0
COMPARISON_SIZES = (1_000, 5_000, 20_000)
SPARSE_ONLY_SIZE = 50_000

# The dense leg peaks at several simultaneous (N, N) float64 arrays
# (adjacency, eye, with-loops, broadcast temp, result) — ~10 GB RSS at 20k
# nodes.  Skip dense sizes the machine cannot afford instead of OOM-ing
# constrained CI runners; the sparse leg always runs.
DENSE_PEAK_MATRICES = 5


def _available_memory_bytes() -> int:
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return 1 << 62  # unknown: assume plenty


def _dense_affordable(num_nodes: int) -> bool:
    peak = DENSE_PEAK_MATRICES * num_nodes * num_nodes * 8
    return peak <= 0.8 * _available_memory_bytes()


def _dense_pipeline(adjacency: np.ndarray, features: np.ndarray) -> float:
    """Operator build + one forward/backward on the dense path."""
    from repro.graphs.laplacian import gcn_normalization

    start = time.perf_counter()
    propagation = gcn_normalization(adjacency, mode="symmetric")
    x = Tensor(features, requires_grad=True)
    out = Tensor(propagation).matmul(x)
    out.backward(np.ones_like(out.data))
    return time.perf_counter() - start


def _sparse_pipeline(adjacency: CSRMatrix, features: np.ndarray) -> float:
    """Operator build + one forward/backward on the CSR path."""
    start = time.perf_counter()
    propagation = gcn_norm_csr(adjacency)
    x = Tensor(features, requires_grad=True)
    out = spmm(propagation, x)
    out.backward(np.ones_like(out.data))
    return time.perf_counter() - start


def _scaling_report():
    rows = []
    for num_nodes in COMPARISON_SIZES:
        if not _dense_affordable(num_nodes):
            print(f"[skipped dense comparison at {num_nodes} nodes: not enough memory]")
            continue
        csr, features, _labels = generate_scaling_graph(
            num_nodes,
            average_degree=AVERAGE_DEGREE,
            num_features=NUM_FEATURES,
            seed=0,
        )
        dense_adjacency = csr.to_dense()
        dense_seconds = _dense_pipeline(dense_adjacency, features)
        sparse_seconds = _sparse_pipeline(csr, features)
        operator_dense = gcn_norm_csr(csr)  # nnz of the propagation matrix
        rows.append(
            {
                "num_nodes": num_nodes,
                "nnz": csr.nnz,
                "dense_seconds": dense_seconds,
                "sparse_seconds": sparse_seconds,
                "speedup": dense_seconds / max(sparse_seconds, 1e-12),
                "dense_bytes": dense_adjacency.nbytes,
                "sparse_bytes": operator_dense.memory_bytes(),
            }
        )
        del dense_adjacency
    return rows


def test_scaling_sparse_vs_dense(benchmark):
    rows = run_once(benchmark, _scaling_report)
    assert rows, "machine too small for any dense comparison size"
    print()
    header = (
        f"{'nodes':>8} {'nnz':>10} {'dense_s':>9} {'sparse_s':>9} "
        f"{'speedup':>8} {'mem_ratio':>9}"
    )
    print(header)
    for row in rows:
        memory_ratio = row["dense_bytes"] / row["sparse_bytes"]
        print(
            f"{row['num_nodes']:>8} {row['nnz']:>10} {row['dense_seconds']:>9.3f} "
            f"{row['sparse_seconds']:>9.3f} {row['speedup']:>8.1f} {memory_ratio:>9.1f}"
        )

    by_nodes = {row["num_nodes"]: row for row in rows}
    largest = rows[-1]
    if 20_000 in by_nodes:
        at_20k = by_nodes[20_000]
        # Headline acceptance: ≥5× faster and ≥10× smaller at 20k nodes.
        assert at_20k["speedup"] >= 5.0, f"speedup at 20k was only {at_20k['speedup']:.1f}×"
        assert at_20k["dense_bytes"] >= 10 * at_20k["sparse_bytes"]
    # Super-linear scaling: the advantage grows with graph size.
    if largest["num_nodes"] > rows[0]["num_nodes"]:
        assert largest["speedup"] > rows[0]["speedup"]


def test_sparse_only_50k(benchmark):
    """A 50k-node graph — dense would need ~20 GB per operator — runs sparse-only."""

    def pipeline():
        csr, features, labels = generate_scaling_graph(
            SPARSE_ONLY_SIZE,
            average_degree=AVERAGE_DEGREE,
            num_features=NUM_FEATURES,
            seed=1,
        )
        propagation = gcn_norm_csr(csr)
        x = Tensor(features, requires_grad=True)
        out = spmm(propagation, x)
        out.backward(np.ones_like(out.data))
        return csr, propagation, labels, x

    csr, propagation, labels, x = run_once(benchmark, pipeline)
    assert csr.shape == (SPARSE_ONLY_SIZE, SPARSE_ONLY_SIZE)
    assert labels.shape == (SPARSE_ONLY_SIZE,)
    # Average degree lands near the target without ever densifying.
    average_degree = csr.nnz / SPARSE_ONLY_SIZE
    assert 0.8 * AVERAGE_DEGREE <= average_degree <= 1.2 * AVERAGE_DEGREE
    # Every row of D̃^{-1/2}(A+I)D̃^{-1/2} has positive mass (self-loops make
    # isolated rows impossible), and the backward pass reached the features.
    assert propagation.row_sums().min() > 0.0
    assert x.grad is not None and x.grad.shape == (SPARSE_ONLY_SIZE, NUM_FEATURES)
