"""Scalability benchmark: neighbour-sampled mini-batch vs full-batch training.

SBM graphs of 5k and 20k nodes (average degree 20, the regime of the paper's
datasets) with a *fixed* labelled set are trained one epoch each way:

* **mini-batch** — seed-node batches on CSR with per-layer fanouts; the work
  per epoch is bounded by ``num_train · Π fanouts``, independent of N;
* **full-batch** — one whole-graph forward/backward per epoch; even the
  sparse path is Θ(N + m), and the dense reference path is Θ(N²).

The acceptance claims: mini-batch per-epoch time grows ≤ 1.5× from 5k→20k
nodes while the full-batch epoch grows ≥ 4×, and exhaustive sampling
reproduces the full-batch forward logits to 1e-8 at 5k-node scale.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import run_once
from repro.datasets.synthetic import generate_scaling_graph
from repro.gnn.layers import GCNConv
from repro.gnn.sampling import NeighborSampler
from repro.nn import functional as F
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.sparse import SparseOperator
from repro.sparse.ops import gcn_norm_csr
from repro.utils.rng import ensure_rng, spawn_children

NUM_FEATURES = 16
NUM_CLASSES = 4
HIDDEN = 16
AVERAGE_DEGREE = 20.0
SIZES = (5_000, 20_000)
NUM_TRAIN = 1_024  # fixed labelled set: per-epoch batch count stays constant
BATCH_SIZE = 256
FANOUTS = (5, 5)

# The dense full-batch leg peaks at several simultaneous (N, N) float64
# arrays; skip it (never the sparse/mini legs) on machines that cannot
# afford it, mirroring benchmarks/test_scaling_sparse.py.
DENSE_PEAK_MATRICES = 5


def _available_memory_bytes() -> int:
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return 1 << 62  # unknown: assume plenty


def _dense_affordable(num_nodes: int) -> bool:
    peak = DENSE_PEAK_MATRICES * num_nodes * num_nodes * 8
    return peak <= 0.8 * _available_memory_bytes()


class _TwoLayerGCN:
    """Minimal two-layer GCN over explicit propagation operators.

    The benchmark drives the layers directly (no dropout, explicit operators)
    so the full-batch and mini-batch legs time exactly the propagation and
    parameter math, not model bookkeeping.
    """

    def __init__(self, rng) -> None:
        rng0, rng1 = spawn_children(ensure_rng(rng), 2)
        self.conv0 = GCNConv(NUM_FEATURES, HIDDEN, rng=rng0)
        self.conv1 = GCNConv(HIDDEN, NUM_CLASSES, rng=rng1)

    def parameters(self):
        return self.conv0.parameters() + self.conv1.parameters()

    def forward(self, x, op0, op1):
        hidden = F.relu(self.conv0(x, op0))
        return self.conv1(hidden, op1)


def _setup(num_nodes: int):
    csr, features, labels = generate_scaling_graph(
        num_nodes,
        num_classes=NUM_CLASSES,
        average_degree=AVERAGE_DEGREE,
        num_features=NUM_FEATURES,
        seed=0,
    )
    train_idx = np.random.default_rng(1).choice(num_nodes, NUM_TRAIN, replace=False)
    train_idx = np.sort(train_idx).astype(np.int64)
    return csr, features, labels, train_idx


def _minibatch_epoch_seconds(csr, features, labels, train_idx) -> float:
    model = _TwoLayerGCN(rng=0)
    optimizer = Adam(model.parameters(), lr=0.01)
    sampler = NeighborSampler(csr, seed=0)
    start = time.perf_counter()
    batches = sampler.epoch_schedule(train_idx, BATCH_SIZE, epoch=0)
    for batch_index, seeds in enumerate(batches):
        optimizer.zero_grad()
        blocks = sampler.sample_blocks(seeds, FANOUTS, epoch=0, batch_index=batch_index)
        x = Tensor(features[blocks[0].src_nodes])
        logits = model.forward(x, blocks[0].operator("gcn"), blocks[1].operator("gcn"))
        loss = cross_entropy(logits, labels[seeds])
        loss.backward()
        optimizer.step()
    return time.perf_counter() - start


def _fullbatch_sparse_epoch_seconds(csr, features, labels, train_idx) -> float:
    model = _TwoLayerGCN(rng=0)
    optimizer = Adam(model.parameters(), lr=0.01)
    start = time.perf_counter()
    operator = SparseOperator(gcn_norm_csr(csr))
    optimizer.zero_grad()
    logits = model.forward(Tensor(features), operator, operator)
    loss = cross_entropy(logits[train_idx], labels[train_idx])
    loss.backward()
    optimizer.step()
    return time.perf_counter() - start


def _fullbatch_dense_epoch_seconds(csr, features, labels, train_idx) -> float:
    from repro.graphs.laplacian import gcn_normalization

    model = _TwoLayerGCN(rng=0)
    optimizer = Adam(model.parameters(), lr=0.01)
    dense = csr.to_dense()
    start = time.perf_counter()
    propagation = Tensor(gcn_normalization(dense, mode="symmetric"))
    optimizer.zero_grad()
    logits = model.forward(Tensor(features), propagation, propagation)
    loss = cross_entropy(logits[train_idx], labels[train_idx])
    loss.backward()
    optimizer.step()
    return time.perf_counter() - start


def _equivalence_check(csr, features, train_idx) -> float:
    """Exhaustive-sampling forward vs full-batch forward at 1e-8 (returned max diff)."""
    model = _TwoLayerGCN(rng=0)
    sampler = NeighborSampler(csr, seed=0)
    seeds = train_idx[:BATCH_SIZE]
    blocks = sampler.sample_blocks(seeds, (None, None))
    operator = SparseOperator(gcn_norm_csr(csr))
    with no_grad():
        full = model.forward(Tensor(features), operator, operator).data
        mini = model.forward(
            Tensor(features[blocks[0].src_nodes]),
            blocks[0].operator("gcn"),
            blocks[1].operator("gcn"),
        ).data
    return float(np.abs(mini - full[seeds]).max())


def _scaling_report():
    rows = []
    for num_nodes in SIZES:
        csr, features, labels, train_idx = _setup(num_nodes)
        row = {
            "num_nodes": num_nodes,
            "nnz": csr.nnz,
            "mini_seconds": _minibatch_epoch_seconds(csr, features, labels, train_idx),
            "sparse_seconds": _fullbatch_sparse_epoch_seconds(
                csr, features, labels, train_idx
            ),
            "dense_seconds": (
                _fullbatch_dense_epoch_seconds(csr, features, labels, train_idx)
                if _dense_affordable(num_nodes)
                else None
            ),
        }
        if num_nodes == SIZES[0]:
            row["equivalence_max_diff"] = _equivalence_check(csr, features, train_idx)
        rows.append(row)
    return rows


def test_minibatch_training_scales_flat(benchmark):
    rows = run_once(benchmark, _scaling_report)
    print()
    print(f"{'nodes':>8} {'nnz':>10} {'mini_s':>8} {'full_sparse_s':>14} {'full_dense_s':>13}")
    for row in rows:
        dense = "skipped" if row["dense_seconds"] is None else f"{row['dense_seconds']:.3f}"
        print(
            f"{row['num_nodes']:>8} {row['nnz']:>10} {row['mini_seconds']:>8.3f} "
            f"{row['sparse_seconds']:>14.3f} {dense:>13}"
        )

    small, large = rows[0], rows[-1]
    # Exhaustive sampling reproduces the full forward to 1e-8.
    assert small["equivalence_max_diff"] < 1e-8

    # Mini-batch per-epoch time is flat in N at fixed batch size/fanouts.
    mini_growth = large["mini_seconds"] / max(small["mini_seconds"], 1e-12)
    print(f"mini-batch epoch growth 5k->20k: {mini_growth:.2f}x")
    assert mini_growth <= 1.5, f"mini-batch epoch grew {mini_growth:.2f}x"

    # Full-batch training pays the whole graph every epoch: the dense
    # reference path is Θ(N²) and must grow at least 4× over a 4× node range.
    if small["dense_seconds"] is not None and large["dense_seconds"] is not None:
        dense_growth = large["dense_seconds"] / max(small["dense_seconds"], 1e-12)
        print(f"full-batch (dense) epoch growth 5k->20k: {dense_growth:.2f}x")
        assert dense_growth >= 4.0, f"full-batch epoch grew only {dense_growth:.2f}x"
    else:  # pragma: no cover - constrained machines
        print("[dense full-batch leg skipped: not enough memory]")

    # At 20k nodes a sampled epoch beats even the sparse full-batch epoch.
    assert large["mini_seconds"] < large["sparse_seconds"]
