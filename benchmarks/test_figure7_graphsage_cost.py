"""Benchmark: Figure 7 — accuracy cost of each method on GraphSAGE."""

from conftest import run_once

from repro.experiments.figures import figure7_graphsage_cost


def test_figure7_graphsage_cost(benchmark, smoke_preset):
    result = run_once(
        benchmark,
        figure7_graphsage_cost,
        preset=smoke_preset,
        seed=0,
        datasets=["cora"],
    )
    print("\n" + result.formatted())
    by_method = {row["method"]: row["delta_accuracy_percent"] for row in result.rows}
    assert set(by_method) == {"reg", "dpreg", "dpfr", "ppfr"}
    # Shape check: thanks to neighbour sampling, GraphSAGE tolerates both the DP
    # noise and the PPFR perturbation — no method collapses the model.
    assert all(value > -60.0 for value in by_method.values())
