"""Benchmark: Table II — Pearson correlation between bias and risk influences."""

from conftest import run_once

from repro.experiments.tables import table2_influence_correlation


def test_table2_influence_correlation(benchmark, smoke_preset):
    result = run_once(
        benchmark,
        table2_influence_correlation,
        preset=smoke_preset,
        seed=0,
        datasets=["cora", "citeseer", "pubmed"],
        models=["gcn"],
    )
    print("\n" + result.formatted())
    # Shape check: correlations are valid and, as in the paper, not strongly
    # positive (|r| < 0.3 or negative) for the majority of cells.
    correlations = result.column("pearson_r")
    assert all(-1.0 <= r <= 1.0 for r in correlations)
    weak_or_negative = sum(1 for r in correlations if r < 0.3)
    assert weak_or_negative >= len(correlations) // 2
