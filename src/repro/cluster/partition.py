"""Graph partitioning with k-hop halo replication for sharded serving.

A shard owns a subset of the nodes and answers prediction requests for them
only.  For an L-layer message-passing model the prediction of an owned node
reads the adjacency rows of every node within L-1 hops and the features of
every node within L hops — so each shard replicates, next to its owned
partition, the **halo** (ghost) nodes within ``halo_hops`` of it.  The shard
structure is the *row subset* of the global CSR over owned ∪ halo
(:func:`repro.sparse.ops.row_subset_csr`): same shape, same global node ids,
full adjacency lists for every local node, empty rows elsewhere.  Keeping
global ids makes ego-block extraction, keyed fanout sampling and k-hop
dirty-set invalidation over the shard view *byte-identical* to the global
computation wherever the shard has complete knowledge — which is exactly the
receptive fields of its owned nodes.  That is the invariant the cluster
equivalence tests assert to 1e-8 (in fact bitwise) on both backends.

Two ownership strategies are provided:

* ``hash`` — SplitMix64 of the node id modulo the shard count: stateless,
  O(N), balanced in expectation, oblivious to structure (high edge-cut).
* ``greedy`` — degree-descending linear deterministic greedy (LDG): each
  node joins the shard holding most of its already-placed neighbours,
  damped by a fill factor so shards stay balanced.  Deterministic, O(N + m),
  and markedly lower edge-cut / halo replication on clustered graphs.

Per-shard memory is O(N) index overhead plus O(local nodes · F + local
edges) payload — the partitioned quantities are the ones that dominate at
scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.graphs.khop import khop_frontier
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import row_subset_csr

__all__ = [
    "PARTITION_STRATEGIES",
    "ShardPartition",
    "GraphPartition",
    "assign_owners",
    "partition_graph",
]

PARTITION_STRATEGIES = ("hash", "greedy")


def _hash_owners(num_nodes: int, num_shards: int) -> np.ndarray:
    # SplitMix64 of the node id — the same mixer the keyed sampler uses.
    from repro.gnn.sampling import _mix64

    ids = np.arange(num_nodes, dtype=np.uint64)
    return (_mix64(ids) % np.uint64(num_shards)).astype(np.int64)


def _greedy_owners(adjacency: CSRMatrix, num_shards: int) -> np.ndarray:
    """Degree-descending LDG: maximise placed-neighbour affinity, damped by fill."""
    n = adjacency.shape[0]
    degrees = np.diff(adjacency.indptr)
    order = np.argsort(-degrees, kind="stable")
    capacity = math.ceil(n / num_shards)
    owners = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_shards, dtype=np.int64)
    indptr, indices = adjacency.indptr, adjacency.indices
    for node in order:
        neighbours = indices[indptr[node] : indptr[node + 1]]
        placed = owners[neighbours]
        counts = np.bincount(placed[placed >= 0], minlength=num_shards)
        score = counts * (1.0 - sizes / capacity)
        score[sizes >= capacity] = -np.inf
        best = np.flatnonzero(score == score.max())
        # Ties: least-loaded shard, then lowest id (argmin takes the first).
        shard = int(best[np.argmin(sizes[best])])
        owners[node] = shard
        sizes[shard] += 1
    return owners


def assign_owners(
    adjacency: CSRMatrix, num_shards: int, strategy: str = "greedy"
) -> np.ndarray:
    """Owner shard of every node under the given strategy."""
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be square")
    if num_shards > adjacency.shape[0]:
        raise ValueError(
            f"cannot split {adjacency.shape[0]} nodes into {num_shards} shards"
        )
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {PARTITION_STRATEGIES}"
        )
    if strategy == "hash":
        return _hash_owners(adjacency.shape[0], num_shards)
    return _greedy_owners(adjacency, num_shards)


@dataclass
class ShardPartition:
    """One shard's slice of the graph.

    ``owned`` are the nodes this shard answers for; ``halo`` the ghost nodes
    within ``halo_hops`` of them (both global ids, sorted); ``local`` their
    sorted union.  ``csr`` is the global-shape row-subset structure with full
    rows exactly for ``local``; ``features`` holds the local nodes' feature
    rows aligned with ``local`` (the only feature payload shipped to a
    worker).
    """

    shard_id: int
    num_shards: int
    halo_hops: int
    owned: np.ndarray
    halo: np.ndarray
    local: np.ndarray
    csr: CSRMatrix
    features: np.ndarray

    @property
    def num_nodes(self) -> int:
        """Global node-id space size (not the local node count)."""
        return self.csr.shape[0]

    def padded_features(self, num_features: Optional[int] = None) -> np.ndarray:
        """Globally indexable ``(N, F)`` feature matrix, zero off-shard.

        Models index features by global source-node id, so the worker
        materialises this padded view; only the ``local`` rows are populated
        (every ego block of an owned node stays inside them).
        """
        if num_features is None:
            num_features = self.features.shape[1]
        padded = np.zeros((self.num_nodes, num_features), dtype=np.float64)
        padded[self.local] = self.features
        return padded


@dataclass
class GraphPartition:
    """The full sharding: per-node owners plus every shard's partition."""

    owners: np.ndarray
    shards: List[ShardPartition]
    halo_hops: int
    strategy: str

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def stats(self, adjacency: Optional[CSRMatrix] = None) -> Dict:
        """Balance / edge-cut / replication summary (CLI + benchmark report)."""
        owned_sizes = [int(shard.owned.size) for shard in self.shards]
        halo_sizes = [int(shard.halo.size) for shard in self.shards]
        n = int(self.owners.size)
        stats = {
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "halo_hops": self.halo_hops,
            "owned_sizes": owned_sizes,
            "halo_sizes": halo_sizes,
            "balance": (
                max(owned_sizes) / (n / self.num_shards) if n else float("nan")
            ),
            "replication": (
                sum(owned_sizes[i] + halo_sizes[i] for i in range(self.num_shards))
                / n
                if n
                else float("nan")
            ),
        }
        if adjacency is not None:
            rows = adjacency.row_indices()
            cut = int(np.count_nonzero(self.owners[rows] != self.owners[adjacency.indices]))
            stats["edge_cut"] = cut / max(int(adjacency.nnz), 1)
        return stats


def _build_shard(
    shard_id: int,
    num_shards: int,
    halo_hops: int,
    adjacency: CSRMatrix,
    features: np.ndarray,
    owned: np.ndarray,
) -> ShardPartition:
    local = khop_frontier(adjacency, owned, halo_hops)
    halo = np.setdiff1d(local, owned, assume_unique=True)
    return ShardPartition(
        shard_id=shard_id,
        num_shards=num_shards,
        halo_hops=halo_hops,
        owned=owned,
        halo=halo,
        local=local,
        csr=row_subset_csr(adjacency, local),
        features=np.asarray(features, dtype=np.float64)[local],
    )


def partition_graph(
    adjacency: CSRMatrix,
    features: np.ndarray,
    num_shards: int,
    strategy: str = "greedy",
    halo_hops: int = 2,
    owners: Optional[np.ndarray] = None,
) -> GraphPartition:
    """Partition a graph into ``num_shards`` shards with k-hop halos.

    ``owners`` overrides the strategy with a precomputed assignment (every
    entry in ``0..num_shards-1``).  ``halo_hops`` must be at least the served
    model's message-passing depth for in-shard prediction to be exact.
    """
    if halo_hops < 0:
        raise ValueError("halo_hops must be non-negative")
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2 or features.shape[0] != adjacency.shape[0]:
        raise ValueError("features must be (N, F) with one row per node")
    if owners is None:
        owners = assign_owners(adjacency, num_shards, strategy)
    else:
        owners = np.asarray(owners, dtype=np.int64)
        if owners.shape != (adjacency.shape[0],):
            raise ValueError("owners must assign every node")
        if owners.size and (owners.min() < 0 or owners.max() >= num_shards):
            raise ValueError("owner ids out of range")
        strategy = "explicit"
    shards = [
        _build_shard(
            shard_id,
            num_shards,
            halo_hops,
            adjacency,
            features,
            np.flatnonzero(owners == shard_id).astype(np.int64),
        )
        for shard_id in range(num_shards)
    ]
    return GraphPartition(
        owners=owners, shards=shards, halo_hops=halo_hops, strategy=strategy
    )
