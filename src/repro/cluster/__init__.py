"""Sharded multi-process serving: partitioner, shard workers, router.

The single-process :class:`~repro.serve.engine.InferenceEngine` computes
every cache miss under one GIL.  This package scales it across processes:

* :mod:`repro.cluster.partition` — hash / degree-balanced greedy ownership
  plus k-hop **halo** (ghost) replication, emitted as global-shape row-subset
  structures so in-shard ego-block prediction is *exact*;
* :mod:`repro.cluster.worker` — one ``GraphSession`` + ``InferenceEngine``
  replica per shard, in-process or behind a child-process command pipe,
  parameters loaded from the shared :class:`~repro.serve.registry.ModelRegistry`;
* :mod:`repro.cluster.router` — the front-end: routes requests to owning
  shards, fans mutations out through the ``MutationListener`` protocol with
  per-shard halo rebuilds and version-sync ticks, rebalances ownership on
  ``add_node`` and aggregates per-shard stats.

``python -m repro.cluster serve --shards N`` serves a registered model over
a worker cluster; ``python -m repro.cluster partition`` reports partition
quality (balance, edge-cut, halo replication).
"""

from repro.cluster.partition import (
    PARTITION_STRATEGIES,
    GraphPartition,
    ShardPartition,
    assign_owners,
    partition_graph,
)
from repro.cluster.router import ClusterStats, ShardRouter
from repro.cluster.worker import (
    ClusterWorkerError,
    InProcessWorker,
    ProcessWorker,
    ShardUpdate,
    ShardWorker,
    WorkerInit,
)

__all__ = [
    "PARTITION_STRATEGIES",
    "GraphPartition",
    "ShardPartition",
    "assign_owners",
    "partition_graph",
    "ClusterStats",
    "ShardRouter",
    "ClusterWorkerError",
    "InProcessWorker",
    "ProcessWorker",
    "ShardUpdate",
    "ShardWorker",
    "WorkerInit",
]
