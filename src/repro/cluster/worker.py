"""Shard worker: one engine replica over one partition, driven by commands.

A :class:`ShardWorker` hosts its own :class:`~repro.serve.session.GraphSession`
and :class:`~repro.serve.engine.InferenceEngine` over a shard's row-subset
structure (:mod:`repro.cluster.partition`), answering predictions for the
nodes the shard owns.  Because the shard view keeps global node ids and full
rows for every local node, the engine's ego blocks, keyed sampling, logit
cache and k-hop dirty sets behave *identically* to a single-process engine
over the whole graph — the worker is a true replica, not an approximation.

The worker runs in-process (tests, debugging) or as a child process behind a
command pipe (:class:`ProcessWorker`): the router sends ``(command, payload)``
tuples — ``predict`` / ``mutate`` / ``stats`` / ``shutdown`` — and each reply
is ``("ok", value)`` or ``("error", message)``.  Process workers load their
model parameters from the shared on-disk
:class:`~repro.serve.registry.ModelRegistry` rather than receiving a pickled
model, so every replica serves exactly the committed registry version.

Mutations arrive as :class:`ShardUpdate` payloads assembled by the router:
the global mutation endpoints (dirty-set seeds), the freshly spliced rows
(changed endpoints, entering halo nodes, cleared leaving nodes) and the
feature rows of entering nodes.  The worker splices them in with
:func:`repro.sparse.ops.splice_rows_csr` and commits through
:meth:`GraphSession.replace_structure`, which drives the normal
``MutationListener`` invalidation path — cross-shard staleness is therefore
impossible for the same reason single-process staleness is.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from contextlib import nullcontext
from dataclasses import dataclass, field, fields
from typing import Optional, Tuple

import numpy as np

from repro.cluster.partition import ShardPartition
from repro.obs.metrics import active_metrics, next_instance
from repro.obs.profile import active_profiler, set_profiling
from repro.obs.trace import adopt, get_tracer, set_tracing
from repro.obs.trace import span as obs_span
from repro.serve.engine import InferenceEngine, ServeConfig
from repro.serve.session import GraphSession
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import append_empty_node_csr, splice_rows_csr

__all__ = [
    "ClusterWorkerError",
    "SHARD_STATS_SCHEMA_VERSION",
    "ShardStatsSnapshot",
    "ShardUpdate",
    "WorkerInit",
    "ShardWorker",
    "InProcessWorker",
    "ProcessWorker",
]


class ClusterWorkerError(RuntimeError):
    """A shard worker rejected a command (re-raised router-side)."""


SHARD_STATS_SCHEMA_VERSION = 2
"""Bump on every field change of :class:`ShardStatsSnapshot`.  The router
validates the version of every snapshot it aggregates, so a worker running
an older schema (stale child re-used across a deploy, renamed counter) fails
loudly instead of silently contributing zeros to cluster totals.

v2 added the optional ``histograms`` (per-shard latency distributions as
``Histogram.state()`` dicts, merged router-side into cluster-wide p50/p99)
and ``profile`` (kernel-profiler aggregate table) sections."""

_OPTIONAL_SECTIONS = ("histograms", "profile")
"""Snapshot fields that are dicts-or-``None`` instead of int counters."""


@dataclass(frozen=True)
class ShardStatsSnapshot:
    """Typed wire-format of one shard's counters.

    Replaces the former untyped dict: a missing or renamed counter now
    raises (``__getitem__``/attribute access) rather than vanishing into a
    ``.get(key, 0)`` sum.  Dict-style access is kept because callers (CLI,
    tests) index snapshots by key.  Pickle bypasses ``__post_init__``, so
    the schema check lives in :meth:`validate`, called router-side.
    """

    schema: int
    shard_id: int
    owned: int
    halo: int
    requests: int
    version: int
    hits: int
    misses: int
    invalidated: int
    cache_size: int
    plans_recorded: int
    plan_replays: int
    plan_fallbacks: int
    megabatches: int
    megabatch_nodes: int
    histograms: Optional[dict] = None
    profile: Optional[dict] = None

    def __getitem__(self, key: str):
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(
                f"unknown shard stats field {key!r} "
                f"(schema v{self.schema}; known: "
                f"{', '.join(f.name for f in fields(self))})"
            ) from None

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and any(
            f.name == key for f in fields(self)
        )

    def validate(self) -> "ShardStatsSnapshot":
        """Schema/type check (router-side, after the pipe round trip)."""
        if self.schema != SHARD_STATS_SCHEMA_VERSION:
            raise ClusterWorkerError(
                f"shard stats schema mismatch: worker sent "
                f"v{self.schema}, router expects "
                f"v{SHARD_STATS_SCHEMA_VERSION}"
            )
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in _OPTIONAL_SECTIONS:
                if value is not None and not isinstance(value, dict):
                    raise ClusterWorkerError(
                        f"shard stats section {f.name!r} must be a dict "
                        f"or None: {value!r}"
                    )
                continue
            if not isinstance(value, int):
                raise ClusterWorkerError(
                    f"shard stats field {f.name!r} is not an int: "
                    f"{value!r}"
                )
        return self


@dataclass
class ShardUpdate:
    """One mutation's payload for one shard (all node ids global).

    ``rows``/``rows_csr`` carry the spliced row contents (sorted, unique;
    entering/changed rows full, leaving rows empty); ``endpoints`` seed the
    worker engine's dirty-set expansion; ``entering``/``leaving`` adjust the
    local (owned ∪ halo) set; ``own_node`` transfers ownership of a freshly
    appended node to this shard.  A trivial update (everything empty, possibly
    with a grown ``num_nodes``) is the version-sync *tick* sent to shards a
    mutation does not touch, keeping every shard's deterministic sampling key
    equal to the global session's.
    """

    num_nodes: int
    version: int
    endpoints: np.ndarray
    rows: np.ndarray
    rows_csr: CSRMatrix
    entering: np.ndarray
    entering_features: np.ndarray
    leaving: np.ndarray
    own_node: Optional[int] = None


@dataclass
class WorkerInit:
    """Everything a worker (process) needs to build its replica.

    Exactly one of ``model`` (in-process / pre-built instance) or
    ``registry_root``+``model_name`` (load from the shared registry) must be
    provided.  ``backend`` pins the compute-backend contextvar inside the
    child process, which does not inherit the parent's context.
    """

    partition: ShardPartition
    config: ServeConfig = field(default_factory=ServeConfig)
    backend: Optional[str] = None
    model: Optional[object] = None
    registry_root: Optional[str] = None
    model_name: Optional[str] = None
    model_version: Optional[int] = None
    base_version: int = 0
    """The primary session's mutation counter at partition time: replica
    sessions start from it so sampling keys (and the router's drift check)
    stay aligned even when the global session had pre-router history."""
    telemetry: bool = False
    """Captured from :func:`repro.obs.trace.tracing_enabled` at router
    construction: a child process does not inherit the parent's contextvars,
    so the flag travels with the init payload."""
    profile: bool = False
    """Captured from :func:`repro.obs.profile.profiling_enabled` at router
    construction, for the same reason — kernel profiling must be switched on
    inside the child process itself."""


def _load_model(init: WorkerInit):
    if init.model is not None:
        return init.model
    if init.registry_root is None or init.model_name is None:
        raise ValueError(
            "WorkerInit needs either a model instance or a registry reference"
        )
    from repro.serve.registry import ModelRegistry

    model, _ = ModelRegistry(init.registry_root).load(
        init.model_name, version=init.model_version
    )
    return model


class ShardWorker:
    """The in-process core: session + engine replica over one partition."""

    def __init__(self, init: WorkerInit) -> None:
        partition = init.partition
        self.shard_id = partition.shard_id
        self.halo_hops = partition.halo_hops
        self._owned_mask = np.zeros(partition.num_nodes, dtype=bool)
        self._owned_mask[partition.owned] = True
        self._local = partition.local
        self.model = _load_model(init)
        self.session = GraphSession(
            partition.csr,
            partition.padded_features(),
            initial_version=init.base_version,
        )
        self.engine = InferenceEngine(self.model, self.session, init.config)
        instance = next_instance()
        self._requests = active_metrics().counter(
            "cluster.shard.requests",
            component="shard_worker",
            shard=self.shard_id,
            instance=instance,
        )
        self._compute = active_metrics().histogram(
            "worker.compute",
            component="shard_worker",
            shard=self.shard_id,
            instance=instance,
        )

    # ------------------------------------------------------------------ #
    # Commands
    # ------------------------------------------------------------------ #
    def predict_logits(self, nodes: np.ndarray) -> np.ndarray:
        """Logit rows for owned ``nodes`` (router-routed; ownership checked)."""
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        if nodes.size and not self._owned_mask[nodes].all():
            stray = nodes[~self._owned_mask[nodes]]
            raise ClusterWorkerError(
                f"shard {self.shard_id} does not own nodes {stray[:8].tolist()}"
            )
        self._requests.inc(int(nodes.size))
        t0 = time.perf_counter()
        try:
            return self.engine.predict_logits(nodes)
        finally:
            self._compute.observe(time.perf_counter() - t0)

    def apply(self, update: ShardUpdate) -> int:
        """Install one mutation's payload; returns the new session version."""
        session = self.session
        csr = session.csr
        grown = update.num_nodes - csr.shape[0]
        if grown < 0:
            raise ClusterWorkerError("shard structure cannot shrink")
        features = session.features
        if grown:
            for _ in range(grown):
                csr = append_empty_node_csr(csr)
            features = np.vstack(
                [features, np.zeros((grown, features.shape[1]))]
            )
            self._owned_mask = np.concatenate(
                [self._owned_mask, np.zeros(grown, dtype=bool)]
            )
        if update.own_node is not None:
            self._owned_mask[update.own_node] = True
        entering = np.asarray(update.entering, dtype=np.int64)
        if entering.size:
            features[entering] = update.entering_features
        new_csr = splice_rows_csr(csr, update.rows, update.rows_csr)
        session.replace_structure(
            new_csr,
            endpoints=update.endpoints,
            touched_rows=update.rows,
            features=features,
        )
        if session.version != update.version:
            raise ClusterWorkerError(
                f"shard {self.shard_id} version drifted: "
                f"{session.version} != {update.version}"
            )
        self._local = np.setdiff1d(
            np.union1d(self._local, entering),
            np.asarray(update.leaving, dtype=np.int64),
        )
        return session.version

    def stats(self) -> ShardStatsSnapshot:
        """Cache + throughput + fused-plan counters of this replica.

        The v2 optional sections ride along: the worker's compute-latency
        distribution (always — the histogram is always observed) and, when
        profiling is on, the kernel-profiler aggregate table and memory
        high-water marks, so the router can assemble cluster-wide views.
        """
        cache = self.engine.cache_stats
        owned = int(np.count_nonzero(self._owned_mask))
        profiler = active_profiler()
        profile_section = None
        if profiler is not None:
            table = profiler.table()
            if table or profiler.memory_marks():
                profile_section = {
                    "ops": table,
                    "memory": profiler.memory_marks(),
                }
        return ShardStatsSnapshot(
            schema=SHARD_STATS_SCHEMA_VERSION,
            shard_id=self.shard_id,
            owned=owned,
            halo=int(self._local.size) - owned,
            requests=self._requests.value,
            version=self.session.version,
            hits=0 if cache is None else cache.hits,
            misses=0 if cache is None else cache.misses,
            invalidated=0 if cache is None else cache.invalidated,
            cache_size=0 if cache is None else cache.size,
            plans_recorded=0 if cache is None else cache.plans_recorded,
            plan_replays=0 if cache is None else cache.plan_replays,
            plan_fallbacks=0 if cache is None else cache.plan_fallbacks,
            megabatches=0 if cache is None else cache.megabatches,
            megabatch_nodes=0 if cache is None else cache.megabatch_nodes,
            histograms={"worker.compute": self._compute.state()},
            profile=profile_section,
        )

    def handle(self, command: str, payload) -> object:
        """Dispatch one protocol command (shared by both worker frontends)."""
        if command == "predict":
            return self.predict_logits(payload)
        if command == "mutate":
            return self.apply(payload)
        if command == "stats":
            return self.stats()
        raise ClusterWorkerError(f"unknown command {command!r}")


class InProcessWorker:
    """Pipe-free worker frontend: same protocol, same thread (tests/CLI)."""

    def __init__(self, init: WorkerInit) -> None:
        self._worker = ShardWorker(init)
        self._pending: Optional[Tuple[str, object]] = None

    def send(self, command: str, payload=None, ctx=None) -> None:
        if command == "shutdown":
            self._pending = ("ok", None)
            return
        try:
            with adopt(ctx):
                with obs_span("worker.handle") as handle_span:
                    handle_span.set(
                        command=command, shard=self._worker.shard_id
                    )
                    self._pending = (
                        "ok",
                        self._worker.handle(command, payload),
                    )
        except Exception as error:  # noqa: BLE001 - mirrored to the protocol
            self._pending = ("error", f"{type(error).__name__}: {error}")

    def recv(self):
        status, value = self._pending
        self._pending = None
        if status == "error":
            raise ClusterWorkerError(value)
        return value

    def request(self, command: str, payload=None, ctx=None):
        self.send(command, payload, ctx)
        return self.recv()

    def close(self) -> None:
        self._pending = None


def _worker_main(
    conn: multiprocessing.connection.Connection, init: WorkerInit
) -> None:
    """Child-process entry: build the replica, serve the command pipe."""
    from repro.sparse.backend import use_backend

    if init.telemetry:
        set_tracing(True)
    if init.profile:
        set_profiling(True)
    scope = use_backend(init.backend) if init.backend else nullcontext()
    with scope:
        try:
            worker = ShardWorker(init)
        except Exception as error:  # noqa: BLE001 - surfaced to the router
            conn.send(("error", f"{type(error).__name__}: {error}"))
            return
        conn.send(("ok", worker.shard_id))
        tracer = get_tracer()
        tracer.drain()  # discard construction-time spans (no parent request)
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            # Commands are (command, payload, ctx) since the telemetry
            # protocol bump; plain 2-tuples remain accepted.
            if len(message) == 3:
                command, payload, ctx = message
            else:
                command, payload = message
                ctx = None
            if command == "shutdown":
                conn.send(("ok", None))
                return
            received_at = time.time()
            try:
                with adopt(ctx):
                    with obs_span("worker.handle") as handle_span:
                        if ctx is not None:
                            handle_span.set(
                                command=command,
                                shard=worker.shard_id,
                                ipc_wait_s=round(
                                    received_at - ctx.sent_at, 6
                                ),
                            )
                        value = worker.handle(command, payload)
            except Exception as error:  # noqa: BLE001 - mirrored to the protocol
                conn.send(("error", f"{type(error).__name__}: {error}"))
                continue
            # Ship the spans recorded while handling (child processes have
            # no other path back to the parent's trace store).
            shipped = tracer.drain() if ctx is not None else []
            if shipped:
                conn.send(("ok", value, shipped))
            else:
                conn.send(("ok", value))


class ProcessWorker:
    """Worker frontend over a child process and a duplex command pipe."""

    def __init__(self, init: WorkerInit, start_method: Optional[str] = None) -> None:
        context = multiprocessing.get_context(start_method)
        self._conn, child = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main, args=(child, init), daemon=True
        )
        self.process.start()
        child.close()
        # Handshake: surfaces construction failures (bad registry ref, …)
        # at spawn time instead of on the first predict.
        status, value = self._conn.recv()
        if status == "error":
            self.close()
            raise ClusterWorkerError(value)

    def send(self, command: str, payload=None, ctx=None) -> None:
        self._conn.send((command, payload, ctx))

    def recv(self):
        reply = self._conn.recv()
        status, value = reply[0], reply[1]
        if status == "error":
            raise ClusterWorkerError(value)
        if len(reply) == 3 and reply[2]:
            # Spans recorded in the child while handling this command:
            # stitch them into the router-process trace store.
            get_tracer().ingest(reply[2])
        return value

    def request(self, command: str, payload=None, ctx=None):
        self.send(command, payload, ctx)
        return self.recv()

    def close(self) -> None:
        if self.process.is_alive():
            try:
                self._conn.send(("shutdown", None))
                self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - defensive teardown
            self.process.terminate()
            self.process.join(timeout=5.0)
        self._conn.close()
