"""Shard router: front-end that scales the inference engine across shards.

:class:`ShardRouter` is the cluster's single entry point.  It keeps the
*global* :class:`~repro.serve.session.GraphSession` (the source of truth the
rest of the library mutates), partitions it once at construction
(:func:`repro.cluster.partition.partition_graph`), spawns one worker replica
per shard and then:

* **routes** prediction requests to the shard that owns each node, fanning a
  mixed batch out to every involved shard in one concurrent round trip —
  workers compute misses in parallel processes, which is what buys the
  multi-core speedup the single-process engine cannot reach under the GIL;
* **fans mutations out** by subscribing to the global session through the
  ordinary ``MutationListener`` protocol: for every mutation it computes the
  k-hop dirty region over the old *and* new structure (the same rule the
  engine's logit-cache invalidation uses), rebuilds the halo of every shard
  that region touches, and ships each one a :class:`ShardUpdate` with the
  spliced rows, entering/leaving ghost nodes and entering feature rows.
  Shards outside the region receive a version-sync tick, so every replica's
  deterministic sampling key stays equal to the global session's — sharded
  predictions (exhaustive *and* keyed-sampled) draw byte-identical block
  structures to the single-process engine's and agree with it to 1e-8
  (typically to the last bit of BLAS round-off), before and after
  cross-shard mutations;
* **rebalances ownership** on ``add_node``: the new node joins the
  least-loaded shard and the halos of every shard its edges reach are
  recomputed;
* **aggregates** per-shard cache/throughput counters into one
  :class:`ClusterStats`.

The router exposes the engine's prediction surface (``predict_logits`` /
``predict_proba`` / ``predict_labels``) plus a ``session`` attribute, so a
:class:`~repro.serve.batching.RequestBatcher` can coalesce micro-batches in
front of a cluster exactly as it does in front of one engine.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.partition import GraphPartition, partition_graph
from repro.cluster.worker import (
    InProcessWorker,
    ProcessWorker,
    ShardStatsSnapshot,
    ShardUpdate,
    WorkerInit,
)
from repro.obs.metrics import merge_histogram_states
from repro.obs.profile import profiling_enabled
from repro.obs.trace import NULL_SPAN
from repro.obs.trace import span as obs_span
from repro.obs.trace import tracing_enabled
from repro.graphs.khop import khop_frontier
from repro.serve.engine import DEFAULT_FALLBACK_HOPS, ServeConfig, softmax_rows
from repro.serve.session import GraphSession, MutationEvent
from repro.sparse.backend import get_backend_name
from repro.sparse.csr import CSRMatrix

__all__ = ["ClusterStats", "ShardRouter"]

WORKER_MODES = ("process", "inproc")


@dataclass(frozen=True)
class ClusterStats:
    """Aggregated per-shard counters (one typed snapshot per shard).

    Every total indexes :class:`ShardStatsSnapshot` fields *loudly* — a
    renamed or missing counter raises ``KeyError`` here instead of the old
    ``.get(key, 0)`` silently summing zeros across the cluster.
    """

    shards: Tuple[ShardStatsSnapshot, ...]

    @property
    def requests(self) -> int:
        return sum(shard["requests"] for shard in self.shards)

    @property
    def hits(self) -> int:
        return sum(shard["hits"] for shard in self.shards)

    @property
    def misses(self) -> int:
        return sum(shard["misses"] for shard in self.shards)

    @property
    def invalidated(self) -> int:
        return sum(shard["invalidated"] for shard in self.shards)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def plans_recorded(self) -> int:
        return sum(shard["plans_recorded"] for shard in self.shards)

    @property
    def plan_replays(self) -> int:
        return sum(shard["plan_replays"] for shard in self.shards)

    @property
    def plan_fallbacks(self) -> int:
        return sum(shard["plan_fallbacks"] for shard in self.shards)

    @property
    def megabatches(self) -> int:
        return sum(shard["megabatches"] for shard in self.shards)

    @property
    def megabatch_nodes(self) -> int:
        return sum(shard["megabatch_nodes"] for shard in self.shards)

    def merged_histograms(self) -> dict:
        """Cluster-wide latency distributions: every shard's histogram
        section merged by name into fresh :class:`Histogram` objects, so
        p50/p99 are computed over the *union* of observations rather than
        averaged per shard (quantiles do not average)."""
        by_name: dict = {}
        for shard in self.shards:
            for name, state in (shard.histograms or {}).items():
                by_name.setdefault(name, []).append(state)
        return {
            name: merge_histogram_states(states)
            for name, states in by_name.items()
        }

    def merged_profile(self) -> Optional[dict]:
        """Cluster-wide kernel-profiler aggregate: per-op tables summed,
        memory high-water marks maxed across shards (``None`` when no shard
        profiled anything)."""
        ops: dict = {}
        memory: dict = {}
        seen = False
        for shard in self.shards:
            section = shard.profile
            if not section:
                continue
            seen = True
            for name, row in section.get("ops", {}).items():
                into = ops.setdefault(
                    name,
                    {
                        "calls": 0,
                        "cum_s": 0.0,
                        "self_s": 0.0,
                        "flops": 0,
                        "bytes": 0,
                        "shapes": {},
                    },
                )
                into["calls"] += int(row.get("calls", 0))
                into["cum_s"] += float(row.get("cum_s", 0.0))
                into["self_s"] += float(row.get("self_s", 0.0))
                into["flops"] += int(row.get("flops", 0))
                into["bytes"] += int(row.get("bytes", 0))
                for sig, count in dict(row.get("shapes", {})).items():
                    into["shapes"][sig] = into["shapes"].get(sig, 0) + int(count)
            for name, nbytes in section.get("memory", {}).items():
                if int(nbytes) > memory.get(name, -1):
                    memory[name] = int(nbytes)
        return {"ops": ops, "memory": memory} if seen else None


def _rows_update(
    new_csr: CSRMatrix, refresh: np.ndarray, clear: np.ndarray
) -> Tuple[np.ndarray, CSRMatrix]:
    """``(rows, rows_csr)`` splice payload: fresh rows for ``refresh``, empty
    rows for ``clear`` (both global id arrays)."""
    rows = np.union1d(refresh, clear)
    sliced = new_csr.slice_rows(rows)
    if clear.size:
        counts = np.diff(sliced.indptr)
        keep_rows = ~np.isin(rows, clear, assume_unique=False)
        entry_keep = np.repeat(keep_rows, counts)
        new_counts = np.where(keep_rows, counts, 0)
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(new_counts, out=indptr[1:])
        sliced = CSRMatrix(
            indptr,
            sliced.indices[entry_keep],
            sliced.data[entry_keep],
            sliced.shape,
        )
    return rows, sliced


class ShardRouter:
    """Routes predictions and fans out mutations over shard worker replicas."""

    def __init__(
        self,
        model,
        session: GraphSession,
        num_shards: int,
        strategy: str = "greedy",
        halo_hops: Optional[int] = None,
        config: Optional[ServeConfig] = None,
        workers: str = "process",
        model_ref: Optional[Tuple[str, str, Optional[int]]] = None,
        partition: Optional[GraphPartition] = None,
    ) -> None:
        if workers not in WORKER_MODES:
            raise ValueError(
                f"workers must be one of {WORKER_MODES}, got {workers!r}"
            )
        depth = model.message_passing_layers
        required = depth if depth is not None else DEFAULT_FALLBACK_HOPS
        if halo_hops is None:
            halo_hops = required
        elif halo_hops < required:
            raise ValueError(
                f"halo_hops={halo_hops} is smaller than the model's receptive "
                f"depth ({required}); in-shard prediction would be inexact"
            )
        self.model = model
        self.session = session
        self.config = config or ServeConfig()
        self.halo_hops = int(halo_hops)
        if partition is None:
            partition = partition_graph(
                session.csr,
                session.features,
                num_shards,
                strategy=strategy,
                halo_hops=self.halo_hops,
            )
        elif partition.halo_hops < required:
            raise ValueError("provided partition's halo is too shallow")
        self.partition = partition
        self._owners = partition.owners.copy()
        self._owned = [shard.owned.copy() for shard in partition.shards]
        self._locals = [shard.local.copy() for shard in partition.shards]
        self._lock = threading.Lock()
        self._closed = False

        backend = get_backend_name()
        inits = []
        for shard in partition.shards:
            init = WorkerInit(
                partition=shard,
                config=self.config,
                backend=backend,
                base_version=session.version,
                telemetry=tracing_enabled(),
                profile=profiling_enabled(),
            )
            if model_ref is not None:
                init.registry_root, init.model_name, init.model_version = model_ref
            else:
                init.model = model
            inits.append(init)
        factory = ProcessWorker if workers == "process" else InProcessWorker
        self.workers = []
        try:
            for init in inits:
                self.workers.append(factory(init))
        except Exception:
            self.close()
            raise
        session.add_listener(self._on_mutation)

    # ------------------------------------------------------------------ #
    # Prediction API (engine-compatible surface)
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.workers)

    @property
    def num_nodes(self) -> int:
        return self.session.num_nodes

    @property
    def owners(self) -> np.ndarray:
        """Live per-node owner array (grows with ``add_node``).

        ``partition.owners`` is kept equal to this view after every
        mutation; ``partition.shards`` stay the construction-time payloads —
        the live shard state lives in the workers.
        """
        return self._owners

    def owner_of(self, node: int) -> int:
        """The shard currently owning ``node``."""
        return int(self._owners[int(node)])

    def predict_logits(self, nodes) -> np.ndarray:
        """Logit rows for ``nodes``, fanned out to the owning shards."""
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        if nodes.ndim != 1:
            raise ValueError("nodes must be a scalar or a 1-D index array")
        if nodes.size == 0:
            raise ValueError("nodes must be non-empty")
        if nodes.min() < 0 or nodes.max() >= self.session.num_nodes:
            raise ValueError("node index out of bounds")
        with self._lock:
            self._check_open()
            owners = self._owners[nodes]
            involved = [
                (shard, np.flatnonzero(owners == shard))
                for shard in np.unique(owners)
            ]
            # One concurrent round trip: send every shard its slice, then
            # collect — wall-clock is the slowest shard, not the sum.
            with obs_span("router.fanout") as fanout_span:
                fanout_span.set(shards=len(involved), nodes=int(nodes.size))
                rpc_spans = []
                for shard, positions in involved:
                    rpc = obs_span("shard.rpc")
                    rpc.set(shard=int(shard), nodes=int(positions.size))
                    ctx = None if rpc is NULL_SPAN else rpc.context()
                    self.workers[shard].send(
                        "predict", nodes[positions], ctx=ctx
                    )
                    rpc_spans.append(rpc)
                replies = self._collect(
                    [shard for shard, _ in involved], rpc_spans
                )
            out: Optional[np.ndarray] = None
            for (shard, positions), rows in zip(involved, replies):
                if out is None:
                    out = np.empty((nodes.size, rows.shape[1]), dtype=rows.dtype)
                out[positions] = rows
        return out

    def _collect(self, shards, rpc_spans=None) -> List:
        """Receive one reply per listed shard, draining every pipe even when
        a shard errors — a partial drain would leave stale replies queued and
        desynchronise the command protocol for all later rounds.

        ``rpc_spans`` (optional, parallel to ``shards``) are finished as each
        reply lands; replies are received in listed order, so a span's
        duration can include head-of-line wait behind earlier shards."""
        replies, failure = [], None
        for index, shard in enumerate(shards):
            try:
                replies.append(self.workers[shard].recv())
            except Exception as error:  # noqa: BLE001 - re-raised after drain
                if failure is None:
                    failure = error
            finally:
                if rpc_spans is not None:
                    rpc_spans[index].finish()
        if failure is not None:
            raise failure
        return replies

    def predict_proba(self, nodes) -> np.ndarray:
        """Softmax posteriors (the payload an online client receives)."""
        return softmax_rows(self.predict_logits(nodes))

    def predict_labels(self, nodes) -> np.ndarray:
        """Hard label predictions for ``nodes``."""
        return self.predict_logits(nodes).argmax(axis=1)

    # ------------------------------------------------------------------ #
    # Mutation convenience wrappers (the session remains the entry point)
    # ------------------------------------------------------------------ #
    def add_edges(self, pairs) -> int:
        return self.session.add_edges(pairs)

    def remove_edges(self, pairs) -> int:
        return self.session.remove_edges(pairs)

    def add_node(self, features_row, neighbors=None, label: int = 0) -> int:
        return self.session.add_node(features_row, neighbors=neighbors, label=label)

    # ------------------------------------------------------------------ #
    # Stats / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> ClusterStats:
        with self._lock:
            self._check_open()
            for worker in self.workers:
                worker.send("stats")
            snapshots = self._collect(range(self.num_shards))
            # Pickle bypasses __post_init__: the schema check happens here,
            # once per aggregation, on the router side of the pipe.
            return ClusterStats(
                shards=tuple(snap.validate() for snap in snapshots)
            )

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self.workers:
                worker.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("router is closed")

    # ------------------------------------------------------------------ #
    # Mutation fan-out (MutationListener)
    # ------------------------------------------------------------------ #
    def _on_mutation(self, event: MutationEvent) -> None:
        with self._lock:
            if self._closed:
                return
            with obs_span("router.mutation_fanout") as mutation_span:
                mutation_span.set(
                    version=event.version, shards=self.num_shards
                )
                self._fan_out_mutation(event, mutation_span)

    def _fan_out_mutation(self, event: MutationEvent, mutation_span) -> None:
        old_csr, new_csr = event.old_csr, event.new_csr
        endpoints = np.asarray(event.endpoints, dtype=np.int64)
        grown = new_csr.shape[0] - old_csr.shape[0]
        new_owner = -1
        if grown:
            # add_node appends exactly one node: give it to the
            # least-loaded shard (deterministic tie-break: lowest id).
            sizes = np.asarray([owned.size for owned in self._owned])
            new_owner = int(np.argmin(sizes))
            node = new_csr.shape[0] - 1
            self._owners = np.concatenate(
                [self._owners, np.asarray([new_owner], dtype=np.int64)]
            )
            self._owned[new_owner] = np.concatenate(
                [self._owned[new_owner], np.asarray([node], dtype=np.int64)]
            )
            # Keep the public partition's ownership view in step (its
            # per-shard payloads remain construction-time snapshots).
            self.partition.owners = self._owners
            self.partition.shards[new_owner].owned = self._owned[new_owner]
        # The k-hop dirty region over old AND new structure — any shard
        # whose owned set it misses has no dirty prediction, no changed
        # local row and no halo change (see the consistency tests).
        old_eps = endpoints[endpoints < old_csr.shape[0]]
        region = np.union1d(
            khop_frontier(old_csr, old_eps, self.halo_hops),
            khop_frontier(new_csr, endpoints, self.halo_hops),
        )
        features = self.session.features
        empty = np.empty(0, dtype=np.int64)
        empty_rows = CSRMatrix(
            np.zeros(1, dtype=np.int64), empty, np.empty(0), (0, new_csr.shape[0])
        )
        updates: List[ShardUpdate] = []
        with obs_span("router.halo_rebuild") as halo_span:
            touched_shards = 0
            for shard in range(self.num_shards):
                touched = bool(
                    np.intersect1d(self._owned[shard], region, assume_unique=False).size
                ) or shard == new_owner
                if not touched:
                    # Version-sync tick (plus the id-space growth, if any).
                    updates.append(
                        ShardUpdate(
                            num_nodes=new_csr.shape[0],
                            version=event.version,
                            endpoints=empty,
                            rows=empty,
                            rows_csr=empty_rows,
                            entering=empty,
                            entering_features=np.empty((0, features.shape[1])),
                            leaving=empty,
                        )
                    )
                    continue
                touched_shards += 1
                new_local = khop_frontier(new_csr, self._owned[shard], self.halo_hops)
                entering = np.setdiff1d(new_local, self._locals[shard], assume_unique=True)
                leaving = np.setdiff1d(self._locals[shard], new_local, assume_unique=True)
                refresh = np.union1d(
                    np.intersect1d(endpoints, new_local), entering
                )
                rows, rows_csr = _rows_update(new_csr, refresh, leaving)
                self._locals[shard] = new_local
                updates.append(
                    ShardUpdate(
                        num_nodes=new_csr.shape[0],
                        version=event.version,
                        endpoints=endpoints,
                        rows=rows,
                        rows_csr=rows_csr,
                        entering=entering,
                        entering_features=features[entering],
                        leaving=leaving,
                        own_node=(
                            new_csr.shape[0] - 1 if shard == new_owner else None
                        ),
                    )
                )
            halo_span.set(touched=touched_shards, region=int(region.size))
        ctx = (
            None if mutation_span is NULL_SPAN else mutation_span.context()
        )
        for worker, update in zip(self.workers, updates):
            worker.send("mutate", update, ctx=ctx)
        self._collect(range(self.num_shards))
