"""Command-line entry point: ``python -m repro.cluster <command>``.

Examples
--------
Serve a registered model over four shard worker processes, mutating the
graph across shard boundaries halfway through the request stream::

    python -m repro.cluster serve --name cora-gcn --shards 4 --requests 200 --mutate 16

Inspect partition quality without serving::

    python -m repro.cluster partition --dataset cora --shards 4 --strategy greedy
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro.cluster.partition import PARTITION_STRATEGIES, partition_graph
from repro.cluster.router import ShardRouter
from repro.datasets import load_dataset
from repro.obs.metrics import active_metrics, next_instance
from repro.obs.profile import format_top, global_profiler, set_profiling
from repro.obs.slo import check_slo, format_slo, resolve_slo_histograms
from repro.obs.snapshot import SnapshotEmitter
from repro.obs.trace import set_tracing
from repro.serve.batching import RequestBatcher
from repro.serve.engine import InferenceEngine, ServeConfig
from repro.serve.registry import DEFAULT_REGISTRY_ROOT, ModelRegistry
from repro.serve.session import GraphSession


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Sharded multi-process serving over trained reproduction models.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="serve a registered model over shard worker processes"
    )
    serve.add_argument("--registry", default=DEFAULT_REGISTRY_ROOT)
    serve.add_argument("--name", required=True)
    serve.add_argument("--version", type=int, default=None)
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--strategy", default="greedy", choices=PARTITION_STRATEGIES)
    serve.add_argument(
        "--halo",
        type=int,
        default=None,
        help="halo depth (default: the model's message-passing depth)",
    )
    serve.add_argument("--requests", type=int, default=100)
    serve.add_argument(
        "--fanouts",
        type=_parse_fanouts,
        default=None,
        help="per-layer sampling budgets, e.g. '10,10' (default: exhaustive/exact)",
    )
    serve.add_argument(
        "--mutate",
        type=int,
        default=0,
        help="inject this many random edges halfway through the request stream",
    )
    serve.add_argument("--seed", type=int, default=0, help="request-stream seed")
    serve.add_argument(
        "--batch-size",
        type=int,
        default=32,
        help="micro-batch size of the RequestBatcher in front of the router",
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help="compare final answers against a fresh single-process engine",
    )
    from repro.serve.__main__ import add_telemetry_arguments

    add_telemetry_arguments(serve)

    part = commands.add_parser(
        "partition", help="report partition quality for a dataset surrogate"
    )
    part.add_argument("--dataset", default="cora")
    part.add_argument("--scale", type=float, default=0.45)
    part.add_argument("--seed", type=int, default=0)
    part.add_argument("--shards", type=int, default=4)
    part.add_argument("--strategy", default="greedy", choices=PARTITION_STRATEGIES)
    part.add_argument("--halo", type=int, default=2)
    return parser


def _parse_fanouts(text: str):
    from repro.experiments.__main__ import parse_fanouts

    return parse_fanouts(text)


def cmd_serve(args) -> int:
    from repro.serve.__main__ import _rebuild_graph
    from repro.core.config import ComputeConfig

    # ComputeConfig is the shared validation surface for compute selection;
    # the --shards flag goes through it like --backend/--jobs do elsewhere.
    try:
        num_shards = ComputeConfig(shards=args.shards).shards
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    registry = ModelRegistry(args.registry)
    meta = registry.read_meta(args.name, version=args.version)
    graph = _rebuild_graph(meta)
    model, meta = registry.load(args.name, version=args.version, expect_graph=graph)
    session = GraphSession(graph.csr(), graph.features)
    if args.telemetry:
        # Before router construction: worker processes inherit the flag
        # through WorkerInit.telemetry.
        set_tracing(True)
    if args.profile:
        # Likewise before router construction: WorkerInit.profile turns
        # the kernel profiler on inside every shard process.
        set_profiling(True)
    router = ShardRouter(
        model,
        session,
        num_shards=num_shards,
        strategy=args.strategy,
        halo_hops=args.halo,
        config=ServeConfig(fanouts=args.fanouts),
        workers="process",
        model_ref=(args.registry, args.name, meta["version"]),
    )
    print(
        f"cluster up: {args.shards} shard processes, strategy={args.strategy}, "
        f"halo={router.halo_hops} "
        f"(owned sizes {[int(s.owned.size) for s in router.partition.shards]})"
    )

    rng = np.random.default_rng(args.seed)
    nodes = rng.integers(0, session.num_nodes, size=args.requests)
    half = args.requests // 2
    # Streaming latency percentiles over registry histogram buckets, not a
    # per-request perf_counter list.
    latency = active_metrics().histogram(
        "cluster.cli.latency",
        component="cluster_cli",
        instance=next_instance(),
    )
    emitter = (
        SnapshotEmitter(args.obs_path, interval=args.obs_interval)
        if args.telemetry or args.profile
        else None
    )
    if emitter is not None:
        # start() registers the atexit flush even for interval=0 runs;
        # the periodic thread only spins up when an interval was asked for.
        emitter.start()
    started = time.perf_counter()
    with router:
        batcher = RequestBatcher(router, max_batch_size=args.batch_size).start()

        def fire(batch_nodes) -> None:
            pending = [
                (time.perf_counter(), batcher.submit(int(node)))
                for node in batch_nodes
            ]
            for submitted, future in pending:
                future.result()
                latency.observe(time.perf_counter() - submitted)

        fire(nodes[:half])
        if args.mutate > 0:
            pairs = np.stack(
                [
                    rng.integers(0, session.num_nodes, size=args.mutate),
                    rng.integers(0, session.num_nodes, size=args.mutate),
                ],
                axis=1,
            )
            pairs = pairs[pairs[:, 0] != pairs[:, 1]]
            session.add_edges(pairs)
            cross = int(
                np.count_nonzero(
                    router.owners[pairs[:, 0]]
                    != router.owners[pairs[:, 1]]
                )
            )
            print(
                f"mutated: +{pairs.shape[0]} random edges "
                f"({cross} crossing shard boundaries)"
            )
        fire(nodes[half:])
        batcher.stop()
        elapsed = time.perf_counter() - started
        stats = router.stats()
        # Cluster-wide views: shard workers ship histogram bucket states and
        # kernel-profiler tables inside their stats snapshots; merging them
        # into the router-side registry/profiler makes the final telemetry
        # snapshot (and `repro.obs top`) span the whole cluster.
        merged_histograms = stats.merged_histograms()
        merged_profile = stats.merged_profile()
        if merged_profile is not None:
            global_profiler().merge_table(merged_profile.get("ops", {}))
            global_profiler().merge_memory(merged_profile.get("memory", {}))
        if emitter is not None:
            emitter.stop()
            print(f"telemetry: snapshots at {args.obs_path}")
        print(
            f"served {args.requests} requests in {elapsed:.3f}s "
            f"({args.requests / elapsed:.0f} req/s, "
            f"mean batch {batcher.stats.mean_batch_size:.1f})"
        )
        if latency.count:
            print(
                f"latency p50 {latency.quantile(0.50) * 1e3:.2f}ms  "
                f"p99 {latency.quantile(0.99) * 1e3:.2f}ms"
            )
        compute = merged_histograms.get("worker.compute")
        if compute is not None and compute.count:
            print(
                f"worker compute (all shards) "
                f"p50 {compute.quantile(0.50) * 1e3:.2f}ms  "
                f"p99 {compute.quantile(0.99) * 1e3:.2f}ms"
            )
        for shard in stats.shards:
            print(
                f"  shard {shard['shard_id']}: owned {shard['owned']} "
                f"(+{shard['halo']} halo), {shard['requests']} requests, "
                f"{shard['hits']} hits / {shard['misses']} misses "
                f"({shard['invalidated']} invalidated)"
            )
        if args.verify:
            if args.fanouts is not None and args.mutate > 0:
                # Warm sampled entries were keyed at pre-mutation versions
                # (exactly like a single-process engine serving the same
                # stream); a fresh engine keys everything at the current
                # version, so the comparison is only defined without
                # mid-stream mutations.
                print("verify: skipped (sampled mode with mid-stream mutations)")
            else:
                # A replica session starting from the live session's mutation
                # counter draws the same sampling keys, so the check is exact
                # in sampled mode too.
                reference = InferenceEngine(
                    model,
                    GraphSession(
                        session.csr,
                        session.features,
                        initial_version=session.version,
                    ),
                    ServeConfig(fanouts=args.fanouts),
                )
                answers = router.predict_logits(nodes)
                expected = reference.predict_logits(nodes)
                ok = bool(np.allclose(answers, expected, atol=1e-8))
                print(
                    f"verify vs single-process engine: {'OK' if ok else 'MISMATCH'}"
                )
                if not ok:
                    return 1
    if args.profile:
        print("profile (hottest kernels, all processes):")
        print(
            format_top(
                global_profiler().table(),
                global_profiler().memory_marks(),
                limit=10,
            )
        )
    if args.slo is not None:
        violations = check_slo(
            latency,
            args.slo,
            histograms={
                **resolve_slo_histograms(args.slo),
                **merged_histograms,
            },
        )
        if violations:
            for violation in violations:
                print(f"SLO FAIL: {violation}")
            return 1
        print(f"SLO OK: {format_slo(args.slo)}")
    return 0


def cmd_partition(args) -> int:
    graph = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    partition = partition_graph(
        graph.csr(),
        graph.features,
        args.shards,
        strategy=args.strategy,
        halo_hops=args.halo,
    )
    stats = partition.stats(graph.csr())
    print(
        f"{args.dataset}: {graph.num_nodes} nodes → {args.shards} shards "
        f"({args.strategy}, halo {args.halo})"
    )
    print(f"  owned sizes:  {stats['owned_sizes']}")
    print(f"  halo sizes:   {stats['halo_sizes']}")
    print(f"  balance:      {stats['balance']:.3f} (max owned / ideal)")
    print(f"  edge cut:     {stats['edge_cut']:.3f} of edges cross shards")
    print(f"  replication:  {stats['replication']:.2f}× nodes resident")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return cmd_serve(args)
    return cmd_partition(args)


if __name__ == "__main__":
    sys.exit(main())
