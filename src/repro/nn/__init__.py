"""A small NumPy reverse-mode automatic-differentiation substrate.

The paper's experiments require training graph neural networks, computing
per-node loss gradients and Hessian-vector products for influence functions.
Since the reproduction environment provides no deep-learning framework, this
subpackage implements the required substrate from scratch:

* :class:`repro.nn.Tensor` — dense tensors with reverse-mode autodiff,
* :mod:`repro.nn.functional` — activations, softmax, losses,
* :class:`repro.nn.Module`, :class:`repro.nn.Linear` — layer abstractions,
* :mod:`repro.nn.optim` — SGD and Adam optimisers,
* :mod:`repro.nn.parameters` — flat-vector views used by influence functions.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn import functional
from repro.nn.module import Module, Linear, Dropout, Sequential, ModuleList, Parameter
from repro.nn import init
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.losses import cross_entropy, weighted_cross_entropy, mse_loss
from repro.nn.parameters import (
    parameters_to_vector,
    vector_to_parameters,
    gradients_to_vector,
    zero_gradients,
)

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Linear",
    "Dropout",
    "Sequential",
    "ModuleList",
    "Parameter",
    "init",
    "SGD",
    "Adam",
    "Optimizer",
    "cross_entropy",
    "weighted_cross_entropy",
    "mse_loss",
    "parameters_to_vector",
    "vector_to_parameters",
    "gradients_to_vector",
    "zero_gradients",
]
