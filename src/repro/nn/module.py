"""Layer and container abstractions on top of the autodiff tensors.

:class:`Module` provides parameter registration, recursive traversal,
train/eval mode switching and state-dict import/export — the minimal surface
the GNN models and the influence-function code need.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn import init as init_schemes
from repro.nn.tensor import Tensor
from repro.utils.rng import RandomState, ensure_rng


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[key] = value
        object.__setattr__(self, key, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Explicitly register ``parameter`` under ``name``."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters in registration order."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> List[Tuple[str, Parameter]]:
        """Return ``(name, parameter)`` pairs for this module and children."""
        found: List[Tuple[str, Parameter]] = []
        for name, param in self._parameters.items():
            found.append((f"{prefix}{name}", param))
        for name, module in self._modules.items():
            found.extend(module.named_parameters(prefix=f"{prefix}{name}."))
        return found

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    # ------------------------------------------------------------------ #
    # Mode switching and gradients
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def requires_grad_(self, requires_grad: bool = True) -> "Module":
        """Freeze (``False``) or unfreeze (``True``) every parameter.

        A frozen parameter is a constant operand to the autodiff engine: ops
        consuming it record no parent link for it and fire no VJP on its
        behalf, so freezing genuinely removes its gradient work rather than
        just discarding the result.
        """
        for param in self.parameters():
            param.requires_grad = bool(requires_grad)
        return self

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a name → array snapshot of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # Inference-plan kernel extraction
    # ------------------------------------------------------------------ #
    def plan_kernels(self, recorder) -> None:
        """Append this module's inference-time kernels to ``recorder``.

        Used by ``repro.gnn.plan`` to trace a model's eval-mode forward into
        a flat replayable kernel list.  Modules whose inference behaviour is
        a fixed sequence of primitive kernels override this; the default
        marks the module as untraceable.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no flat inference-kernel decomposition"
        )


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with Glorot initialisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RandomState = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        generator = ensure_rng(rng)
        self.weight = Parameter(
            init_schemes.glorot_uniform((in_features, out_features), rng=generator),
            name="weight",
        )
        self.bias: Optional[Parameter]
        if bias:
            self.bias = Parameter(init_schemes.zeros((out_features,)), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def plan_kernels(self, recorder) -> None:
        recorder.matmul(self.weight)
        recorder.bias(self.bias)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Dropout(Module):
    """Inverted-dropout layer with an owned random stream."""

    def __init__(self, p: float = 0.5, rng: RandomState = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must lie in [0, 1), got {p}")
        self.p = p
        self._rng = ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        from repro.nn.functional import dropout

        return dropout(x, p=self.p, training=self.training, rng=self._rng)

    def plan_kernels(self, recorder) -> None:
        """Dropout is the identity at inference time: record nothing."""


class Sequential(Module):
    """Run modules in order, feeding each output to the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def plan_kernels(self, recorder) -> None:
        for name in self._order:
            getattr(self, name).plan_kernels(recorder)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Module]:
        return iter(getattr(self, name) for name in self._order)


class ModuleList(Module):
    """A list container whose entries are registered as sub-modules."""

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        super().__init__()
        self._names: List[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = f"item{len(self._names)}"
        setattr(self, name, module)
        self._names.append(name)
        return self

    def __len__(self) -> int:
        return len(self._names)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._names[index])

    def __iter__(self) -> Iterator[Module]:
        return iter(getattr(self, name) for name in self._names)
