"""Numerical gradient checking for the autodiff primitives.

:func:`gradcheck` compares the reverse-mode gradient of an arbitrary
tensor-valued function against central finite differences of the scalar
``⟨cotangent, f(x)⟩``, using a seeded random cotangent so non-scalar outputs
are exercised along a generic direction rather than the all-ones one.

The gradcheck test suite (``tests/test_gradcheck.py``) drives this over
every primitive registered in :mod:`repro.nn.autodiff`, on both the dense
and sparse propagation backends.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(
    function: Callable[[np.ndarray], float],
    value: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of an array."""
    value = np.array(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = function(value)
        flat[index] = original - eps
        minus = function(value)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    function: Callable[..., Tensor],
    inputs: Sequence[Union[np.ndarray, float]],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
    seed: int = 0,
) -> bool:
    """Check reverse-mode gradients of ``function`` against finite differences.

    Parameters
    ----------
    function:
        Callable taking ``len(inputs)`` tensors and returning a single
        :class:`~repro.nn.tensor.Tensor` (any shape).
    inputs:
        Raw input arrays; every one is treated as requiring a gradient.
    eps, atol, rtol:
        Finite-difference step and comparison tolerances.
    seed:
        Seed for the random cotangent contracted with the output.

    Returns True when every analytic gradient matches; raises
    ``AssertionError`` with the offending input index otherwise.
    """
    arrays = [np.asarray(value, dtype=np.float64) for value in inputs]
    tensors = [Tensor(value.copy(), requires_grad=True) for value in arrays]
    output = function(*tensors)
    if not isinstance(output, Tensor):
        raise TypeError("gradcheck expects the function to return a Tensor")
    cotangent = np.random.default_rng(seed).normal(size=output.shape)
    output.backward(cotangent)

    for index, (value, tensor) in enumerate(zip(arrays, tensors)):
        analytic = tensor.grad
        assert analytic is not None, f"input {index} received no gradient"
        assert analytic.shape == value.shape, (
            f"input {index}: gradient shape {analytic.shape} != input shape {value.shape}"
        )

        def scalar(perturbed: np.ndarray, index: int = index) -> float:
            probes = [
                Tensor(perturbed if position == index else original)
                for position, original in enumerate(arrays)
            ]
            out = function(*probes)
            return float(np.sum(cotangent * out.data))

        numeric = numerical_gradient(scalar, value, eps=eps)
        np.testing.assert_allclose(
            analytic,
            numeric,
            atol=atol,
            rtol=rtol,
            err_msg=f"analytic/numeric gradient mismatch for input {index}",
        )
    return True
