"""Gradient-descent optimisers (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list and the common interface."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(param.data)
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) — the paper's default for GNNs."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step += 1
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[index] is None:
                self._m[index] = np.zeros_like(param.data)
                self._v[index] = np.zeros_like(param.data)
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
            m_hat = self._m[index] / (1 - self.beta1**self._step)
            v_hat = self._v[index] / (1 - self.beta2**self._step)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
