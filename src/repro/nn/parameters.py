"""Flat-vector views of model parameters.

Influence functions (Section VI-A of the paper) operate on the parameter
vector ``θ`` as a whole: they need gradients as flat vectors, Hessian-vector
products, and the ability to evaluate the model at ``θ + εv``.  These helpers
convert between a module's parameter list and a single 1-D array.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.nn.module import Module, Parameter


def parameters_to_vector(parameters: Iterable[Parameter]) -> np.ndarray:
    """Concatenate parameter values into a single 1-D array (copy)."""
    chunks = [np.ravel(param.data) for param in parameters]
    if not chunks:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(chunks).astype(np.float64)


def vector_to_parameters(vector: np.ndarray, parameters: Iterable[Parameter]) -> None:
    """Write the entries of ``vector`` back into the parameters in order."""
    vector = np.asarray(vector, dtype=np.float64)
    params: List[Parameter] = list(parameters)
    total = sum(param.data.size for param in params)
    if vector.shape != (total,):
        raise ValueError(f"vector has shape {vector.shape}, expected ({total},)")
    offset = 0
    for param in params:
        size = param.data.size
        param.data = vector[offset : offset + size].reshape(param.data.shape).copy()
        offset += size


def gradients_to_vector(parameters: Iterable[Parameter]) -> np.ndarray:
    """Concatenate parameter gradients into a 1-D array.

    Parameters with no gradient contribute zeros, which matches the behaviour
    of frameworks where unused parameters receive zero gradient.
    """
    chunks = []
    for param in parameters:
        if param.grad is None:
            chunks.append(np.zeros(param.data.size, dtype=np.float64))
        else:
            chunks.append(np.ravel(param.grad).astype(np.float64))
    if not chunks:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(chunks)


def zero_gradients(parameters: Iterable[Parameter]) -> None:
    """Clear gradients on every parameter."""
    for param in parameters:
        param.grad = None


def num_parameters(module: Module) -> int:
    """Total number of scalar trainable parameters in ``module``."""
    return int(sum(param.data.size for param in module.parameters()))


def clone_parameter_values(module: Module) -> Sequence[np.ndarray]:
    """Snapshot the parameter arrays of ``module`` (deep copies)."""
    return [param.data.copy() for param in module.parameters()]


def restore_parameter_values(module: Module, values: Sequence[np.ndarray]) -> None:
    """Restore parameter arrays captured by :func:`clone_parameter_values`."""
    params = module.parameters()
    if len(params) != len(values):
        raise ValueError("parameter count mismatch while restoring values")
    for param, value in zip(params, values):
        if param.data.shape != value.shape:
            raise ValueError("parameter shape mismatch while restoring values")
        param.data = value.copy()
