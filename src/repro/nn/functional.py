"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

These free functions mirror the subset of ``torch.nn.functional`` required by
the GNN layers and training loops in this repository.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor, is_grad_enabled


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky rectified linear unit (used by GAT attention scores)."""
    return x.leaky_relu(negative_slope)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit."""
    return x.elu(alpha)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    return x.log_softmax(axis=axis)


def dropout(
    x: Tensor,
    p: float = 0.5,
    training: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout.

    During evaluation (``training=False``) or with ``p == 0`` the input is
    returned unchanged.  A generator can be supplied for reproducibility.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must lie in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows of ``x`` by integer ``index`` with a sparse adjoint.

    Equivalent to ``x[index]`` but validates the index range first.  The
    backward pass of the underlying ``take`` primitive is a lazy
    ``(index, values)`` pair scattered into the upstream gradient in place,
    so gathering ``k`` rows out of ``n`` costs O(k) gradient work — never a
    dense zeros-of-``x`` buffer.  This is the op behind mini-batch seed-node
    relabelling and per-row label gathers in the losses.
    """
    index = np.asarray(index, dtype=np.int64)
    if index.size and (index.min() < -x.shape[0] or index.max() >= x.shape[0]):
        raise IndexError(
            f"gather_rows index out of range for axis of size {x.shape[0]}"
        )
    return x[index]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense one-hot encoding of integer ``labels``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for one_hot")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def normalize_rows(x: Tensor, eps: float = 1e-12) -> Tensor:
    """L2-normalise each row of ``x`` (used by GraphSAGE)."""
    norm = (x * x).sum(axis=1, keepdims=True) ** 0.5
    return x / (norm + Tensor(eps))


def normalize_rows_stable(x: Tensor, eps: float = 1e-12) -> Tensor:
    """L2 row normalisation with a zero-row-safe backward.

    ``normalize_rows`` computes ``sqrt(Σx²)`` on the tape, whose backward is
    unbounded at an exactly-zero row (``0 ** -0.5``) and poisons every
    gradient upstream with NaN.  Zero rows are rare in full-batch training
    but routine in sampled mini-batch blocks (a node whose sampled
    aggregation lands all-negative before the ReLU), so the sampled forward
    paths use this variant: smoothing the square root by ``eps²`` keeps the
    backward finite everywhere while perturbing non-zero rows at O(eps²) —
    far below the 1e-8 equivalence tolerance.  The full-batch path keeps the
    original kernel bit-for-bit.
    """
    norm = ((x * x).sum(axis=1, keepdims=True) + Tensor(eps * eps)) ** 0.5
    return x / (norm + Tensor(eps))


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight + bias``."""
    out = x.matmul(weight)
    if bias is not None:
        out = out + bias
    return out


def grad_enabled() -> bool:
    """Expose the autodiff recording state (mostly for tests)."""
    return is_grad_enabled()
