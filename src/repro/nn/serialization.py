"""Saving and loading model parameters with NumPy ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.module import Module


def save_state_dict(module: Module, path: str) -> None:
    """Write ``module.state_dict()`` to ``path`` as a compressed archive."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    if directory and not os.path.isdir(directory):
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def load_into(module: Module, path: str) -> Module:
    """Load parameters from ``path`` into ``module`` and return it."""
    module.load_state_dict(load_state_dict(path))
    return module
