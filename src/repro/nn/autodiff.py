"""The reverse-mode autodiff engine: VJP primitive registry and backward pass.

This module is the core that :class:`repro.nn.tensor.Tensor` is built on.  It
follows the classic *primitive / defvjp* architecture (autograd-style) rather
than per-op backward closures:

* every differentiable operation is a :class:`Primitive` — a named wrapper
  around a raw ndarray function,
* per-argument vector-Jacobian products are registered in a table with
  :func:`defvjp` (``defvjp(op, argnum, vjp_fn)``); a VJP receives
  ``(g, ans, *args, **kwargs)`` where ``args`` are the raw operand values,
* applying a primitive records a single :class:`Node` carrying
  ``(primitive, raw_args, kwargs)`` plus ``(argnum, parent)`` links — only
  for operands that require gradients.  **Constant operands produce no graph
  nodes and no gradient work at all**: their VJPs never run and no gradient
  buffers are allocated for them.
* gather-style primitives may return a :class:`SparseGrad` from their VJP —
  a lazy ``(index, values)`` adjoint that is scattered *in place* into an
  existing dense accumulator (``np.add.at``) instead of materialising a
  dense zeros-of-the-input per indexing op.

The backward pass (:func:`backward`) performs the same iterative topological
sort as the previous tape and fires VJPs in identical order, so gradient
accumulation is bit-for-bit equivalent to the old inline-closure design.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "GraphStats",
    "Node",
    "Primitive",
    "SparseGrad",
    "STATS",
    "backward",
    "defvjp",
    "defvjp_argnum",
    "is_grad_enabled",
    "no_grad",
    "primitive",
    "registered_primitives",
    "unbroadcast",
]

_GRAD_ENABLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_grad_enabled", default=True
)
"""Dynamically scoped autodiff mode flag.

A :class:`contextvars.ContextVar` rather than a module global so that
``no_grad()`` in one thread / task of a parallel runner cannot disable graph
recording in another.
"""


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph *recording* (inference mode).

    Only recording is suppressed: tensors constructed with
    ``requires_grad=True`` inside the scope keep the flag, so parameters
    built under inference mode stay trainable — operations simply do not
    record nodes while the scope is active.
    """
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def is_grad_enabled() -> bool:
    """Return whether autodiff graph recording is currently enabled."""
    return _GRAD_ENABLED.get()


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were of size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


# ---------------------------------------------------------------------- #
# Instrumentation
# ---------------------------------------------------------------------- #
class GraphStats:
    """Counters for tape activity, used by the overhead benchmark."""

    __slots__ = ("nodes", "vjp_calls", "sparse_adjoints", "densifications", "scatter_merges")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.nodes = 0
        """Graph nodes recorded (constant-only ops record none)."""
        self.vjp_calls = 0
        """VJP closures fired (constant operands fire none)."""
        self.sparse_adjoints = 0
        """Lazy sparse gradients produced by gather/scatter VJPs."""
        self.densifications = 0
        """Sparse adjoints that had to allocate a dense zeros buffer."""
        self.scatter_merges = 0
        """Sparse adjoints scattered in place into an existing dense grad."""

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphStats({self.snapshot()})"


STATS = GraphStats()

# Expose the tape counters through the shared metrics registry as a
# read-only snapshot collector: the hot path (one increment per recorded
# node / fired VJP) stays a lock-free slots object, but `repro.obs`
# snapshots and the CLI still see it alongside every other metric.
from repro.obs.metrics import register_collector as _register_collector
from repro.obs.profile import active_profiler as _active_profiler

_register_collector("autodiff.tape", STATS.snapshot)


# ---------------------------------------------------------------------- #
# Sparse adjoints
# ---------------------------------------------------------------------- #
class SparseGrad:
    """A lazy sparse gradient: ``(index, values)`` pairs against a shape.

    Produced by the VJPs of gather primitives (``take`` / ``__getitem__`` and
    the sampler's relabelling ops).  Instead of allocating a dense
    zeros-of-the-input and scattering into it per indexing op, the pairs are
    kept until the accumulator either already holds a dense gradient (then
    they are scattered *in place* with ``np.add.at`` — no allocation) or a
    dense value is genuinely required (one zeros allocation total, however
    many indexing ops contributed).
    """

    __slots__ = ("shape", "entries")

    def __init__(self, shape: Tuple[int, ...], index: Any, values: np.ndarray) -> None:
        self.shape = shape
        self.entries: List[Tuple[Any, np.ndarray]] = [(index, values)]
        STATS.sparse_adjoints += 1

    def add_to(self, dense: np.ndarray) -> np.ndarray:
        """Scatter-add all entries into ``dense`` in place."""
        for index, values in self.entries:
            np.add.at(dense, index, values)
        return dense

    def to_dense(self) -> np.ndarray:
        STATS.densifications += 1
        return self.add_to(np.zeros(self.shape, dtype=np.float64))


class _Accumulator:
    """Per-tensor gradient accumulator with copy-on-write ownership.

    Dense contributions may alias VJP outputs (an ``add`` VJP returns the
    upstream gradient itself), so the buffer is copied exactly once — on the
    first in-place mutation — matching the single defensive copy the old
    tape performed per tensor.
    """

    __slots__ = ("dense", "owned", "sparse")

    def __init__(self) -> None:
        self.dense: Optional[np.ndarray] = None
        self.owned = False
        self.sparse: List[SparseGrad] = []

    def _own(self) -> None:
        if not self.owned:
            self.dense = self.dense.copy()
            self.owned = True

    def add_dense(self, grad: np.ndarray) -> None:
        if self.dense is None:
            if self.sparse:
                # Sparse arrived first: scatter into a writable copy of the
                # dense contribution rather than densifying separately.
                self.dense = grad.copy()
                self.owned = True
                for adjoint in self.sparse:
                    adjoint.add_to(self.dense)
                    STATS.scatter_merges += 1
                self.sparse = []
            else:
                self.dense = grad
                self.owned = False
        else:
            self._own()
            self.dense += grad

    def add_sparse(self, adjoint: SparseGrad) -> None:
        if self.dense is None:
            self.sparse.append(adjoint)
        else:
            self._own()
            adjoint.add_to(self.dense)
            STATS.scatter_merges += 1

    def dense_value(self, shape: Tuple[int, ...]) -> np.ndarray:
        """Materialise the accumulated gradient as a dense array (memoised)."""
        if self.dense is None:
            STATS.densifications += 1
            self.dense = np.zeros(shape, dtype=np.float64)
            self.owned = True
            for adjoint in self.sparse:
                adjoint.add_to(self.dense)
            self.sparse = []
        return self.dense

    def finalize(self, shape: Tuple[int, ...]) -> np.ndarray:
        """Dense gradient safe to hand to the caller (unique ownership)."""
        value = self.dense_value(shape)
        if not self.owned:
            value = value.copy()
            self.dense = value
            self.owned = True
        return value


# ---------------------------------------------------------------------- #
# Primitive registry
# ---------------------------------------------------------------------- #
VJPFunction = Callable[..., Any]
"""``vjp(g, ans, *args, **kwargs) -> gradient contribution`` for one argnum.

``g`` is the (dense) output gradient, ``ans`` the primitive's output value
and ``args``/``kwargs`` the raw operand values it was applied to.  The
return value is either an ndarray (unbroadcast by the engine to the operand
shape) or a :class:`SparseGrad`.
"""


class Primitive:
    """A named differentiable operation over raw ndarrays."""

    __slots__ = ("name", "fn", "vjps", "generic_vjp")

    def __init__(self, name: str, fn: Callable[..., np.ndarray]) -> None:
        self.name = name
        self.fn = fn
        self.vjps: Dict[int, VJPFunction] = {}
        self.generic_vjp: Optional[Callable[..., Any]] = None

    def has_vjp(self, argnum: int) -> bool:
        return argnum in self.vjps or self.generic_vjp is not None

    def vjp(self, argnum: int, g, ans, args, kwargs):
        fn = self.vjps.get(argnum)
        if fn is not None:
            return fn(g, ans, *args, **kwargs)
        if self.generic_vjp is not None:
            return self.generic_vjp(argnum, g, ans, *args, **kwargs)
        raise NotImplementedError(
            f"primitive {self.name!r} has no VJP for argument {argnum}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Primitive({self.name!r}, vjps={sorted(self.vjps)})"


_REGISTRY: Dict[str, Primitive] = {}


def primitive(name: str, fn: Callable[..., np.ndarray]) -> Primitive:
    """Register ``fn`` as a differentiable primitive called ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"primitive {name!r} already registered")
    prim = Primitive(name, fn)
    _REGISTRY[name] = prim
    return prim


def defvjp(prim: Primitive, argnum: int, vjp_fn: VJPFunction) -> None:
    """Register the VJP of ``prim`` with respect to positional arg ``argnum``."""
    if argnum in prim.vjps:
        raise ValueError(f"VJP for {prim.name!r} argnum {argnum} already defined")
    prim.vjps[argnum] = vjp_fn


def defvjp_argnum(prim: Primitive, vjp_fn: Callable[..., Any]) -> None:
    """Register one VJP handling every argnum (variadic primitives).

    ``vjp_fn(argnum, g, ans, *args, **kwargs)`` — used by ``concatenate``,
    whose operand count is unbounded.
    """
    prim.generic_vjp = vjp_fn


def registered_primitives() -> Dict[str, Primitive]:
    """A copy of the primitive table (name → :class:`Primitive`)."""
    return dict(_REGISTRY)


# ---------------------------------------------------------------------- #
# Graph nodes and the backward engine
# ---------------------------------------------------------------------- #
class Node:
    """One recorded application of a primitive.

    Carries ``(primitive, raw argument values, kwargs)`` plus the
    ``(argnum, parent tensor)`` links for the operands that require
    gradients.  There is no per-node backward closure: the VJPs are looked
    up in the primitive's table when the backward pass reaches the node.
    """

    __slots__ = ("prim", "args", "kwargs", "parents")

    def __init__(
        self,
        prim: Primitive,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        parents: Tuple[Tuple[int, Any], ...],
    ) -> None:
        self.prim = prim
        self.args = args
        self.kwargs = kwargs
        self.parents = parents
        STATS.nodes += 1


def _toposort(root) -> List[Any]:
    """Iterative DFS post-order over the tensors reachable through nodes."""
    order: List[Any] = []
    visited = {id(root)}
    node = getattr(root, "_node", None)
    stack = [(root, iter(node.parents if node is not None else ()))]
    while stack:
        current, children = stack[-1]
        advanced = False
        for _, child in children:
            if id(child) not in visited:
                visited.add(id(child))
                child_node = child._node
                stack.append(
                    (child, iter(child_node.parents if child_node is not None else ()))
                )
                advanced = True
                break
        if not advanced:
            order.append(current)
            stack.pop()
    return order


def backward(root, seed: np.ndarray) -> None:
    """Back-propagate ``seed`` from ``root`` through the recorded graph.

    Accumulated gradients are written to ``tensor.grad`` (dense, adding to
    any gradient already present) for every tensor that requires one —
    identical semantics to the old tape, including the order in which
    contributions are summed.
    """
    order = _toposort(root)
    profiler = _active_profiler()
    if profiler is not None:
        # Resident tape bytes for this graph: one pass over the toposort.
        profiler.memory(
            "autodiff.tape.resident",
            sum(t.data.nbytes for t in order),
        )
    accumulators: Dict[int, _Accumulator] = {}

    def accumulator_for(tensor) -> _Accumulator:
        acc = accumulators.get(id(tensor))
        if acc is None:
            acc = _Accumulator()
            accumulators[id(tensor)] = acc
        return acc

    seed = unbroadcast(np.asarray(seed, dtype=np.float64), root.data.shape)
    accumulator_for(root).add_dense(seed)

    for tensor in reversed(order):
        acc = accumulators.get(id(tensor))
        node = tensor._node
        if acc is None or node is None:
            continue
        g = acc.dense_value(tensor.data.shape)
        for argnum, parent in node.parents:
            STATS.vjp_calls += 1
            if profiler is None:
                contribution = node.prim.vjp(
                    argnum, g, tensor.data, node.args, node.kwargs
                )
            else:
                frame = profiler.begin()
                contribution = None
                try:
                    contribution = node.prim.vjp(
                        argnum, g, tensor.data, node.args, node.kwargs
                    )
                finally:
                    profiler.end(
                        frame, "vjp." + node.prim.name, node.args, contribution
                    )
            parent_acc = accumulator_for(parent)
            if isinstance(contribution, SparseGrad):
                parent_acc.add_sparse(contribution)
            else:
                contribution = np.asarray(contribution, dtype=np.float64)
                parent_acc.add_dense(unbroadcast(contribution, parent.data.shape))

    for tensor in order:
        acc = accumulators.get(id(tensor))
        if acc is None or not tensor.requires_grad:
            continue
        dense = acc.finalize(tensor.data.shape)
        if tensor.grad is None:
            tensor.grad = dense
        else:
            tensor.grad = tensor.grad + dense

    if profiler is not None:
        profiler.tape_reset()
