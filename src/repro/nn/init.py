"""Weight initialisation schemes.

All functions take an explicit generator so the whole training pipeline stays
reproducible from a single root seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (typically used for biases)."""
    return np.zeros(shape, dtype=np.float64)


def uniform(
    shape: Tuple[int, ...], low: float = -0.1, high: float = 0.1, rng: RandomState = None
) -> np.ndarray:
    """Uniform initialisation in ``[low, high)``."""
    generator = ensure_rng(rng)
    return generator.uniform(low, high, size=shape)


def glorot_uniform(shape: Tuple[int, ...], rng: RandomState = None, gain: float = 1.0) -> np.ndarray:
    """Glorot / Xavier uniform initialisation.

    This is the scheme used by the reference GCN and GAT implementations.
    """
    if len(shape) < 2:
        fan_in = fan_out = int(np.prod(shape))
    else:
        fan_in, fan_out = shape[0], shape[1]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    generator = ensure_rng(rng)
    return generator.uniform(-limit, limit, size=shape)


def glorot_normal(shape: Tuple[int, ...], rng: RandomState = None, gain: float = 1.0) -> np.ndarray:
    """Glorot / Xavier normal initialisation."""
    if len(shape) < 2:
        fan_in = fan_out = int(np.prod(shape))
    else:
        fan_in, fan_out = shape[0], shape[1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    generator = ensure_rng(rng)
    return generator.normal(0.0, std, size=shape)


def kaiming_uniform(
    shape: Tuple[int, ...], rng: RandomState = None, nonlinearity: str = "relu"
) -> np.ndarray:
    """He / Kaiming uniform initialisation for ReLU networks."""
    fan_in = shape[0] if len(shape) >= 1 else 1
    gain = np.sqrt(2.0) if nonlinearity == "relu" else 1.0
    limit = gain * np.sqrt(3.0 / max(fan_in, 1))
    generator = ensure_rng(rng)
    return generator.uniform(-limit, limit, size=shape)
