"""Loss functions.

The paper trains node classifiers with cross-entropy and, crucially for the
fairness-aware reweighting module, with a *per-sample weighted* cross-entropy
(Eq. 7 of the paper).  Both are provided here on top of the autodiff tensors.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.nn.functional import one_hot
from repro.nn.tensor import Tensor


def _prepare_targets(logits: Tensor, targets: np.ndarray) -> np.ndarray:
    targets = np.asarray(targets, dtype=np.int64)
    if targets.ndim != 1:
        raise ValueError("targets must be a 1-D array of class indices")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError(
            f"targets has {targets.shape[0]} entries but logits has {logits.shape[0]} rows"
        )
    num_classes = logits.shape[1]
    if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
        raise ValueError("target class index out of range")
    return targets


def cross_entropy(
    logits: Tensor, targets: np.ndarray, reduction: str = "mean"
) -> Tensor:
    """Softmax cross-entropy between ``logits`` and integer ``targets``.

    Parameters
    ----------
    logits:
        ``(N, C)`` tensor of unnormalised scores.
    targets:
        ``(N,)`` integer array of class indices.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    targets = _prepare_targets(logits, targets)
    log_probs = logits.log_softmax(axis=1)
    # Gather the target log-probability per row.  The fancy-index backward is
    # a lazy sparse adjoint (one (index, values) pair), so no dense (N, C)
    # one-hot mask or zeros-of-logits scatter buffer is ever allocated.
    per_sample = -log_probs[np.arange(targets.shape[0]), targets]
    if reduction == "none":
        return per_sample
    if reduction == "sum":
        return per_sample.sum()
    if reduction == "mean":
        return per_sample.mean()
    raise ValueError(f"unknown reduction {reduction!r}")


def weighted_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    weights: Union[np.ndarray, Tensor],
    normalize: bool = True,
) -> Tensor:
    """Per-sample weighted cross-entropy, Eq. (7) of the paper.

    ``weights`` holds the multiplier ``(1 + w_v)`` for each training node.
    When ``normalize`` is True the result is divided by the number of samples
    (not the weight sum), matching the fine-tuning loss used by PPFR where a
    weight of zero removes a node from training without rescaling the others.
    """
    per_sample = cross_entropy(logits, targets, reduction="none")
    weight_arr = weights.data if isinstance(weights, Tensor) else np.asarray(weights, dtype=np.float64)
    if weight_arr.shape != (logits.shape[0],):
        raise ValueError(
            f"weights must have shape ({logits.shape[0]},), got {weight_arr.shape}"
        )
    if np.any(weight_arr < 0):
        raise ValueError("per-sample weights must be non-negative")
    weighted = per_sample * Tensor(weight_arr)
    total = weighted.sum()
    if normalize:
        return total * (1.0 / logits.shape[0])
    return total


def mse_loss(predictions: Tensor, targets: Union[np.ndarray, Tensor]) -> Tensor:
    """Mean squared error (used by auxiliary regression tests)."""
    target_tensor = targets if isinstance(targets, Tensor) else Tensor(targets)
    diff = predictions - target_tensor
    return (diff * diff).mean()


def accuracy(logits: Union[Tensor, np.ndarray], targets: np.ndarray) -> float:
    """Classification accuracy of ``argmax(logits)`` against ``targets``."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if scores.shape[0] != targets.shape[0]:
        raise ValueError("logits and targets disagree on the number of samples")
    if targets.size == 0:
        return float("nan")
    predictions = scores.argmax(axis=1)
    return float((predictions == targets).mean())
