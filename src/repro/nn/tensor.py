"""Reverse-mode automatic differentiation on dense NumPy arrays.

Operations are *primitives* registered in the VJP table of
:mod:`repro.nn.autodiff`: each op is a named wrapper around a raw ndarray
function with per-argument vector-Jacobian products registered via
``defvjp(op, argnum, vjp_fn)``.  Applying a primitive records a single graph
node carrying ``(primitive, raw args, kwargs)`` and ``(argnum, parent)``
links — only for operands that require gradients, so constants produce no
nodes and no gradient work at all.  Gather primitives (``__getitem__``)
return lazy :class:`~repro.nn.autodiff.SparseGrad` adjoints instead of dense
zeros-of-the-input scatters.

Only the operations needed by the GNN models and the influence-function
machinery are implemented, but they are implemented with full broadcasting
support so layers can be written naturally.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import autodiff
from repro.nn.autodiff import (
    Node,
    SparseGrad,
    defvjp,
    defvjp_argnum,
    is_grad_enabled,
    no_grad,
    primitive,
    unbroadcast,
)
from repro.obs.profile import active_profiler

__all__ = [
    "Tensor",
    "apply_primitive",
    "concatenate",
    "is_grad_enabled",
    "no_grad",
    "stack",
]

ArrayLike = Union[np.ndarray, float, int, "Tensor", Sequence]

# Backwards-compatible aliases for the helpers that moved into the engine.
_unbroadcast = unbroadcast


class Tensor:
    """A dense tensor participating in a reverse-mode autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_node", "name")
    __array_priority__ = 100  # ensure ndarray.__mul__(Tensor) defers to us

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        # ``no_grad()`` suppresses graph *recording* only; the flag survives
        # so parameters built under inference mode stay trainable.
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._node: Optional[Node] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _promote(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        return apply_primitive(_add, self, self._promote(other))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return apply_primitive(_neg, self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._promote(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._promote(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return apply_primitive(_mul, self, self._promote(other))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return apply_primitive(_div, self, self._promote(other))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._promote(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        return apply_primitive(_pow, self, exponent=exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        return apply_primitive(_matmul, self, self._promote(other))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def transpose(self) -> "Tensor":
        return apply_primitive(_transpose, self)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply_primitive(_reshape, self, shape=shape)

    def __getitem__(self, index) -> "Tensor":
        return apply_primitive(_take, self, index)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(
        self,
        axis: Optional[Union[int, Tuple[int, ...]]] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        return apply_primitive(_sum, self, axis=axis, keepdims=keepdims)

    def mean(
        self,
        axis: Optional[Union[int, Tuple[int, ...]]] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for one_axis in axes:
                count *= self.data.shape[one_axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        return apply_primitive(_max, self, axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        return apply_primitive(_exp, self)

    def log(self) -> "Tensor":
        return apply_primitive(_log, self)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        return apply_primitive(_abs, self)

    def relu(self) -> "Tensor":
        return apply_primitive(_relu, self)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        return apply_primitive(_leaky_relu, self, negative_slope=negative_slope)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        return apply_primitive(_elu, self, alpha=alpha)

    def sigmoid(self) -> "Tensor":
        return apply_primitive(_sigmoid, self)

    def tanh(self) -> "Tensor":
        return apply_primitive(_tanh, self)

    # ------------------------------------------------------------------ #
    # Composite helpers used by the GNN layers
    # ------------------------------------------------------------------ #
    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor with entries where ``mask`` is True set to ``value``.

        Gradients do not flow through the filled positions.
        """
        mask = np.asarray(mask, dtype=bool)
        return apply_primitive(_masked_fill, self, mask, value)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs; non-scalar outputs require
        an explicit output gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        autodiff.backward(self, grad)


def apply_primitive(prim, *args, **kwargs) -> Tensor:
    """Apply ``prim`` to (tensor or raw) ``args``, recording a node if needed.

    Non-:class:`Tensor` arguments pass through as-is (indices, masks, CSR
    operators, scalars).  A node is recorded only when recording is enabled
    and at least one operand both requires a gradient and has a VJP
    registered — so constant-only applications return a plain tensor with no
    graph presence whatsoever.
    """
    raw = tuple(a.data if isinstance(a, Tensor) else a for a in args)
    profiler = active_profiler()
    if profiler is None:
        data = prim.fn(*raw, **kwargs)
    else:
        frame = profiler.begin()
        data = None
        try:
            data = prim.fn(*raw, **kwargs)
        finally:
            profiler.end(frame, "nn." + prim.name, raw, data)
    out = Tensor(data)
    if is_grad_enabled():
        parents = tuple(
            (argnum, arg)
            for argnum, arg in enumerate(args)
            if isinstance(arg, Tensor) and arg.requires_grad and prim.has_vjp(argnum)
        )
        if parents:
            out.requires_grad = True
            out._node = Node(prim, raw, kwargs, parents)
            if profiler is not None:
                profiler.tape_alloc(out.data.nbytes)
    return out


# ---------------------------------------------------------------------- #
# Primitive definitions and their VJP registrations
# ---------------------------------------------------------------------- #
_add = primitive("add", np.add)
defvjp(_add, 0, lambda g, ans, a, b: g)
defvjp(_add, 1, lambda g, ans, a, b: g)

_neg = primitive("neg", np.negative)
defvjp(_neg, 0, lambda g, ans, x: -g)

_mul = primitive("mul", np.multiply)
defvjp(_mul, 0, lambda g, ans, a, b: g * b)
defvjp(_mul, 1, lambda g, ans, a, b: g * a)

_div = primitive("div", np.divide)
defvjp(_div, 0, lambda g, ans, a, b: g / b)
defvjp(_div, 1, lambda g, ans, a, b: -g * a / (b**2))


def _pow_vjp(g, ans, x, exponent):
    if exponent == 0:
        # d(x^0)/dx ≡ 0 everywhere; the naive formula evaluates 0 * x**-1,
        # which is NaN at x = 0.
        return np.zeros_like(g)
    return g * exponent * x ** (exponent - 1)


_pow = primitive("pow", lambda x, exponent: x**exponent)
defvjp(_pow, 0, _pow_vjp)

_matmul = primitive("matmul", lambda a, b: a @ b)
defvjp(_matmul, 0, lambda g, ans, a, b: g @ b.T)
defvjp(_matmul, 1, lambda g, ans, a, b: a.T @ g)

_transpose = primitive("transpose", lambda x: x.T)
defvjp(_transpose, 0, lambda g, ans, x: g.T)

_reshape = primitive("reshape", lambda x, shape: x.reshape(shape))
defvjp(_reshape, 0, lambda g, ans, x, shape: g.reshape(x.shape))

_take = primitive("take", lambda x, index: x[index])
defvjp(_take, 0, lambda g, ans, x, index: SparseGrad(x.shape, index, g))


def _sum_vjp(g, ans, x, axis=None, keepdims=False):
    if axis is not None and not keepdims:
        g = np.expand_dims(g, axis)
    return np.broadcast_to(g, x.shape)


_sum = primitive("sum", lambda x, axis=None, keepdims=False: x.sum(axis=axis, keepdims=keepdims))
defvjp(_sum, 0, _sum_vjp)


def _max_vjp(g, ans, x, axis=None, keepdims=False):
    if axis is None:
        mask = (x == x.max()).astype(np.float64)
        mask /= mask.sum()
        return mask * g
    expanded_max = x.max(axis=axis, keepdims=True)
    mask = (x == expanded_max).astype(np.float64)
    mask /= mask.sum(axis=axis, keepdims=True)
    if not keepdims:
        g = np.expand_dims(g, axis)
    return mask * g


_max = primitive("max", lambda x, axis=None, keepdims=False: x.max(axis=axis, keepdims=keepdims))
defvjp(_max, 0, _max_vjp)

_exp = primitive("exp", np.exp)
defvjp(_exp, 0, lambda g, ans, x: g * ans)

_log = primitive("log", np.log)
defvjp(_log, 0, lambda g, ans, x: g / x)

_abs = primitive("abs", np.abs)
defvjp(_abs, 0, lambda g, ans, x: g * np.sign(x))

_relu = primitive("relu", lambda x: x * (x > 0).astype(np.float64))
defvjp(_relu, 0, lambda g, ans, x: g * (x > 0).astype(np.float64))


def _leaky_relu_fn(x, negative_slope=0.2):
    return x * np.where(x > 0, 1.0, negative_slope)


_leaky_relu = primitive("leaky_relu", _leaky_relu_fn)
defvjp(
    _leaky_relu,
    0,
    lambda g, ans, x, negative_slope=0.2: g * np.where(x > 0, 1.0, negative_slope),
)


def _elu_fn(x, alpha=1.0):
    exp_part = alpha * (np.exp(np.minimum(x, 0.0)) - 1.0)
    return np.where(x > 0, x, exp_part)


def _elu_vjp(g, ans, x, alpha=1.0):
    exp_part = alpha * (np.exp(np.minimum(x, 0.0)) - 1.0)
    return g * np.where(x > 0, 1.0, exp_part + alpha)


_elu = primitive("elu", _elu_fn)
defvjp(_elu, 0, _elu_vjp)

_sigmoid = primitive("sigmoid", lambda x: 1.0 / (1.0 + np.exp(-x)))
defvjp(_sigmoid, 0, lambda g, ans, x: g * ans * (1.0 - ans))

_tanh = primitive("tanh", np.tanh)
defvjp(_tanh, 0, lambda g, ans, x: g * (1.0 - ans**2))

_masked_fill = primitive("masked_fill", lambda x, mask, value: np.where(mask, value, x))
defvjp(_masked_fill, 0, lambda g, ans, x, mask, value: np.where(mask, 0.0, g))


def _concatenate_vjp(argnum, g, ans, *arrays, axis=0):
    start = sum(a.shape[axis] for a in arrays[:argnum])
    stop = start + arrays[argnum].shape[axis]
    slicer = [slice(None)] * g.ndim
    slicer[axis] = slice(start, stop)
    return g[tuple(slicer)]


_concatenate = primitive(
    "concatenate", lambda *arrays, axis=0: np.concatenate(arrays, axis=axis)
)
defvjp_argnum(_concatenate, _concatenate_vjp)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (negative axes allowed)."""
    tensors = [Tensor._promote(t) for t in tensors]
    if not tensors:
        raise ValueError("concatenate requires at least one tensor")
    return apply_primitive(_concatenate, *tensors, axis=axis)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (negative axes allowed)."""
    tensors = [Tensor._promote(t) for t in tensors]
    if not tensors:
        raise ValueError("stack requires at least one tensor")
    ndim = tensors[0].ndim
    if not -(ndim + 1) <= axis <= ndim:
        raise np.exceptions.AxisError(axis, ndim + 1)
    if axis < 0:
        # Normalising here is what places the new axis correctly: slicing
        # ``shape[:axis]`` with a negative axis would insert the 1 one
        # position too early (e.g. axis=-1 appended before the last dim).
        axis += ndim + 1
    expanded = [t.reshape(*t.shape[:axis], 1, *t.shape[axis:]) for t in tensors]
    return concatenate(expanded, axis=axis)
