"""Reverse-mode automatic differentiation on dense NumPy arrays.

The design follows the classic tape-based approach: every operation builds a
node in a DAG that stores a closure computing the contribution of the output
gradient to each input gradient.  Calling :meth:`Tensor.backward` on a scalar
output performs a topological sort and accumulates gradients.

Only the operations needed by the GNN models and the influence-function
machinery are implemented, but they are implemented with full broadcasting
support so layers can be written naturally.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor", Sequence]

_GRAD_ENABLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_grad_enabled", default=True
)
"""Dynamically scoped autodiff mode flag.

A :class:`contextvars.ContextVar` rather than a module global so that
``no_grad()`` in one thread / task of a parallel runner cannot disable graph
recording in another.
"""


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def is_grad_enabled() -> bool:
    """Return whether autodiff graph recording is currently enabled."""
    return _GRAD_ENABLED.get()


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were of size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A dense tensor participating in a reverse-mode autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 100  # ensure ndarray.__mul__(Tensor) defers to us

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED.get()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: Tuple[Tensor, ...] = _prev if self.requires_grad or _prev else ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _promote(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED.get() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._promote(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._promote(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._promote(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._promote(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._promote(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._promote(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        other = self._promote(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            # Guard each operand: the product forming its gradient is O(n²)
            # work and memory, wasted when that operand is a constant (e.g.
            # every propagation matrix in the GNN layers).
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return self._make(data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=np.float64)
            if axis is None:
                expanded = np.broadcast_to(grad, self.data.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis)
                expanded = np.broadcast_to(grad, self.data.shape)
            self._accumulate(expanded)

        return self._make(data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=np.float64)
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * grad)
            else:
                expanded_max = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded_max).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis)
                self._accumulate(mask * g)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = np.where(self.data > 0, 1.0, negative_slope)
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        positive = self.data > 0
        exp_part = alpha * (np.exp(np.minimum(self.data, 0.0)) - 1.0)
        data = np.where(positive, self.data, exp_part)

        def backward(grad: np.ndarray) -> None:
            local = np.where(positive, 1.0, exp_part + alpha)
            self._accumulate(grad * local)

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data**2))

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Composite helpers used by the GNN layers
    # ------------------------------------------------------------------ #
    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor with entries where ``mask`` is True set to ``value``.

        Gradients do not flow through the filled positions.
        """
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.where(mask, 0.0, grad))

        return self._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs; non-scalar outputs require
        an explicit output gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        order: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._prev))]
            visited.add(id(node))
            while stack:
                current, children = stack[-1]
                advanced = False
                for child in children:
                    if id(child) not in visited:
                        visited.add(id(child))
                        stack.append((child, iter(child._prev)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._promote(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    requires = _GRAD_ENABLED.get() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else ())
    if requires:
        out._backward = backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [Tensor._promote(t) for t in tensors]
    expanded = [t.reshape(*t.shape[:axis], 1, *t.shape[axis:]) for t in tensors]
    return concatenate(expanded, axis=axis)
