"""Request-scoped tracing with cross-process span stitching.

One serving request touches many layers — batcher queue, engine cache,
fused-plan replay, router fan-out, worker processes — and a slow p99 is
useless without knowing *which* stage on *which* shard ate the time.  This
module provides the span machinery those layers share:

* :func:`span` — the single hot-path call site.  When tracing is disabled
  (the default) it performs one :class:`contextvars.ContextVar` read and
  returns a shared no-op singleton, so instrumentation stays in the code at
  near-zero cost (pinned ≤ 2% of the warm-cache serving leg by
  ``benchmarks/test_obs_overhead.py``);
* :class:`Span` — context manager *and* manually finishable record
  (``finish()``), so a span can be opened on the submit thread and closed on
  the drain thread.  Spans nest through a ContextVar holding the current
  ``(trace_id, span_id)``;
* :class:`SpanContext` — the propagation token.  The router attaches
  :func:`current_context` to every worker command; the child process adopts
  it with :func:`adopt`, records its spans locally (queue/IPC wait derived
  from the context's ``sent_at`` wall-clock), and ships the finished span
  dicts back with the reply where :meth:`Tracer.ingest` stitches them into
  the parent's trace store — one tree per request, across processes;
* :class:`Tracer` — bounded per-process store of finished spans keyed by
  trace id, with a drain buffer for pipe export and a tree renderer.

Span ids are ``pid-sequence`` strings: unique across the cluster's processes
without any randomness, and self-describing in rendered trees.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SpanContext",
    "Span",
    "Tracer",
    "tracing_enabled",
    "set_tracing",
    "use_tracing",
    "span",
    "start_trace",
    "current_context",
    "adopt",
    "get_tracer",
    "render_trace",
]

_ENV_FLAG = os.environ.get("REPRO_TELEMETRY", "").strip().lower()

# Enablement is a *process-wide* default plus a context-local override.
# The default must be module-global, not a ContextVar default: the
# batcher's background drain thread (and any worker thread) runs in a
# fresh contextvars context, so a purely context-scoped flag set on the
# main thread would silently read as disabled there.
_DEFAULT_ENABLED = _ENV_FLAG in ("1", "true", "on", "yes")

_ENABLED: contextvars.ContextVar[Optional[bool]] = contextvars.ContextVar(
    "repro_tracing_override", default=None
)


def _enabled() -> bool:
    override = _ENABLED.get()
    return _DEFAULT_ENABLED if override is None else override


_CURRENT: contextvars.ContextVar[Optional[Tuple[str, str]]] = contextvars.ContextVar(
    "repro_current_span", default=None
)

_SEQ = itertools.count(1)


def _new_id() -> str:
    return f"{os.getpid():x}-{next(_SEQ):x}"


def tracing_enabled() -> bool:
    """Whether span recording is on in the current context."""
    return _enabled()


def set_tracing(enabled: bool) -> None:
    """Turn span recording on/off process-wide.

    This flips the module-level default so background threads (the batcher
    drain loop) and freshly spawned contexts see the change; use
    :func:`use_tracing` for a context-scoped override instead.
    """
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(enabled)


@contextlib.contextmanager
def use_tracing(enabled: bool) -> Iterator[None]:
    """Scope tracing on/off (tests, benchmark legs)."""
    token = _ENABLED.set(bool(enabled))
    try:
        yield
    finally:
        _ENABLED.reset(token)


@dataclass(frozen=True)
class SpanContext:
    """Wire-format parent reference: carried through worker command pipes.

    ``sent_at`` is the sender's wall clock at transmission; the receiving
    process records ``ipc_wait_s = recv_time - sent_at`` (same-host clocks,
    so skew is microseconds against waits of milliseconds).
    """

    trace_id: str
    span_id: str
    sent_at: float


class _NullSpan:
    """Shared no-op span: the entire disabled-path cost."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    def finish(self) -> None:
        return None

    @contextlib.contextmanager
    def active(self) -> Iterator[None]:
        yield


NULL_SPAN = _NullSpan()


class Span:
    """One timed stage of a trace.

    Starts its clock at construction.  As a context manager it also makes
    itself the current span (children created inside nest under it); via
    :meth:`finish` it can be closed from a different thread without ever
    touching the ContextVar.
    """

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "duration",
        "attrs",
        "_t0",
        "_token",
        "_finished",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Optional[Dict] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.start = time.time()
        self.duration = 0.0
        self._t0 = time.perf_counter()
        self._token = None
        self._finished = False

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def context(self) -> SpanContext:
        """Propagation token naming this span as the remote parent."""
        return SpanContext(self.trace_id, self.span_id, time.time())

    @contextlib.contextmanager
    def active(self) -> Iterator["Span"]:
        """Make this span current without entering/finishing it — used by
        the batcher to run a shared engine call under the leader request."""
        token = _CURRENT.set((self.trace_id, self.span_id))
        try:
            yield self
        finally:
            _CURRENT.reset(token)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()
        return False

    def finish(self) -> None:
        """Record the span (idempotent; callable from any thread)."""
        if self._finished:
            return
        self._finished = True
        self.duration = time.perf_counter() - self._t0
        self.tracer._record(self.to_dict())

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "pid": os.getpid(),
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class Tracer:
    """Bounded per-process store of finished spans, keyed by trace id."""

    def __init__(self, max_traces: int = 256, max_spans_per_trace: int = 1024) -> None:
        self.max_traces = int(max_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._traces: "OrderedDict[str, List[Dict]]" = OrderedDict()
        self._export: List[Dict] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Span creation
    # ------------------------------------------------------------------ #
    def span(
        self,
        name: str,
        parent: Optional[object] = None,
        new_trace: bool = False,
        **attrs,
    ) -> Span:
        """Open a span under ``parent`` (default: the current span).

        ``parent`` may be a :class:`Span`, a :class:`SpanContext` (remote),
        or ``None``; ``new_trace=True`` forces a fresh root trace.
        """
        if new_trace:
            return Span(self, name, _new_id(), None, attrs)
        if isinstance(parent, Span):
            return Span(self, name, parent.trace_id, parent.span_id, attrs)
        if isinstance(parent, SpanContext):
            return Span(self, name, parent.trace_id, parent.span_id, attrs)
        current = _CURRENT.get()
        if current is not None:
            return Span(self, name, current[0], current[1], attrs)
        return Span(self, name, _new_id(), None, attrs)

    # ------------------------------------------------------------------ #
    # Storage
    # ------------------------------------------------------------------ #
    def _record(self, span_dict: Dict) -> None:
        with self._lock:
            spans = self._traces.get(span_dict["trace"])
            if spans is None:
                spans = []
                self._traces[span_dict["trace"]] = spans
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            if len(spans) < self.max_spans_per_trace:
                spans.append(span_dict)
            self._export.append(span_dict)
            # The export buffer only exists for pipe shipping / snapshot
            # emission; bound it the same way.
            if len(self._export) > self.max_traces * self.max_spans_per_trace:
                del self._export[: len(self._export) // 2]

    def ingest(self, span_dicts: List[Dict]) -> None:
        """Stitch remotely-recorded spans (worker replies) into the store."""
        for span_dict in span_dicts:
            self._record(span_dict)

    def drain(self) -> List[Dict]:
        """Pop every span finished since the last drain (pipe export)."""
        with self._lock:
            out, self._export = self._export, []
            return out

    def trace(self, trace_id: str) -> List[Dict]:
        """All recorded spans of one trace (parents and children alike)."""
        with self._lock:
            return list(self._traces.get(trace_id, []))

    def trace_ids(self) -> List[str]:
        """Known trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def export_traces(self, last: int = 16) -> Dict[str, List[Dict]]:
        """Up to ``last`` traces as a JSON-serialisable mapping.

        Half the budget goes to the *richest* traces (most spans — the
        batch leaders whose trees hold the cross-process stages), half to
        the most recent; a coalesced burst of follower traces therefore
        cannot push the leader tree out of the snapshot.
        """
        with self._lock:
            ids = list(self._traces)
            richest = sorted(
                ids, key=lambda tid: len(self._traces[tid]), reverse=True
            )[: max(1, last // 2)]
            chosen = dict.fromkeys(ids[-(last - len(richest)) :])
            chosen.update(dict.fromkeys(richest))
            # Preserve insertion (recording) order in the export.
            return {
                tid: list(self._traces[tid])
                for tid in ids
                if tid in chosen
            }

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._export.clear()


_GLOBAL_TRACER = Tracer()

_ACTIVE_TRACER: contextvars.ContextVar[Optional[Tracer]] = contextvars.ContextVar(
    "repro_tracer", default=None
)


def get_tracer() -> Tracer:
    """The tracer of the current context (defaults to the process-global)."""
    return _ACTIVE_TRACER.get() or _GLOBAL_TRACER


@contextlib.contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Tracer]:
    """Scope a tracer (tests isolate their span stores this way)."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer or _GLOBAL_TRACER
    finally:
        _ACTIVE_TRACER.reset(token)


# ---------------------------------------------------------------------- #
# Hot-path helpers
# ---------------------------------------------------------------------- #
def span(name: str) -> object:
    """Open a stage span — THE instrumentation call site.

    Disabled path: one ContextVar read, return the shared no-op singleton.
    Attributes go through ``.set(...)`` on the returned object so call sites
    never build kwargs dicts when tracing is off.
    """
    if not _enabled():
        return NULL_SPAN
    return get_tracer().span(name)


def start_trace(name: str) -> object:
    """Open a fresh root trace (one per serving request)."""
    if not _enabled():
        return NULL_SPAN
    return get_tracer().span(name, new_trace=True)


def current_context() -> Optional[SpanContext]:
    """Propagation token for the current span (``None`` when disabled/idle)."""
    if not _enabled():
        return None
    current = _CURRENT.get()
    if current is None:
        return None
    return SpanContext(current[0], current[1], time.time())


@contextlib.contextmanager
def adopt(ctx: Optional[SpanContext]) -> Iterator[None]:
    """Install a remote parent context (worker-process side; ``None`` no-op)."""
    if ctx is None:
        yield
        return
    token = _CURRENT.set((ctx.trace_id, ctx.span_id))
    try:
        yield
    finally:
        _CURRENT.reset(token)


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #
def render_trace(spans: List[Dict]) -> str:
    """ASCII tree of one trace's spans (children indented under parents)."""
    if not spans:
        return "(empty trace)"
    by_id = {s["span"]: s for s in spans}
    children: Dict[Optional[str], List[Dict]] = {}
    for s in spans:
        parent = s["parent"] if s["parent"] in by_id else None
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: s["start"])

    lines: List[str] = []

    def walk(span_dict: Dict, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span_dict["attrs"].items()))
        lines.append(
            "  " * depth
            + f"{span_dict['name']}  {span_dict['duration'] * 1e3:.2f}ms"
            + f"  [pid {span_dict['pid']}]"
            + (f"  {attrs}" if attrs else "")
        )
        for child in children.get(span_dict["span"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
