"""Op-level kernel profiler: wall time, flops/bytes, memory high-water marks.

PR 9's spans bottom out at coarse stages (``engine.predict``,
``plan.replay``); this module descends one level further, to the *kernels*
those stages dispatch.  It hooks the three choke points the codebase already
funnels every FLOP through:

* ``apply_primitive`` in :mod:`repro.nn.tensor` — every dense forward op and
  (via the backward engine's VJP fire) every gradient op;
* ``CSRMatrix.matmul_dense`` in :mod:`repro.sparse.csr` — the spmm/spmv
  kernels, whichever layer calls them;
* each fused op replayed by :class:`repro.gnn.plan.InferencePlan`.

Per kernel it records call counts, cumulative and *self* wall time (child
kernel time is subtracted through a per-thread frame stack, so ``plan.prop``
does not double-count the ``spmm`` it contains), operand shapes, and
roofline-style flop/byte estimates from the registered per-primitive
estimators.  Allocation high-water marks (autodiff tape, plan
``BufferPool``) flow into the active :class:`~repro.obs.metrics
.MetricsRegistry` as ``profile.mem.*`` gauges, and the aggregate table is
exposed as the ``profile.kernels`` snapshot collector.

When request tracing is also enabled, every kernel invocation under an open
span additionally records a ``kernel.<name>`` span into the tracer — so the
existing cross-process shipping (worker replies carry drained spans) gives
one request → batcher → shard → kernel timeline for free, exportable as a
Chrome trace via :mod:`repro.obs.chrome`.

The disabled path is a single ContextVar read returning ``None`` — the same
budget discipline as :func:`repro.obs.trace.span`, pinned by
``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs import trace as _trace
from repro.obs.metrics import active_metrics, register_collector

__all__ = [
    "KernelProfiler",
    "active_profiler",
    "global_profiler",
    "profiling_enabled",
    "set_profiling",
    "use_profiling",
    "use_profiler",
    "estimate_flops_bytes",
    "register_estimator",
    "format_top",
]

_ENV_FLAG = os.environ.get("REPRO_PROFILE", "").strip().lower()

# Mirrors repro.obs.trace: a module-global default (visible to background
# threads and freshly spawned contexts) plus a context-local override.
_DEFAULT_ENABLED = _ENV_FLAG in ("1", "true", "on", "yes")

_ENABLED: contextvars.ContextVar[Optional[bool]] = contextvars.ContextVar(
    "repro_profiling_override", default=None
)

_ACTIVE: contextvars.ContextVar[Optional["KernelProfiler"]] = contextvars.ContextVar(
    "repro_profiler", default=None
)


def profiling_enabled() -> bool:
    """Whether kernel profiling is on in the current context."""
    override = _ENABLED.get()
    return _DEFAULT_ENABLED if override is None else override


def set_profiling(enabled: bool) -> None:
    """Turn kernel profiling on/off process-wide (CLI ``--profile``)."""
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(enabled)


@contextlib.contextmanager
def use_profiling(enabled: bool) -> Iterator[None]:
    """Scope profiling on/off (tests, benchmark legs)."""
    token = _ENABLED.set(bool(enabled))
    try:
        yield
    finally:
        _ENABLED.reset(token)


@contextlib.contextmanager
def use_profiler(profiler: Optional["KernelProfiler"]) -> Iterator["KernelProfiler"]:
    """Scope a profiler instance *and* enable profiling (test isolation)."""
    token = _ACTIVE.set(profiler)
    flag = _ENABLED.set(True)
    try:
        yield profiler or _GLOBAL
    finally:
        _ENABLED.reset(flag)
        _ACTIVE.reset(token)


def active_profiler() -> Optional["KernelProfiler"]:
    """THE hot-path gate: ``None`` when profiling is off.

    Hook sites call this once, branch on ``None``, and only then pay for
    frames/estimators — so the disabled cost is one ContextVar read plus a
    comparison, identical in shape to the span fast path.
    """
    override = _ENABLED.get()
    if not (_DEFAULT_ENABLED if override is None else override):
        return None
    return _ACTIVE.get() or _GLOBAL


def global_profiler() -> "KernelProfiler":
    """The process-global profiler (aggregation target for CLI runs)."""
    return _GLOBAL


# ---------------------------------------------------------------------- #
# Roofline-style flop/byte estimators, keyed by canonical kernel name
# ---------------------------------------------------------------------- #
def _nbytes(value) -> int:
    nb = getattr(value, "nbytes", None)
    return int(nb) if nb is not None else 0


def _shape_of(value) -> Optional[Tuple[int, ...]]:
    shape = getattr(value, "shape", None)
    if shape is None:
        return None
    return tuple(int(s) for s in shape)


def _est_matmul(args, out) -> Tuple[int, int]:
    a, b = args[0], args[1]
    a_shape, b_shape = _shape_of(a), _shape_of(b)
    if not a_shape or not b_shape:
        return 0, _nbytes(out)
    m = a_shape[-2] if len(a_shape) >= 2 else 1
    k = a_shape[-1]
    n = b_shape[-1] if len(b_shape) >= 2 else 1
    batch = 1
    for dim in a_shape[:-2]:
        batch *= dim
    flops = 2 * batch * m * k * n
    return flops, _nbytes(a) + _nbytes(b) + _nbytes(out)


def _est_spmm(args, out) -> Tuple[int, int]:
    matrix, x = args[0], args[1]
    nnz = int(getattr(matrix, "nnz", 0))
    x_shape = _shape_of(x) or ()
    cols = x_shape[1] if len(x_shape) >= 2 else 1
    flops = 2 * nnz * cols
    itemsize = int(getattr(x, "itemsize", 8))
    operator_bytes = (
        int(matrix.memory_bytes()) if hasattr(matrix, "memory_bytes") else 0
    )
    # operator storage + one gathered row of x per stored entry + the output
    moved = operator_bytes + nnz * cols * itemsize + _nbytes(out)
    return flops, moved


def _est_elementwise(args, out) -> Tuple[int, int]:
    size = int(getattr(out, "size", 0) or 0)
    moved = sum(_nbytes(a) for a in args) + _nbytes(out)
    return size, moved


def _est_free(args, out) -> Tuple[int, int]:
    # Views / reshapes: no arithmetic, only (at worst) a copy of the output.
    return 0, _nbytes(out)


_ESTIMATORS: Dict[str, Callable[[tuple, object], Tuple[int, int]]] = {
    "matmul": _est_matmul,
    "spmm": _est_spmm,
    "spmv": _est_spmm,
    "prop": _est_spmm,
    "transpose": _est_free,
    "reshape": _est_free,
}


def register_estimator(
    name: str, estimator: Callable[[tuple, object], Tuple[int, int]]
) -> None:
    """Register/replace the flop-byte estimator for a canonical kernel."""
    _ESTIMATORS[name] = estimator


def _canonical(name: str) -> str:
    """Strip the dispatch-layer prefix: ``nn.matmul``/``vjp.matmul`` and the
    plan's ``plan.matmul`` all share the matmul cost model."""
    if "." in name:
        return name.rsplit(".", 1)[1]
    return name


def estimate_flops_bytes(name: str, args: tuple, out) -> Tuple[int, int]:
    """Roofline estimate ``(flops, bytes_moved)`` for one kernel call."""
    estimator = _ESTIMATORS.get(_canonical(name), _est_elementwise)
    try:
        return estimator(args, out)
    except Exception:  # pragma: no cover - estimators must never break dispatch
        return 0, 0


# ---------------------------------------------------------------------- #
# Profiler
# ---------------------------------------------------------------------- #
class _Frame:
    """Open kernel invocation on the per-thread stack."""

    __slots__ = ("t0", "start", "child")

    def __init__(self) -> None:
        self.t0 = time.perf_counter()
        self.start = time.time()
        self.child = 0.0


class _OpStat:
    __slots__ = ("calls", "cum_s", "self_s", "flops", "bytes", "shapes")

    def __init__(self) -> None:
        self.calls = 0
        self.cum_s = 0.0
        self.self_s = 0.0
        self.flops = 0
        self.bytes = 0
        self.shapes: Dict[str, int] = {}

    def row(self) -> Dict[str, object]:
        return {
            "calls": self.calls,
            "cum_s": self.cum_s,
            "self_s": self.self_s,
            "flops": self.flops,
            "bytes": self.bytes,
            "shapes": dict(self.shapes),
        }


_MAX_SHAPE_SIGS = 8


class KernelProfiler:
    """Aggregating op-level profiler with a per-thread frame stack.

    ``begin()``/``end()`` bracket one kernel call; nesting is tracked so
    self-time excludes child kernels.  Thread-safe: the aggregate table is
    lock-guarded, the frame stack is thread-local.
    """

    def __init__(self, name: str = "profile") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._ops: Dict[str, _OpStat] = {}
        self._mem: Dict[str, int] = {}
        self._tape_bytes = 0
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Hot path
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[_Frame]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def begin(self) -> _Frame:
        frame = _Frame()
        self._stack().append(frame)
        return frame

    def end(self, frame: _Frame, name: str, args: tuple = (), out=None) -> None:
        duration = time.perf_counter() - frame.t0
        stack = self._stack()
        if stack and stack[-1] is frame:
            stack.pop()
        if stack:
            stack[-1].child += duration
        self_s = duration - frame.child
        if self_s < 0.0:
            self_s = 0.0
        flops, moved = estimate_flops_bytes(name, args, out)
        sig = ",".join(
            "x".join(str(d) for d in s)
            for s in (_shape_of(a) for a in args)
            if s is not None
        )
        with self._lock:
            stat = self._ops.get(name)
            if stat is None:
                stat = self._ops[name] = _OpStat()
            stat.calls += 1
            stat.cum_s += duration
            stat.self_s += self_s
            stat.flops += flops
            stat.bytes += moved
            if sig and (sig in stat.shapes or len(stat.shapes) < _MAX_SHAPE_SIGS):
                stat.shapes[sig] = stat.shapes.get(sig, 0) + 1
        self._emit_event(name, frame.start, duration, sig, flops, moved)

    def _emit_event(
        self, name: str, start: float, duration: float, sig: str, flops: int, moved: int
    ) -> None:
        """Record a ``kernel.<name>`` span under the current request span.

        Only fires when tracing is on *and* a span is open — kernel events
        exist to deepen request timelines, not to flood the tracer during
        untraced training loops.  They ride the existing worker-reply span
        shipping, so cross-process stitching needs no new plumbing.
        """
        if not _trace.tracing_enabled():
            return
        current = _trace._CURRENT.get()
        if current is None:
            return
        _trace.get_tracer()._record(
            {
                "trace": current[0],
                "span": _trace._new_id(),
                "parent": current[1],
                "name": f"kernel.{name}",
                "pid": os.getpid(),
                "start": start,
                "duration": duration,
                "attrs": {"shapes": sig, "flops": flops, "bytes": moved},
            }
        )

    @contextlib.contextmanager
    def kernel(self, name: str, args: tuple = ()) -> Iterator[None]:
        """Context-manager form for call sites that are not dispatch-hot."""
        frame = self.begin()
        try:
            yield
        finally:
            self.end(frame, name, args)

    # ------------------------------------------------------------------ #
    # Memory high-water marks
    # ------------------------------------------------------------------ #
    def memory(self, name: str, nbytes: int) -> None:
        """Record an allocation high-water mark (monotonic per name)."""
        nbytes = int(nbytes)
        with self._lock:
            if nbytes <= self._mem.get(name, -1):
                return
            self._mem[name] = nbytes
        try:
            active_metrics().gauge(f"profile.mem.{name}", component="profile").set(
                nbytes
            )
        except Exception:  # pragma: no cover - metrics must not break compute
            pass

    def tape_alloc(self, nbytes: int) -> None:
        """One graph node recorded ``nbytes`` of output on the live tape."""
        with self._lock:
            self._tape_bytes += int(nbytes)
            current = self._tape_bytes
        self.memory("autodiff.tape", current)

    def tape_reset(self) -> None:
        """The live tape was consumed (backward ran); restart the meter."""
        with self._lock:
            self._tape_bytes = 0

    # ------------------------------------------------------------------ #
    # Export / aggregation
    # ------------------------------------------------------------------ #
    def table(self) -> Dict[str, Dict[str, object]]:
        """Aggregate per-kernel rows (JSON-serialisable)."""
        with self._lock:
            return {name: stat.row() for name, stat in self._ops.items()}

    def memory_marks(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._mem)

    def merge_table(self, rows: Dict[str, Dict[str, object]]) -> None:
        """Fold another process's aggregate table into this one
        (cluster CLI merges worker tables shipped via shard stats)."""
        with self._lock:
            for name, row in rows.items():
                stat = self._ops.get(name)
                if stat is None:
                    stat = self._ops[name] = _OpStat()
                stat.calls += int(row.get("calls", 0))
                stat.cum_s += float(row.get("cum_s", 0.0))
                stat.self_s += float(row.get("self_s", 0.0))
                stat.flops += int(row.get("flops", 0))
                stat.bytes += int(row.get("bytes", 0))
                for sig, count in dict(row.get("shapes", {})).items():
                    if sig in stat.shapes or len(stat.shapes) < _MAX_SHAPE_SIGS:
                        stat.shapes[sig] = stat.shapes.get(sig, 0) + int(count)

    def merge_memory(self, marks: Dict[str, int]) -> None:
        for name, nbytes in dict(marks).items():
            self.memory(name, nbytes)

    def snapshot(self) -> Dict[str, object]:
        """Collector payload for metric snapshots."""
        return {
            "enabled": profiling_enabled(),
            "ops": self.table(),
            "memory": self.memory_marks(),
        }

    def reset(self) -> None:
        with self._lock:
            self._ops.clear()
            self._mem.clear()
            self._tape_bytes = 0


_GLOBAL = KernelProfiler("global")

# The snapshot collector reflects whichever profiler is active in the
# emitting context (scoped in tests, the process-global one in CLI runs).
register_collector(
    "profile.kernels", lambda: (_ACTIVE.get() or _GLOBAL).snapshot()
)


# ---------------------------------------------------------------------- #
# Rendering (repro.obs top)
# ---------------------------------------------------------------------- #
def format_top(
    ops: Dict[str, Dict[str, object]],
    memory: Optional[Dict[str, int]] = None,
    limit: int = 20,
) -> str:
    """Hottest-ops table: self/cumulative time, call counts, flop rate."""
    if not ops:
        return "(no kernel samples — run with --profile)"
    rows = sorted(ops.items(), key=lambda kv: kv[1].get("self_s", 0.0), reverse=True)
    total_self = sum(float(r.get("self_s", 0.0)) for _, r in rows) or 1.0
    lines = [
        f"{'kernel':<18} {'calls':>8} {'self(ms)':>10} {'cum(ms)':>10} "
        f"{'self%':>6} {'GFLOP/s':>8} {'GB/s':>8}"
    ]
    for name, row in rows[: max(1, limit)]:
        self_s = float(row.get("self_s", 0.0))
        cum_s = float(row.get("cum_s", 0.0))
        flops = float(row.get("flops", 0))
        moved = float(row.get("bytes", 0))
        rate = flops / self_s / 1e9 if self_s > 0 else 0.0
        bw = moved / self_s / 1e9 if self_s > 0 else 0.0
        lines.append(
            f"{name:<18} {int(row.get('calls', 0)):>8} {self_s * 1e3:>10.3f} "
            f"{cum_s * 1e3:>10.3f} {100 * self_s / total_self:>5.1f}% "
            f"{rate:>8.2f} {bw:>8.2f}"
        )
    if memory:
        lines.append("memory high-water marks:")
        for name in sorted(memory):
            mb = memory[name] / 1e6
            lines.append(f"  {name:<28} {mb:>10.3f} MB")
    return "\n".join(lines)
