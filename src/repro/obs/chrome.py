"""Chrome-trace (catapult JSON) export of stitched request timelines.

The tracer already produces one tree per serving request with spans from
every process involved (workers ship their spans — and, with profiling on,
their ``kernel.*`` events — back on the command-pipe reply).  This module
converts those span dicts into the Trace Event Format consumed by
``chrome://tracing`` / Perfetto: one ``ph: "X"`` (complete) event per span,
timestamps in microseconds of wall-clock time, real OS pids as track ids —
so a single exported file shows request → batcher → router → shard →
kernel across every process on one timeline.

Format reference: the "Trace Event Format" catapult spec — required keys per
complete event are ``name``, ``ph``, ``ts``, ``dur``, ``pid``, ``tid``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = [
    "spans_to_chrome",
    "collect_traces",
    "write_chrome_trace",
]


def collect_traces(snapshots: List[Dict]) -> Dict[str, List[Dict]]:
    """Merge the trace sections of successive snapshots (later wins:
    a later snapshot carries a more complete version of the same trace)."""
    traces: Dict[str, List[Dict]] = {}
    for snapshot in snapshots:
        for tid, spans in snapshot.get("traces", {}).items():
            traces[tid] = spans
    return traces


def spans_to_chrome(
    traces: Dict[str, List[Dict]], trace_id: Optional[str] = None
) -> Dict[str, object]:
    """Convert span dicts to a catapult JSON object.

    ``trace_id`` restricts the export to one request tree; by default every
    known trace lands on the shared timeline (wall-clock timestamps keep
    them naturally ordered).
    """
    selected = (
        {trace_id: traces[trace_id]} if trace_id is not None else traces
    )
    events: List[Dict[str, object]] = []
    pids = set()
    for tid, spans in selected.items():
        for span in spans:
            pid = int(span.get("pid", 0))
            pids.add(pid)
            name = str(span.get("name", "?"))
            args: Dict[str, object] = {
                "trace": tid,
                "span": span.get("span"),
            }
            if span.get("parent"):
                args["parent"] = span["parent"]
            args.update(span.get("attrs") or {})
            events.append(
                {
                    "name": name,
                    "cat": "kernel" if name.startswith("kernel.") else "stage",
                    "ph": "X",
                    "ts": float(span.get("start", 0.0)) * 1e6,
                    "dur": max(float(span.get("duration", 0.0)), 0.0) * 1e6,
                    "pid": pid,
                    "tid": pid,
                    "args": args,
                }
            )
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, traces: Dict[str, List[Dict]], trace_id: Optional[str] = None
) -> int:
    """Write the catapult JSON file; returns the number of events."""
    doc = spans_to_chrome(traces, trace_id)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)
    return len(doc["traceEvents"])
