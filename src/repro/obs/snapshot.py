"""Structured JSON snapshot emission and reading.

A snapshot is one JSON object — wall-clock timestamp, full metrics-registry
dump (totals, counters, gauges, histogram quantiles) and the most recent
trace trees — appended as one line to a JSONL file.  The serve/cluster loops
emit them periodically (and once at shutdown); the ``repro.obs`` CLI reads
them back for ``dump`` / ``watch`` / ``trace``.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, active_metrics
from repro.obs.trace import Tracer, get_tracer

__all__ = [
    "DEFAULT_SNAPSHOT_PATH",
    "SnapshotEmitter",
    "read_snapshots",
    "latest_snapshot",
]

DEFAULT_SNAPSHOT_PATH = os.path.join("results", "obs", "telemetry.jsonl")


def _jsonable(value):
    """Best-effort coercion of attr values (numpy scalars, tuples) to JSON."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item):
        try:
            return value.item()
        except Exception:  # pragma: no cover - exotic array attr
            return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class SnapshotEmitter:
    """Appends registry + trace snapshots to a JSONL file.

    ``interval`` > 0 starts a daemon thread emitting every ``interval``
    seconds between :meth:`start` and :meth:`stop`; :meth:`stop` (and the
    context-manager exit) always emits one final snapshot, so even a short
    run leaves a complete record behind.

    :meth:`start` also registers an ``atexit`` final emit: a CLI run that
    crashes (or returns without reaching its ``stop()``) still flushes one
    complete snapshot instead of leaving an empty or partial obs file.  A
    clean :meth:`stop` unregisters it, so nothing double-emits.
    """

    def __init__(
        self,
        path: str = DEFAULT_SNAPSHOT_PATH,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        interval: float = 0.0,
        max_traces: int = 16,
    ) -> None:
        self.path = path
        self.interval = float(interval)
        self.max_traces = int(max_traces)
        self._registry = registry
        self._tracer = tracer
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._atexit_registered = False
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else active_metrics()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def snapshot(self, extra: Optional[Dict] = None) -> Dict:
        payload = {
            "time": time.time(),
            "pid": os.getpid(),
            "metrics": self.registry.snapshot(),
            "traces": {
                tid: [_jsonable(s) for s in spans]
                for tid, spans in self.tracer.export_traces(self.max_traces).items()
            },
        }
        if extra:
            payload.update(_jsonable(extra))
        return payload

    def emit(self, extra: Optional[Dict] = None) -> Dict:
        """Append one snapshot line; returns the emitted payload."""
        payload = self.snapshot(extra)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(_jsonable(payload)) + "\n")
        return payload

    # ------------------------------------------------------------------ #
    # Periodic emission
    # ------------------------------------------------------------------ #
    def start(self) -> "SnapshotEmitter":
        if not self._atexit_registered:
            atexit.register(self._atexit_emit)
            self._atexit_registered = True
        if self.interval > 0 and self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(target=self._loop, daemon=True)
            self._thread.start()
        return self

    def _atexit_emit(self) -> None:
        """Final-chance flush for runs that never reach :meth:`stop`."""
        try:
            self.emit({"final": True, "atexit": True})
        except Exception:  # pragma: no cover - interpreter is shutting down
            pass

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.emit()
            except Exception:  # pragma: no cover - emission must not kill serving
                pass

    def stop(self, extra: Optional[Dict] = None) -> None:
        """Stop the periodic thread (if any) and emit a final snapshot."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        if self._atexit_registered:
            atexit.unregister(self._atexit_emit)
            self._atexit_registered = False
        self.emit(extra)

    def __enter__(self) -> "SnapshotEmitter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def read_snapshots(path: str) -> List[Dict]:
    """All snapshots in a JSONL file (corrupt/torn lines skipped).

    A watcher polling while the emitter is mid-write sees a truncated last
    line (no trailing newline yet, possibly split inside a multi-byte
    character) — both parse failures are skipped, never raised, so
    ``repro.obs watch`` keeps polling instead of dying on a torn read.
    """
    snapshots: List[Dict] = []
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    snapshots.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no telemetry snapshots at {path!r}; run a serve loop with "
            "--telemetry (or point --path at its --obs-path)"
        )
    return snapshots


def latest_snapshot(path: str) -> Dict:
    """The most recent snapshot in a JSONL file."""
    snapshots = read_snapshots(path)
    if not snapshots:
        raise ValueError(f"{path!r} holds no readable snapshots")
    return snapshots[-1]
