"""Command-line entry point: ``python -m repro.obs <command>``.

Examples
--------
Dump the latest telemetry snapshot emitted by a serve loop::

    python -m repro.obs dump --path results/obs/telemetry.jsonl

Poll the snapshot file and print metric deltas as they land::

    python -m repro.obs watch --interval 2

Render one request's stitched cross-process trace tree::

    python -m repro.obs trace 1a2b-3f --path results/obs/telemetry.jsonl
    python -m repro.obs trace --last
    python -m repro.obs trace --best

Rank the hottest kernels recorded by the profiler (``--profile`` runs)::

    python -m repro.obs top --limit 15

Export every stitched timeline as a Chrome trace (load in
``chrome://tracing`` or https://ui.perfetto.dev)::

    python -m repro.obs export --chrome --out results/obs/timeline.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.obs.chrome import collect_traces, write_chrome_trace
from repro.obs.profile import format_top
from repro.obs.snapshot import (
    DEFAULT_SNAPSHOT_PATH,
    latest_snapshot,
    read_snapshots,
)
from repro.obs.trace import render_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect telemetry snapshots emitted by the serving loops.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--path",
        default=DEFAULT_SNAPSHOT_PATH,
        help=f"snapshot JSONL file (default: {DEFAULT_SNAPSHOT_PATH})",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "dump", parents=[common], help="print the latest snapshot's metrics"
    )

    watch = commands.add_parser(
        "watch", parents=[common], help="poll the snapshot file, print deltas"
    )
    watch.add_argument("--interval", type=float, default=2.0)
    watch.add_argument(
        "--count",
        type=int,
        default=0,
        help="stop after this many polls (0 = run until interrupted)",
    )

    trace = commands.add_parser(
        "trace", parents=[common], help="render one trace tree"
    )
    trace.add_argument("trace_id", nargs="?", default=None)
    trace.add_argument(
        "--last", action="store_true", help="render the most recent trace"
    )
    trace.add_argument(
        "--best",
        action="store_true",
        help="render the trace with the most spans (the richest request)",
    )

    top = commands.add_parser(
        "top", parents=[common], help="hottest kernels from the profiler"
    )
    top.add_argument("--limit", type=int, default=20)

    export = commands.add_parser(
        "export", parents=[common], help="export stitched traces"
    )
    export.add_argument(
        "--chrome",
        action="store_true",
        help="catapult JSON for chrome://tracing / Perfetto (the only format)",
    )
    export.add_argument("--out", default="results/obs/timeline.json")
    export.add_argument(
        "--trace", dest="trace_id", default=None, help="restrict to one trace id"
    )
    return parser


def _format_metrics(metrics: Dict) -> List[str]:
    lines: List[str] = []
    totals = metrics.get("totals", {})
    if totals:
        lines.append("totals:")
        for name in sorted(totals):
            lines.append(f"  {name} = {totals[name]:g}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            if not h.get("count"):
                continue
            lines.append(
                f"  {name}: n={h['count']} mean={h['mean'] * 1e3:.3f}ms "
                f"p50={h['p50'] * 1e3:.3f}ms p90={h['p90'] * 1e3:.3f}ms "
                f"p99={h['p99'] * 1e3:.3f}ms max={h['max'] * 1e3:.3f}ms"
            )
    collectors = metrics.get("collectors", {})
    for name in sorted(collectors):
        lines.append(f"collector {name}: {collectors[name]}")
    return lines


def cmd_dump(args) -> int:
    snapshot = latest_snapshot(args.path)
    stamp = time.strftime("%H:%M:%S", time.localtime(snapshot.get("time", 0)))
    print(f"snapshot @ {stamp} (pid {snapshot.get('pid', '?')})")
    for line in _format_metrics(snapshot.get("metrics", {})):
        print(line)
    traces = snapshot.get("traces", {})
    if traces:
        print(f"traces: {len(traces)} recorded — {', '.join(list(traces)[-8:])}")
    return 0


def cmd_watch(args) -> int:
    seen = 0
    polls = 0
    last_totals: Dict[str, float] = {}
    while True:
        try:
            snapshots = read_snapshots(args.path)
        except FileNotFoundError:
            snapshots = []
        if len(snapshots) > seen:
            snapshot = snapshots[-1]
            seen = len(snapshots)
            totals = snapshot.get("metrics", {}).get("totals", {})
            stamp = time.strftime("%H:%M:%S", time.localtime(snapshot.get("time", 0)))
            deltas = [
                f"{name} +{totals[name] - last_totals.get(name, 0):g}"
                for name in sorted(totals)
                if totals[name] != last_totals.get(name, 0)
            ]
            print(f"[{stamp}] " + ("; ".join(deltas) if deltas else "(no change)"))
            last_totals = dict(totals)
        polls += 1
        if args.count and polls >= args.count:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


def cmd_trace(args) -> int:
    snapshots = read_snapshots(args.path)
    # Later snapshots may carry more complete versions of the same trace.
    traces: Dict[str, List[Dict]] = {}
    for snapshot in snapshots:
        for tid, spans in snapshot.get("traces", {}).items():
            traces[tid] = spans
    if not traces:
        print("no traces recorded (was tracing enabled? --telemetry)")
        return 1
    trace_id: Optional[str] = args.trace_id
    if args.best:
        trace_id = max(traces, key=lambda tid: len(traces[tid]))
    elif args.last or trace_id is None:
        trace_id = list(traces)[-1]
    if trace_id not in traces:
        prefixed = [tid for tid in traces if tid.startswith(trace_id)]
        if len(prefixed) == 1:
            trace_id = prefixed[0]
        else:
            print(f"unknown trace {trace_id!r}; known: {', '.join(traces)}")
            return 1
    spans = traces[trace_id]
    pids = sorted({s["pid"] for s in spans})
    print(f"trace {trace_id}: {len(spans)} spans across pids {pids}")
    print(render_trace(spans))
    return 0


def cmd_top(args) -> int:
    snapshot = latest_snapshot(args.path)
    profile = (
        snapshot.get("metrics", {}).get("collectors", {}).get("profile.kernels", {})
    )
    ops = profile.get("ops", {})
    if not ops:
        print("no kernel samples recorded (was profiling enabled? --profile)")
        return 1
    stamp = time.strftime("%H:%M:%S", time.localtime(snapshot.get("time", 0)))
    print(f"hottest kernels @ {stamp} (pid {snapshot.get('pid', '?')})")
    print(format_top(ops, profile.get("memory") or None, limit=args.limit))
    return 0


def cmd_export(args) -> int:
    traces = collect_traces(read_snapshots(args.path))
    if not traces:
        print("no traces recorded (was tracing enabled? --telemetry)")
        return 1
    trace_id = args.trace_id
    if trace_id is not None and trace_id not in traces:
        prefixed = [tid for tid in traces if tid.startswith(trace_id)]
        if len(prefixed) != 1:
            print(f"unknown trace {trace_id!r}; known: {', '.join(traces)}")
            return 1
        trace_id = prefixed[0]
    count = write_chrome_trace(args.out, traces, trace_id)
    scope = trace_id if trace_id else f"{len(traces)} traces"
    print(f"wrote {count} chrome-trace events ({scope}) to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "dump":
            return cmd_dump(args)
        if args.command == "watch":
            return cmd_watch(args)
        if args.command == "top":
            return cmd_top(args)
        if args.command == "export":
            return cmd_export(args)
        return cmd_trace(args)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
