"""Serving-time SLO checks: turn measured latency distributions into CI gates.

``--slo p99=50`` (milliseconds) on the serving CLIs parses through
:func:`parse_slo` and evaluates through :func:`check_slo` against the
request-latency histogram the bench loop fills — a violated objective turns
the run's exit code to 1, which is all a CI job needs to fail a regression.

Objectives can also target *named* histograms:
``--slo p99:cluster.cli.latency=50,p99:worker.compute=20`` gates any
histogram the run recorded (resolved by bare metric name across label sets,
including distributions merged router-side from shard workers).  The bare
``p99=50`` form keeps meaning "the CLI's own request-latency histogram".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    active_metrics,
    merge_histogram_states,
)

__all__ = ["parse_slo", "check_slo", "format_slo", "resolve_slo_histograms"]

_QUANTILES = {"p50": 0.50, "p90": 0.90, "p99": 0.99}


def parse_slo(text: str) -> Dict[str, float]:
    """Parse ``"p99=50"`` / ``"p50=10,p99:worker.compute=20"`` (ms) to seconds.

    Each clause is ``quantile[:histogram_name]=millis``.  A bare quantile
    targets the CLI's own latency histogram (backward-compatible form); a
    ``quantile:name`` key targets the named histogram.  Raises ``ValueError``
    on unknown quantile names or non-positive bounds, so a typo fails the
    CLI at argument-parsing time, not after the run.
    """
    objectives: Dict[str, float] = {}
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        key, _, bound = clause.partition("=")
        key = key.strip()
        quantile, _, target = key.partition(":")
        quantile = quantile.strip().lower()
        target = target.strip()
        if quantile not in _QUANTILES:
            raise ValueError(
                f"unknown SLO quantile {quantile!r} "
                f"(supported: {', '.join(sorted(_QUANTILES))})"
            )
        try:
            millis = float(bound)
        except ValueError:
            raise ValueError(f"SLO bound {bound!r} is not a number") from None
        if millis <= 0:
            raise ValueError(f"SLO bound for {key} must be positive")
        objectives[f"{quantile}:{target}" if target else quantile] = millis / 1e3
    if not objectives:
        raise ValueError("empty SLO specification")
    return objectives


def _split_key(key: str):
    quantile, _, target = key.partition(":")
    return quantile, (target or None)


def resolve_slo_histograms(
    objectives: Dict[str, float],
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Histogram]:
    """Look up each named objective's histogram in ``registry``.

    Multiple label sets under the same bare name (per-shard workers, several
    engine instances) merge into one distribution — the quantile is then
    over the union of observations, which is the only correct aggregation.
    """
    registry = registry or active_metrics()
    wanted = {
        target for key in objectives for _, target in [_split_key(key)] if target
    }
    if not wanted:
        return {}
    states: Dict[str, List] = {}
    for metric in registry.metrics():
        if metric.kind == "histogram" and metric.name in wanted:
            states.setdefault(metric.name, []).append(metric)
    return {
        name: merge_histogram_states(group)
        for name, group in states.items()
        if group
    }


def check_slo(
    latency: Union[Histogram, Dict, None],
    objectives: Dict[str, float],
    histograms: Optional[Dict[str, Union[Histogram, Dict]]] = None,
) -> List[str]:
    """Violation messages (empty = pass) for ``objectives``.

    ``latency`` answers the bare-quantile objectives (a live
    :class:`Histogram` or its ``snapshot()`` dict); ``histograms`` maps bare
    metric names to distributions for the ``quantile:name`` objectives.  A
    named objective with no recorded data is itself a violation — a gate
    that silently passes because the metric vanished is worse than a typo.
    """
    violations: List[str] = []
    for key in sorted(objectives):
        bound = objectives[key]
        quantile, target = _split_key(key)
        if target is None:
            source: Union[Histogram, Dict, None] = latency
        else:
            source = (histograms or {}).get(target)
        if source is None:
            violations.append(f"{key}: no histogram data recorded")
            continue
        if isinstance(source, Histogram):
            measured = source.quantile(_QUANTILES[quantile])
        else:
            measured = float(source.get(quantile, 0.0))
        if measured > bound:
            violations.append(
                f"{key} {measured * 1e3:.2f}ms exceeds SLO {bound * 1e3:.2f}ms"
            )
    return violations


def format_slo(objectives: Dict[str, float]) -> str:
    return ", ".join(
        f"{key}≤{objectives[key] * 1e3:g}ms" for key in sorted(objectives)
    )
