"""Serving-time SLO checks: turn measured latency distributions into CI gates.

``--slo p99=50`` (milliseconds) on the serving CLIs parses through
:func:`parse_slo` and evaluates through :func:`check_slo` against the
request-latency histogram the bench loop fills — a violated objective turns
the run's exit code to 1, which is all a CI job needs to fail a regression.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.obs.metrics import Histogram

__all__ = ["parse_slo", "check_slo", "format_slo"]

_QUANTILES = {"p50": 0.50, "p90": 0.90, "p99": 0.99}


def parse_slo(text: str) -> Dict[str, float]:
    """Parse ``"p99=50"`` / ``"p50=10,p99=50"`` (milliseconds) to seconds.

    Raises ``ValueError`` on unknown quantile names or non-positive bounds,
    so a typo fails the CLI at argument-parsing time, not after the run.
    """
    objectives: Dict[str, float] = {}
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        name, _, bound = clause.partition("=")
        name = name.strip().lower()
        if name not in _QUANTILES:
            raise ValueError(
                f"unknown SLO quantile {name!r} "
                f"(supported: {', '.join(sorted(_QUANTILES))})"
            )
        try:
            millis = float(bound)
        except ValueError:
            raise ValueError(f"SLO bound {bound!r} is not a number") from None
        if millis <= 0:
            raise ValueError(f"SLO bound for {name} must be positive")
        objectives[name] = millis / 1e3
    if not objectives:
        raise ValueError("empty SLO specification")
    return objectives


def check_slo(
    latency: Union[Histogram, Dict], objectives: Dict[str, float]
) -> List[str]:
    """Violation messages (empty = pass) for ``objectives`` against
    ``latency`` — a live :class:`Histogram` or its ``snapshot()`` dict."""
    violations: List[str] = []
    for name in sorted(objectives):
        bound = objectives[name]
        if isinstance(latency, Histogram):
            measured = latency.quantile(_QUANTILES[name])
        else:
            measured = float(latency.get(name, 0.0))
        if measured > bound:
            violations.append(
                f"{name} {measured * 1e3:.2f}ms exceeds SLO {bound * 1e3:.2f}ms"
            )
    return violations


def format_slo(objectives: Dict[str, float]) -> str:
    return ", ".join(
        f"{name}≤{objectives[name] * 1e3:g}ms" for name in sorted(objectives)
    )
