"""Process-wide metrics registry: counters, gauges, log-bucket histograms.

Every stats surface in the repo used to be an ad-hoc dataclass of ints
(``BatcherStats``, ``LogitCacheStats``, ``ClusterStats``, …) with no shared
way to snapshot, aggregate or export them.  This module is the one registry
they all hang off now:

* :class:`Counter` / :class:`Gauge` — thread-safe scalar metrics;
* :class:`Histogram` — streaming latency distributions over **fixed
  log-spaced buckets** with p50/p90/p99 quantile estimation by geometric
  interpolation inside the bracketing bucket (dependency-free, O(buckets)
  memory regardless of observation count);
* :class:`MetricsRegistry` — get-or-create metrics keyed by
  ``(name, labels)``; per-component instances disambiguate through an
  ``instance`` label so two engines in one process never share counters,
  while :meth:`MetricsRegistry.totals` re-aggregates by bare name for
  dashboards and CI assertions;
* **collectors** — read-only callbacks (e.g. the autodiff tape's hot-path
  ``GraphStats``, which must stay a lock-free slots object) contribute to
  snapshots without paying registry costs per increment.

The active registry is dynamically scoped through a
:class:`contextvars.ContextVar` — mirroring the compute-backend registry —
and defaults to one process-global instance, so library code simply calls
:func:`active_metrics` at construction time.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import math
import threading
from bisect import bisect_right
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_metrics",
    "global_metrics",
    "use_metrics",
    "register_collector",
    "merge_histogram_states",
    "next_instance",
]

_INSTANCE_IDS = itertools.count(1)


def next_instance() -> int:
    """Process-unique instance id for per-component metric labels."""
    return next(_INSTANCE_IDS)


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _qualified(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic thread-safe counter."""

    __slots__ = ("name", "labels", "_value", "_lock")
    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {_qualified(self.name, self.labels)}={self._value}>"


class Gauge:
    """Last-value-wins thread-safe gauge."""

    __slots__ = ("name", "labels", "_value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {_qualified(self.name, self.labels)}={self._value}>"


DEFAULT_LO = 1e-6
"""Smallest resolved histogram value (1 µs for latency histograms)."""

DEFAULT_HI = 60.0
"""Largest resolved histogram value (observations above land in overflow)."""

DEFAULT_PER_DECADE = 16
"""Buckets per decade: growth 10^(1/16) ≈ 1.155, so any quantile estimate
is within ~±16% of the true order statistic by construction."""


def log_bucket_bounds(lo: float, hi: float, per_decade: int) -> List[float]:
    """Upper bounds of log-spaced buckets covering ``[lo, hi]``."""
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade <= 0:
        raise ValueError("per_decade must be positive")
    count = int(math.ceil(math.log10(hi / lo) * per_decade)) + 1
    growth = 10.0 ** (1.0 / per_decade)
    return [lo * growth**i for i in range(count)]


class Histogram:
    """Streaming distribution over fixed log-spaced buckets.

    ``observe`` is O(log buckets) (one bisect under a lock); quantiles are
    estimated by locating the bracketing bucket from cumulative counts and
    interpolating **geometrically** between its edges (log-spaced buckets
    make geometric interpolation the unbiased choice).  Values below the
    first bound fall in a linearly-interpolated underflow bucket; values
    above the last bound report the tracked maximum.
    """

    __slots__ = (
        "name",
        "labels",
        "bounds",
        "lo",
        "hi",
        "per_decade",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        per_decade: int = DEFAULT_PER_DECADE,
    ) -> None:
        self.name = name
        self.labels = labels
        self.lo = float(lo)
        self.hi = float(hi)
        self.per_decade = int(per_decade)
        self.bounds = log_bucket_bounds(lo, hi, per_decade)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_right(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values) -> None:
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) of the stream."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            lo_seen, hi_seen = self._min, self._max
        if total == 0:
            return 0.0
        rank = q * (total - 1)
        cumulative = 0
        for idx, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count > rank:
                frac = (rank - cumulative + 0.5) / bucket_count
                frac = min(max(frac, 0.0), 1.0)
                if idx == 0:
                    # Underflow bucket [0, bounds[0]): linear interpolation.
                    estimate = self.bounds[0] * frac
                elif idx == len(self.bounds):
                    # Overflow bucket: the max is the only honest answer.
                    estimate = hi_seen
                else:
                    low, high = self.bounds[idx - 1], self.bounds[idx]
                    estimate = low * (high / low) ** frac
                # Never report outside the observed range.
                return min(max(estimate, lo_seen), hi_seen)
            cumulative += bucket_count
        return hi_seen  # pragma: no cover - unreachable with count > 0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            lo_seen = self._min if self._count else 0.0
            hi_seen = self._max if self._count else 0.0
        populated = [
            [self.bounds[i] if i < len(self.bounds) else math.inf, c]
            for i, c in enumerate(counts)
            if c
        ]
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo_seen,
            "max": hi_seen,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": populated,
        }

    # ------------------------------------------------------------------ #
    # Serialisable state & cross-process merging
    # ------------------------------------------------------------------ #
    def state(self) -> Dict[str, object]:
        """Complete JSON-serialisable state: bucket config + sparse counts.

        Unlike :meth:`snapshot` (a human-facing summary), this carries the
        exact bucket indices so a receiving process can fold the
        distribution into its own histogram with :meth:`merge` — the wire
        format behind router-side cluster-wide p50/p99.
        """
        with self._lock:
            counts = [[i, c] for i, c in enumerate(self._counts) if c]
            return {
                "name": self.name,
                "lo": self.lo,
                "hi": self.hi,
                "per_decade": self.per_decade,
                "counts": counts,
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }

    @classmethod
    def from_state(
        cls, state: Dict[str, object], labels: Tuple[Tuple[str, str], ...] = ()
    ) -> "Histogram":
        """Reconstruct a histogram from :meth:`state` output."""
        hist = cls(
            str(state.get("name", "histogram")),
            labels,
            lo=float(state["lo"]),
            hi=float(state["hi"]),
            per_decade=int(state["per_decade"]),
        )
        hist.merge(state)
        return hist

    def merge(self, other: object) -> "Histogram":
        """Fold another histogram (or its :meth:`state` dict) into this one.

        Bucket configurations must match exactly — merging across different
        resolutions would silently corrupt quantiles, so it fails loudly.
        """
        state = other.state() if isinstance(other, Histogram) else dict(other)
        config = (
            float(state["lo"]),
            float(state["hi"]),
            int(state["per_decade"]),
        )
        if config != (self.lo, self.hi, self.per_decade):
            raise ValueError(
                f"histogram bucket mismatch: {config} != "
                f"{(self.lo, self.hi, self.per_decade)}"
            )
        count = int(state.get("count", 0))
        if not count:
            return self
        with self._lock:
            for idx, bucket_count in state.get("counts", []):
                idx = int(idx)
                if not 0 <= idx < len(self._counts):
                    raise ValueError(f"bucket index {idx} out of range")
                self._counts[idx] += int(bucket_count)
            self._count += count
            self._sum += float(state.get("sum", 0.0))
            other_min = state.get("min")
            other_max = state.get("max")
            if other_min is not None and float(other_min) < self._min:
                self._min = float(other_min)
            if other_max is not None and float(other_max) > self._max:
                self._max = float(other_max)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Histogram {_qualified(self.name, self.labels)} "
            f"n={self._count} p50={self.quantile(0.5):.3g}>"
        )


def merge_histogram_states(states: Iterable) -> Optional[Histogram]:
    """Merge histograms/state-dicts into one fresh :class:`Histogram`.

    Returns ``None`` for an empty input.  This is the router-side
    aggregation primitive: each shard ships ``Histogram.state()`` dicts in
    its stats snapshot and the cluster-wide distribution falls out here.
    """
    merged: Optional[Histogram] = None
    for state in states:
        if isinstance(state, Histogram):
            state = state.state()
        if merged is None:
            merged = Histogram.from_state(state)
        else:
            merged.merge(state)
    return merged


# ---------------------------------------------------------------------- #
# Collectors: read-only snapshot contributors (hot-path stats objects)
# ---------------------------------------------------------------------- #
_COLLECTORS: Dict[str, Callable[[], Dict[str, object]]] = {}
_COLLECTORS_LOCK = threading.Lock()


def register_collector(
    name: str, collect: Callable[[], Dict[str, object]], overwrite: bool = True
) -> None:
    """Register a callback contributing ``{key: value}`` to every snapshot.

    Collectors exist for stats that must stay off the registry's locks —
    e.g. the autodiff tape counters incremented once per recorded graph
    node.  Re-registering under the same name replaces the callback (module
    reloads in tests), unless ``overwrite=False``.
    """
    with _COLLECTORS_LOCK:
        if not overwrite and name in _COLLECTORS:
            raise ValueError(f"collector {name!r} is already registered")
        _COLLECTORS[name] = collect


def _collect_all() -> Dict[str, Dict[str, object]]:
    with _COLLECTORS_LOCK:
        items = list(_COLLECTORS.items())
    out: Dict[str, Dict[str, object]] = {}
    for name, collect in items:
        try:
            out[name] = dict(collect())
        except Exception as error:  # pragma: no cover - defensive snapshot
            out[name] = {"error": f"{type(error).__name__}: {error}"}
    return out


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
class MetricsRegistry:
    """Get-or-create store of metrics keyed by ``(name, labels)``."""

    def __init__(self, name: str = "metrics") -> None:
        self.name = name
        self._metrics: Dict[Tuple[str, str, Tuple[Tuple[str, str], ...]], object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, kind: str, name: str, labels: Dict, factory) -> object:
        key = (kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[2])
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        per_decade: int = DEFAULT_PER_DECADE,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            "histogram",
            name,
            labels,
            lambda n, lb: Histogram(n, lb, lo=lo, hi=hi, per_decade=per_decade),
        )

    def metrics(self) -> List[object]:
        with self._lock:
            return list(self._metrics.values())

    def totals(self) -> Dict[str, float]:
        """Counters and gauges summed by bare name across label sets."""
        out: Dict[str, float] = {}
        for metric in self.metrics():
            if metric.kind in ("counter", "gauge"):
                out[metric.name] = out.get(metric.name, 0) + metric.value
        return out

    def snapshot(self) -> Dict[str, object]:
        """Structured JSON-serialisable snapshot of every metric."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, object]] = {}
        for metric in self.metrics():
            qualified = _qualified(metric.name, metric.labels)
            if metric.kind == "counter":
                counters[qualified] = metric.snapshot()
            elif metric.kind == "gauge":
                gauges[qualified] = metric.snapshot()
            else:
                histograms[qualified] = metric.snapshot()
        return {
            "registry": self.name,
            "totals": self.totals(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "collectors": _collect_all(),
        }


_GLOBAL = MetricsRegistry("global")

_ACTIVE: contextvars.ContextVar[Optional[MetricsRegistry]] = contextvars.ContextVar(
    "repro_metrics_registry", default=None
)


def global_metrics() -> MetricsRegistry:
    """The process-global default registry."""
    return _GLOBAL


def active_metrics() -> MetricsRegistry:
    """The registry of the current context (defaults to the global one)."""
    return _ACTIVE.get() or _GLOBAL


@contextlib.contextmanager
def use_metrics(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the active metrics registry (``None`` = global).

    Mirrors :func:`repro.sparse.backend.use_backend`: dynamically scoped so
    parallel runners and tests can isolate their metrics without touching
    each other's counters.
    """
    token = _ACTIVE.set(registry)
    try:
        yield registry or _GLOBAL
    finally:
        _ACTIVE.reset(token)
