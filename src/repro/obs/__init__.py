"""End-to-end telemetry: metrics registry, request tracing, SLO surfaces.

The serving system's paper-level metrics (latency percentiles, staleness,
cache behaviour) become *operational* here:

* :mod:`repro.obs.metrics` — process-wide registry of counters, gauges and
  log-bucket histograms with streaming p50/p90/p99, contextvar-scoped like
  the compute-backend registry.  Every legacy stats surface
  (``BatcherStats``, ``LogitCacheStats``, ``ClusterStats``,
  ``OperatorCacheStats``, ``CacheStats``, the autodiff tape's
  ``GraphStats``) is now a thin view over it;
* :mod:`repro.obs.trace` — request-scoped spans that propagate from
  ``RequestBatcher.submit`` through the engine and the shard router's
  worker command pipes into child processes and stitch back into one trace
  tree, with queue-wait, IPC and compute time separated.  Disabled by
  default and near-free when off (``REPRO_TELEMETRY=1`` or
  :func:`set_tracing` turns it on);
* :mod:`repro.obs.timer` — the unified re-entrant Timer (context manager +
  decorator), superseding ``repro.utils.timing``;
* :mod:`repro.obs.snapshot` — structured JSON snapshot emission consumed by
  the ``python -m repro.obs`` CLI (``dump`` / ``watch`` / ``trace <id>``)
  and the serving benchmark's ``--slo`` pass/fail check.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    global_metrics,
    next_instance,
    register_collector,
    use_metrics,
)
from repro.obs.snapshot import (
    DEFAULT_SNAPSHOT_PATH,
    SnapshotEmitter,
    latest_snapshot,
    read_snapshots,
)
from repro.obs.chrome import collect_traces, spans_to_chrome, write_chrome_trace
from repro.obs.profile import (
    KernelProfiler,
    active_profiler,
    estimate_flops_bytes,
    format_top,
    global_profiler,
    profiling_enabled,
    set_profiling,
    use_profiler,
    use_profiling,
)
from repro.obs.slo import check_slo, format_slo, parse_slo
from repro.obs.timer import Timer
from repro.obs.trace import (
    Span,
    SpanContext,
    Tracer,
    adopt,
    current_context,
    get_tracer,
    render_trace,
    set_tracing,
    span,
    start_trace,
    tracing_enabled,
    use_tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_metrics",
    "global_metrics",
    "next_instance",
    "register_collector",
    "use_metrics",
    "DEFAULT_SNAPSHOT_PATH",
    "SnapshotEmitter",
    "latest_snapshot",
    "read_snapshots",
    "check_slo",
    "format_slo",
    "parse_slo",
    "KernelProfiler",
    "active_profiler",
    "estimate_flops_bytes",
    "format_top",
    "global_profiler",
    "profiling_enabled",
    "set_profiling",
    "use_profiler",
    "use_profiling",
    "collect_traces",
    "spans_to_chrome",
    "write_chrome_trace",
    "Timer",
    "Span",
    "SpanContext",
    "Tracer",
    "adopt",
    "current_context",
    "get_tracer",
    "render_trace",
    "set_tracing",
    "span",
    "start_trace",
    "tracing_enabled",
    "use_tracing",
]
