"""The unified timer: context manager, decorator, re-entrant and nestable.

Folds the old :class:`repro.utils.timing.Timer` (re-exported from there for
backward compatibility) into the telemetry layer: a Timer can feed a named
registry histogram and/or open a trace span per timed section, so ad-hoc
``time.perf_counter()`` bookkeeping and the span/metrics APIs are one thing.
"""

from __future__ import annotations

import functools
import time
from typing import List, Optional

from repro.obs.metrics import Histogram, active_metrics
from repro.obs.trace import span as obs_span

__all__ = ["Timer"]


class Timer:
    """Wall-clock timer usable as a context manager and as a decorator.

    Re-entrant and nestable: each ``with timer:`` pushes its own start, so
    one instance can time recursive or overlapping sections.  ``elapsed`` is
    the most recently completed section (the historical API); ``total`` and
    ``count`` accumulate across sections.

    ``histogram`` names a latency histogram in the active metrics registry
    (resolved lazily, one observation per section); ``trace=True``
    additionally opens a span named after ``label`` per section.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    def __init__(
        self,
        label: str = "",
        histogram: Optional[str] = None,
        trace: bool = False,
    ) -> None:
        self.label = label
        self.elapsed: float = 0.0
        self.total: float = 0.0
        self.count: int = 0
        self._starts: List[float] = []
        self._spans: List[object] = []
        self._histogram_name = histogram
        self._histogram: Optional[Histogram] = None
        self._trace = trace

    # Kept for compatibility with the historical single-shot Timer.
    @property
    def _start(self) -> Optional[float]:
        return self._starts[-1] if self._starts else None

    def __enter__(self) -> "Timer":
        if self._trace:
            self._spans.append(obs_span(self.label or "timer"))
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._starts:
            return
        self.elapsed = time.perf_counter() - self._starts.pop()
        self.total += self.elapsed
        self.count += 1
        if self._histogram_name is not None:
            if self._histogram is None:
                self._histogram = active_metrics().histogram(self._histogram_name)
            self._histogram.observe(self.elapsed)
        if self._spans:
            self._spans.pop().finish()

    def __call__(self, fn):
        """Decorator form: every call of ``fn`` is one timed section."""

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self:
                return fn(*args, **kwargs)

        return wrapper

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f"{self.label}: " if self.label else ""
        return f"<Timer {label}{self.elapsed:.4f}s>"
