"""Reproduction of the paper's figures (4, 5, 6, 7) as numeric series.

Figures are reproduced as the data series that back them (no plotting
dependency is available offline); each experiment returns the rows that would
be plotted, which the benchmark harness prints.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.baselines import run_vanilla
from repro.core.config import MethodSettings
from repro.core.perturbation import privacy_aware_perturbation
from repro.core.pipeline import run_all_methods
from repro.core.results import MethodRun, evaluate_method
from repro.datasets import load_dataset
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.experiments.reporting import ExperimentResult
from repro.experiments.tables import table4_ppfr_effectiveness
from repro.fairness.inform import inform_regularizer
from repro.fairness.reweighting import compute_fairness_weights
from repro.gnn.models import build_model
from repro.gnn.trainer import Trainer
from repro.graphs.similarity import jaccard_similarity
from repro.privacy.attacks.link_stealing import LinkStealingAttack

PresetLike = Union[str, ExperimentPreset]


def _resolve(preset: PresetLike) -> ExperimentPreset:
    return get_preset(preset) if isinstance(preset, str) else preset


def figure4_attack_auc(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Figure 4: per-distance attack AUC before and after fairness regularisation.

    Expected shape: for most distances and every dataset, the AUC of the
    regularised (fairer) model is at least that of the vanilla model.
    """
    preset = _resolve(preset)
    datasets = list(datasets or preset.strong_homophily_datasets)
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, seed=seed, scale=preset.dataset_scale)
        settings = preset.method_settings(dataset, seed=seed)
        outcome = run_all_methods(
            graph, "gcn", settings, methods=["reg"], hidden_features=preset.hidden_features
        )
        for method in ("vanilla", "reg"):
            evaluation = outcome["evaluations"][method]
            row = {"dataset": dataset, "method": method}
            row.update(
                {f"auc_{metric}": value for metric, value in evaluation.attack.auc_per_metric.items()}
            )
            row["auc_mean"] = evaluation.attack.mean_auc
            rows.append(row)
    return ExperimentResult("figure4_attack_auc", rows, {"preset": preset.name})


def _accuracy_cost_rows(result, models: Sequence[str]) -> list:
    rows = []
    for row in result.rows:
        if row["model"] in models:
            rows.append(
                {
                    "dataset": row["dataset"],
                    "model": row["model"],
                    "method": row["method"],
                    "delta_accuracy_percent": row["delta_accuracy_percent"],
                }
            )
    return rows


def figure5_accuracy_cost(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Figure 5: accuracy cost (ΔAcc %) of each method on GCN and GAT.

    Expected shape: DPReg pays the largest accuracy cost; Reg and PPFR stay
    within a few percent of vanilla accuracy.
    """
    preset = _resolve(preset)
    models = [m for m in ("gcn", "gat") if m in preset.models] or ["gcn"]
    table4 = table4_ppfr_effectiveness(preset, seed=seed, datasets=datasets, models=models)
    rows = _accuracy_cost_rows(table4, models)
    return ExperimentResult("figure5_accuracy_cost", rows, {"preset": preset.name})


def figure7_graphsage_cost(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Figure 7: accuracy cost of each method on GraphSAGE.

    Expected shape: the sampling aggregation makes edge DP both less harmful
    to accuracy and less effective at reducing risk than on GCN/GAT.
    """
    preset = _resolve(preset)
    table4 = table4_ppfr_effectiveness(
        preset, seed=seed, datasets=datasets, models=["graphsage"]
    )
    rows = _accuracy_cost_rows(table4, ["graphsage"])
    return ExperimentResult("figure7_graphsage_cost", rows, {"preset": preset.name})


def figure6_ablation(
    preset: PresetLike = "quick",
    seed: int = 0,
    dataset: str = "cora",
    model_name: Optional[str] = None,
    epoch_fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.3),
    gammas: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
) -> ExperimentResult:
    """Figure 6: PPFR ablations on one (dataset, model) cell.

    Three panels, reproduced as three row groups (the ``panel`` column):

    * ``fr_epochs``  — FR-only fine-tuning with zero perturbation, sweeping the
      fine-tuning epoch budget (left panel: fairness improves, risk creeps up).
    * ``pp_gamma``   — PP + fixed FR, sweeping the perturbation ratio γ
      (middle panel: risk and accuracy both fall as γ grows).
    * ``ppfr_epochs`` — fixed PP + FR, sweeping the epoch budget (right panel:
      risk stays near the vanilla level while bias falls).
    """
    preset = _resolve(preset)
    model_name = model_name or ("gat" if "gat" in preset.models else preset.models[0])
    graph = load_dataset(dataset, seed=seed, scale=preset.dataset_scale)
    settings = preset.method_settings(dataset, seed=seed)
    similarity = jaccard_similarity(graph.adjacency)
    attack = LinkStealingAttack(seed=settings.attack_seed)

    # Phase one: a single vanilla model shared by every ablation arm.
    base_model = build_model(
        model_name,
        in_features=graph.num_features,
        num_classes=graph.num_classes,
        hidden_features=preset.hidden_features,
        rng=settings.model_seed,
    )
    trainer = Trainer(base_model, settings.train)
    trainer.fit(graph)
    base_state = base_model.state_dict()

    weights = compute_fairness_weights(
        base_model, graph, config=settings.ppfr.reweighting
    )
    fixed_perturbation = privacy_aware_perturbation(
        base_model, graph, gamma=settings.ppfr.gamma, rng=settings.ppfr.seed
    )

    def evaluate(tag: str, serving_adjacency: np.ndarray, **extras) -> Dict:
        run = MethodRun(
            method=tag, model=base_model, graph=graph, serving_adjacency=serving_adjacency
        )
        evaluation = evaluate_method(
            run, model_name=model_name, similarity=similarity, attack=attack
        )
        row = {
            "panel": tag,
            "accuracy": evaluation.accuracy,
            "bias": evaluation.bias,
            "risk_auc": evaluation.risk_auc,
        }
        row.update(extras)
        return row

    rows = [evaluate("vanilla", graph.adjacency, sweep_value=0.0)]

    # Panel 1: FR only, sweep the number of fine-tuning epochs.
    for fraction in epoch_fractions:
        base_model.load_state_dict(base_state)
        epochs = max(1, int(round(fraction * settings.train.epochs)))
        trainer.fine_tune(
            graph,
            epochs=epochs,
            sample_weights=weights.loss_multipliers,
            learning_rate_scale=settings.ppfr.fine_tune_lr_scale,
        )
        rows.append(evaluate("fr_epochs", graph.adjacency, sweep_value=float(epochs)))

    # Panel 2: PP + fixed FR, sweep the perturbation ratio γ.
    fixed_epochs = settings.ppfr.fine_tune_epochs(settings.train.epochs)
    for gamma in gammas:
        base_model.load_state_dict(base_state)
        perturbation = privacy_aware_perturbation(
            base_model, graph, gamma=gamma, rng=settings.ppfr.seed
        )
        trainer.fine_tune(
            graph,
            epochs=fixed_epochs,
            sample_weights=weights.loss_multipliers,
            adjacency_override=perturbation.perturbed_adjacency,
            learning_rate_scale=settings.ppfr.fine_tune_lr_scale,
        )
        rows.append(
            evaluate("pp_gamma", perturbation.perturbed_adjacency, sweep_value=float(gamma))
        )

    # Panel 3: fixed PP + FR, sweep the number of fine-tuning epochs.
    for fraction in epoch_fractions:
        base_model.load_state_dict(base_state)
        epochs = max(1, int(round(fraction * settings.train.epochs)))
        trainer.fine_tune(
            graph,
            epochs=epochs,
            sample_weights=weights.loss_multipliers,
            adjacency_override=fixed_perturbation.perturbed_adjacency,
            learning_rate_scale=settings.ppfr.fine_tune_lr_scale,
        )
        rows.append(
            evaluate(
                "ppfr_epochs", fixed_perturbation.perturbed_adjacency, sweep_value=float(epochs)
            )
        )

    base_model.load_state_dict(base_state)
    return ExperimentResult(
        "figure6_ablation",
        rows,
        {"preset": preset.name, "dataset": dataset, "model": model_name},
    )
