"""Reproduction of the paper's figures (4, 5, 6, 7) as numeric series.

Figures are reproduced as the data series that back them (no plotting
dependency is available offline); each experiment returns the rows that would
be plotted, which the benchmark harness prints.  Like the tables, every
figure declares its grid as :class:`~repro.experiments.grid.CellSpec` lists
executed through a :class:`~repro.experiments.grid.GridRunner` — Figure 4
shares its (gcn, vanilla/reg) cells with Table III through the runner's
artifact cache, and Figures 5/7 are projections of the Table IV grid.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.experiments.grid import CellSpec, GridRunner, run_grid
from repro.experiments.presets import ExperimentPreset
from repro.experiments.reporting import ExperimentResult
from repro.experiments.tables import table4_ppfr_effectiveness

PresetLike = Union[str, ExperimentPreset]


def _resolve(preset: PresetLike) -> ExperimentPreset:
    return CellSpec.resolve_preset(preset)


def figure4_attack_auc(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    runner: Optional[GridRunner] = None,
) -> ExperimentResult:
    """Figure 4: per-distance attack AUC before and after fairness regularisation.

    Expected shape: for most distances and every dataset, the AUC of the
    regularised (fairer) model is at least that of the vanilla model.
    """
    preset = _resolve(preset)
    datasets = list(datasets or preset.strong_homophily_datasets)
    specs = [
        CellSpec(
            kind="methods",
            dataset=dataset,
            preset=preset,
            model="gcn",
            methods=("vanilla", "reg"),
            seed=seed,
        )
        for dataset in datasets
    ]
    rows: List[dict] = []
    for cell in run_grid(specs, runner):
        for method in ("vanilla", "reg"):
            evaluation = cell.payload["evaluations"][method]
            row = {"dataset": cell.spec.dataset, "method": method}
            row.update(
                {
                    key: value
                    for key, value in evaluation.items()
                    if key.startswith("auc_")
                }
            )
            row["auc_mean"] = evaluation["mean_auc"]
            rows.append(row)
    return ExperimentResult("figure4_attack_auc", rows, {"preset": preset.name})


def _accuracy_cost_rows(result, models: Sequence[str]) -> list:
    rows = []
    for row in result.rows:
        if row["model"] in models:
            rows.append(
                {
                    "dataset": row["dataset"],
                    "model": row["model"],
                    "method": row["method"],
                    "delta_accuracy_percent": row["delta_accuracy_percent"],
                }
            )
    return rows


def figure5_accuracy_cost(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    runner: Optional[GridRunner] = None,
) -> ExperimentResult:
    """Figure 5: accuracy cost (ΔAcc %) of each method on GCN and GAT.

    Expected shape: DPReg pays the largest accuracy cost; Reg and PPFR stay
    within a few percent of vanilla accuracy.
    """
    preset = _resolve(preset)
    models = [m for m in ("gcn", "gat") if m in preset.models] or ["gcn"]
    table4 = table4_ppfr_effectiveness(
        preset, seed=seed, datasets=datasets, models=models, runner=runner
    )
    rows = _accuracy_cost_rows(table4, models)
    return ExperimentResult("figure5_accuracy_cost", rows, {"preset": preset.name})


def figure7_graphsage_cost(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    runner: Optional[GridRunner] = None,
) -> ExperimentResult:
    """Figure 7: accuracy cost of each method on GraphSAGE.

    Expected shape: the sampling aggregation makes edge DP both less harmful
    to accuracy and less effective at reducing risk than on GCN/GAT.
    """
    preset = _resolve(preset)
    table4 = table4_ppfr_effectiveness(
        preset, seed=seed, datasets=datasets, models=["graphsage"], runner=runner
    )
    rows = _accuracy_cost_rows(table4, ["graphsage"])
    return ExperimentResult("figure7_graphsage_cost", rows, {"preset": preset.name})


def figure6_ablation(
    preset: PresetLike = "quick",
    seed: int = 0,
    dataset: str = "cora",
    model_name: Optional[str] = None,
    epoch_fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.3),
    gammas: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
    runner: Optional[GridRunner] = None,
) -> ExperimentResult:
    """Figure 6: PPFR ablations on one (dataset, model) cell.

    Three panels, reproduced as three row groups (the ``panel`` column):

    * ``fr_epochs``  — FR-only fine-tuning with zero perturbation, sweeping the
      fine-tuning epoch budget (left panel: fairness improves, risk creeps up).
    * ``pp_gamma``   — PP + fixed FR, sweeping the perturbation ratio γ
      (middle panel: risk and accuracy both fall as γ grows).
    * ``ppfr_epochs`` — fixed PP + FR, sweeping the epoch budget (right panel:
      risk stays near the vanilla level while bias falls).

    The sweep is one ``ablation`` cell by construction: every arm rewinds and
    fine-tunes the *same* vanilla model, so the panels share state and run as
    a unit.
    """
    preset = _resolve(preset)
    model_name = model_name or ("gat" if "gat" in preset.models else preset.models[0])
    spec = CellSpec(
        kind="ablation",
        dataset=dataset,
        preset=preset,
        model=model_name,
        seed=seed,
        overrides=(
            ("epoch_fractions", tuple(float(f) for f in epoch_fractions)),
            ("gammas", tuple(float(g) for g in gammas)),
        ),
    )
    (cell,) = run_grid([spec], runner)
    return ExperimentResult(
        "figure6_ablation",
        cell.payload["rows"],
        {"preset": preset.name, "dataset": dataset, "model": model_name},
    )
