"""Declarative experiment grid engine.

Every table and figure of the paper evaluates the same (dataset × model ×
method × seed) cells; this module turns those grids from hand-rolled serial
loops into *declarations*:

* :class:`CellSpec` — a frozen, hashable, picklable description of one cell
  (kind, dataset, model, methods, seed, preset, overrides);
* :class:`GridRunner` — expands specs into cells and executes them through a
  pluggable executor (``serial`` / ``thread`` / ``process``), deduplicating
  shared work via a content-keyed :class:`~repro.utils.cache.ArtifactCache`
  (finished cell payloads and trained ``MethodRun`` artifacts) and scoping a
  propagation-operator cache around every cell.

Cells are independent and deterministic, and backend/autodiff state is
``contextvars``-scoped, so the executors produce bitwise-identical
:class:`~repro.experiments.reporting.ExperimentResult` rows — parallelism and
caching change wall-clock only.  The determinism tests assert this for the
quick table3/figure4 grids across all three executors with the cache on and
off.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import GRID_EXECUTORS as EXECUTORS
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.sparse.backend import get_backend_name, use_backend
from repro.sparse.opcache import OperatorCache, use_operator_cache
from repro.utils.cache import ArtifactCache, CacheStats, stable_hash

__all__ = [
    "EXECUTORS",
    "CellSpec",
    "CellResult",
    "GridRunner",
    "run_grid",
]

_MISSING = object()


def _default_jobs() -> int:
    return max(2, min(4, os.cpu_count() or 2))


@dataclass(frozen=True)
class CellSpec:
    """One cell of an experiment grid.

    Frozen and built from primitives/tuples only, so specs are hashable
    (grid-level dedup), picklable (process executors) and content-hashable
    (artifact cache keys).  ``preset`` is embedded as the resolved
    :class:`ExperimentPreset` value, not a registry name, so ad-hoc presets
    participate in caching correctly.
    """

    kind: str
    dataset: str
    preset: ExperimentPreset
    model: str = "gcn"
    methods: Tuple[str, ...] = ()
    seed: int = 0
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        from repro.experiments.cells import CELL_KINDS

        if self.kind not in CELL_KINDS:
            raise ValueError(
                f"unknown cell kind {self.kind!r}; available: {', '.join(sorted(CELL_KINDS))}"
            )

    @staticmethod
    def resolve_preset(preset) -> ExperimentPreset:
        return get_preset(preset) if isinstance(preset, str) else preset

    def key(self, backend: Optional[str] = None) -> str:
        """Content key of the finished cell payload in the artifact cache.

        ``backend`` is the compute-backend selection the cell runs under
        (defaulting to the ambient context's): backends agree only to ~1e-8,
        not bitwise, so payloads computed under different backends must never
        alias in a shared cache.
        """
        if backend is None:
            backend = get_backend_name()
        return f"cell:{backend}:{stable_hash(self)}"

    def with_methods(self, methods: Sequence[str]) -> "CellSpec":
        return replace(self, methods=tuple(methods))


@dataclass
class CellResult:
    """One executed (or cache-served) cell."""

    spec: CellSpec
    payload: Dict
    cached: bool = False
    duration: float = 0.0


class GridRunner:
    """Executes cell grids through a pluggable executor with shared caches.

    Parameters
    ----------
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``; ``None`` infers
        ``"thread"`` when ``jobs > 1`` and ``"serial"`` otherwise.
    jobs:
        Worker count for the parallel executors (default: a small multiple of
        the CPU count, capped at 4).
    cache:
        Enables the artifact cache (cell payloads + trained methods) and the
        per-cell propagation-operator cache.  Both are deterministic, so this
        flag trades memory for wall-clock only.
    backend:
        Optional compute-backend override applied around every cell
        (``"dense"`` / ``"sparse"`` / ``"auto"``).  ``None`` inherits the
        ambient selection — which thread workers receive via context copy and
        process workers via an explicit re-application of the submitting
        context's backend name.
    cache_dir:
        Optional directory for the *persistent* artifact tier: entries are
        spilled to disk so repeated CLI invocations (and process-pool
        workers, which share the directory) reuse trained cells across
        process boundaries.  Implies ``cache``; ignored when an explicit
        ``artifact_cache`` is supplied.
    artifact_cache / operator_cache:
        Pre-built caches to share across runners (e.g. one CLI invocation).
    """

    def __init__(
        self,
        executor: Optional[str] = None,
        jobs: Optional[int] = None,
        cache: bool = True,
        backend: Optional[str] = None,
        cache_dir: Optional[str] = None,
        artifact_cache: Optional[ArtifactCache] = None,
        operator_cache: Optional[OperatorCache] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1")
        if executor is None:
            executor = "thread" if (jobs or 1) > 1 else "serial"
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
            )
        self.executor = executor
        self.jobs = jobs if jobs is not None else (
            1 if executor == "serial" else _default_jobs()
        )
        self.backend = backend
        self.cache_enabled = bool(cache) or cache_dir is not None
        self.cache_dir = cache_dir
        self.artifact_cache = artifact_cache if artifact_cache is not None else (
            ArtifactCache(directory=cache_dir) if self.cache_enabled else None
        )
        self.operator_cache = operator_cache if operator_cache is not None else (
            OperatorCache() if self.cache_enabled else None
        )

    @classmethod
    def from_config(cls, compute, **kwargs) -> "GridRunner":
        """Build a runner from a :class:`repro.core.config.ComputeConfig`."""
        return cls(
            executor=compute.executor,
            jobs=compute.jobs,
            cache=compute.cache,
            backend=compute.backend,
            cache_dir=getattr(compute, "cache_dir", None),
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, specs: Sequence[CellSpec]) -> List[CellResult]:
        """Execute ``specs``, returning one :class:`CellResult` per spec in order.

        Identical specs within the batch are executed once; specs whose
        payload is already in the artifact cache (e.g. from a previous run
        through the same runner) are served without executing.
        """
        specs = list(specs)
        backend = self.backend if self.backend is not None else get_backend_name()
        results: List[Optional[CellResult]] = [None] * len(specs)
        pending: "Dict[CellSpec, List[int]]" = {}
        for index, spec in enumerate(specs):
            if self.artifact_cache is not None:
                payload = self.artifact_cache.get(spec.key(backend), _MISSING)
                if payload is not _MISSING:
                    self.artifact_cache.record_hit()
                    results[index] = CellResult(spec, payload, cached=True)
                    continue
            pending.setdefault(spec, []).append(index)

        executed = self._execute_pending(list(pending))
        for spec, indices in pending.items():
            payload, duration = executed[spec]
            if self.artifact_cache is not None:
                self.artifact_cache.put(spec.key(backend), payload)
                self.artifact_cache.record_miss()
            for position, index in enumerate(indices):
                results[index] = CellResult(
                    spec, payload, cached=position > 0, duration=duration if position == 0 else 0.0
                )
        return results  # type: ignore[return-value]

    def _execute_pending(
        self, specs: List[CellSpec]
    ) -> Dict[CellSpec, Tuple[Dict, float]]:
        if not specs:
            return {}
        if self.executor == "serial" or self.jobs == 1 or len(specs) == 1:
            return {spec: self._execute_one(spec) for spec in specs}
        if self.executor == "process":
            return self._execute_process(specs)
        return self._execute_thread(specs)

    def _cell_scope(self):
        """Backend + operator-cache context applied around one cell."""
        stack = contextlib.ExitStack()
        if self.backend is not None:
            stack.enter_context(use_backend(self.backend))
        # Explicitly scope the operator cache: enabled runners share theirs,
        # cache-disabled runners mask any ambient cache so "cache off" means
        # off (the determinism tests rely on this).
        stack.enter_context(
            use_operator_cache(self.operator_cache if self.cache_enabled else None)
        )
        return stack

    def _execute_one(self, spec: CellSpec) -> Tuple[Dict, float]:
        from repro.experiments.cells import execute_cell

        start = time.perf_counter()
        with self._cell_scope():
            payload = execute_cell(spec, artifact_cache=self.artifact_cache)
        return payload, time.perf_counter() - start

    def _execute_thread(
        self, specs: List[CellSpec]
    ) -> Dict[CellSpec, Tuple[Dict, float]]:
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                # Each task runs in a copy of the submitting context so the
                # ambient backend / autodiff-mode contextvars propagate into
                # worker threads.
                spec: pool.submit(
                    contextvars.copy_context().run, self._execute_one, spec
                )
                for spec in specs
            }
            return {spec: future.result() for spec, future in futures.items()}

    def _execute_process(
        self, specs: List[CellSpec]
    ) -> Dict[CellSpec, Tuple[Dict, float]]:
        backend = self.backend if self.backend is not None else get_backend_name()
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                spec: pool.submit(
                    _process_cell, spec, backend, self.cache_enabled, self.cache_dir
                )
                for spec in specs
            }
            return {spec: future.result() for spec, future in futures.items()}

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def cache_stats(self) -> Optional[CacheStats]:
        return None if self.artifact_cache is None else self.artifact_cache.stats


def _process_cell(
    spec: CellSpec, backend: str, cache: bool, cache_dir: Optional[str] = None
) -> Tuple[Dict, float]:
    """Top-level process-executor entry point (must be picklable by name).

    Workers get fresh per-task caches: the operator cache still collapses the
    per-epoch normalisation rebuilds inside the cell, while results stay
    independent of worker scheduling.  A shared ``cache_dir`` extends
    artifact deduplication across workers through the persistent tier.
    """
    from repro.experiments.cells import execute_cell

    start = time.perf_counter()
    with use_backend(backend):
        with use_operator_cache(OperatorCache() if cache else None):
            payload = execute_cell(
                spec,
                artifact_cache=(
                    ArtifactCache(directory=cache_dir) if cache else None
                ),
            )
    return payload, time.perf_counter() - start


def run_grid(
    specs: Sequence[CellSpec], runner: Optional[GridRunner] = None
) -> List[CellResult]:
    """Execute a grid with ``runner`` (or a fresh serial runner)."""
    return (runner or GridRunner()).run(specs)
