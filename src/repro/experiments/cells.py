"""Cell-kind implementations of the experiment grid engine.

A *cell* is the unit of work every table and figure of the paper is
assembled from.  Each kind maps a :class:`repro.experiments.grid.CellSpec`
to a plain-data payload (nested dicts of floats/strings only), which keeps
cells executable in worker *processes* and cacheable by content key:

* ``methods``     — train the spec's methods on one (dataset, model) cell via
  :func:`repro.core.pipeline.run_all_methods` and report evaluations + Δs
  (Tables III/IV/V, Figures 4/5/7);
* ``influence``   — vanilla-train and correlate the bias/risk influences
  (Table II);
* ``diagnostics`` — SBM statistics + vanilla bias behind Lemma V.1 /
  Proposition V.2;
* ``ablation``    — the three PPFR ablation panels of Figure 6.

Every kind is deterministic in its spec: the same spec produces bitwise
identical payloads regardless of executor (serial / thread / process) or
cache state, which the grid determinism tests assert.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.core.perturbation import privacy_aware_perturbation
from repro.core.pipeline import run_all_methods, run_method
from repro.core.results import MethodRun, evaluate_method
from repro.datasets import load_dataset
from repro.experiments.presets import ExperimentPreset
from repro.fairness.inform import bias_from_graph
from repro.fairness.reweighting import compute_fairness_weights
from repro.gnn.trainer import Trainer
from repro.graphs.homophily import class_linking_probabilities, edge_homophily
from repro.graphs.khop import two_hop_ratio_empirical, two_hop_ratio_theoretical
from repro.graphs.similarity import graph_similarity
from repro.influence.correlation import pearson_correlation
from repro.influence.functions import InfluenceConfig, InfluenceEstimator
from repro.privacy.attacks.link_stealing import LinkStealingAttack
from repro.utils.cache import ArtifactCache, stable_hash

CellFunction = Callable[[object, Optional[ArtifactCache]], Dict]

__all__ = ["CELL_KINDS", "execute_cell", "method_scope_key"]


def method_scope_key(spec) -> str:
    """Key prefix under which a cell's trained methods are cached.

    Deliberately excludes ``kind`` and ``methods`` — a Table III cell
    (vanilla + reg) and a Table IV cell (vanilla + four methods) on the same
    (dataset, model, seed, preset) share each method's training — but
    *includes* the ambient compute-backend selection: backends agree only to
    ~1e-8, so artifacts trained under different backends must never alias in
    a shared cache.  Cells run inside the runner's backend scope, so the
    ambient name is the effective one.
    """
    from repro.sparse.backend import get_backend_name

    return stable_hash(
        ("method-scope", get_backend_name(), spec.dataset, spec.model, spec.seed, spec.preset)
    )


def _evaluation_payload(evaluation) -> Dict:
    """Flatten a :class:`MethodEvaluation` (plus attack AUCs) to plain data."""
    payload = evaluation.to_dict()
    if evaluation.attack is not None:
        payload.update(evaluation.attack.to_dict())
    return payload


def methods_cell(spec, artifact_cache: Optional[ArtifactCache] = None) -> Dict:
    """Train ``spec.methods`` on one (dataset, model, seed) cell."""
    preset: ExperimentPreset = spec.preset
    if not spec.methods:
        raise ValueError("a 'methods' cell needs a non-empty methods tuple")
    graph = load_dataset(spec.dataset, seed=spec.seed, scale=preset.dataset_scale)
    settings = preset.method_settings(spec.dataset, seed=spec.seed)
    outcome = run_all_methods(
        graph,
        spec.model,
        settings,
        methods=[method for method in spec.methods if method != "vanilla"],
        hidden_features=preset.hidden_features,
        artifact_cache=artifact_cache,
        cache_key=method_scope_key(spec),
    )
    return {
        "evaluations": {
            method: _evaluation_payload(evaluation)
            for method, evaluation in outcome["evaluations"].items()
        },
        "deltas": {
            method: delta.to_dict() for method, delta in outcome["deltas"].items()
        },
    }


def _vanilla_model(spec, graph, settings, artifact_cache: Optional[ArtifactCache]):
    """A vanilla-trained victim model, reusing the methods-cell artifact.

    With a cache, the trained vanilla ``MethodRun`` is shared with any
    ``methods`` cell on the same (dataset, model, seed, preset) — Table II's
    victim *is* Table IV's vanilla baseline.  Only the *training* artifact is
    touched (the evaluation lives under a separate ``eval:`` key), so
    influence/diagnostics cells never pay for an attack evaluation they
    discard.  Both paths train identically, so cache state never changes
    results.  Cached models are read-only by contract: callers must not
    continue training them.
    """
    preset: ExperimentPreset = spec.preset

    def train():
        return run_method(
            "vanilla", spec.model, graph, settings, hidden_features=preset.hidden_features
        )

    if artifact_cache is None:
        return train().model
    run = artifact_cache.get_or_create(f"train:{method_scope_key(spec)}:vanilla", train)
    return run.model


def influence_cell(spec, artifact_cache: Optional[ArtifactCache] = None) -> Dict:
    """Table II cell: Pearson r between ``I_fbias`` and ``I_frisk``."""
    preset: ExperimentPreset = spec.preset
    graph = load_dataset(spec.dataset, seed=spec.seed, scale=preset.dataset_scale)
    settings = preset.method_settings(spec.dataset, seed=spec.seed)
    model = _vanilla_model(spec, graph, settings, artifact_cache)
    estimator = InfluenceEstimator(
        model, graph, config=InfluenceConfig(cg_iterations=preset.cg_iterations)
    )
    bias_influence = estimator.bias_influence()
    risk_influence = estimator.risk_influence()
    return {
        "pearson_r": pearson_correlation(bias_influence, risk_influence),
        "num_train_nodes": int(bias_influence.shape[0]),
    }


def diagnostics_cell(spec, artifact_cache: Optional[ArtifactCache] = None) -> Dict:
    """Proposition V.2 cell: SBM statistics plus the vanilla-model bias."""
    preset: ExperimentPreset = spec.preset
    graph = load_dataset(spec.dataset, seed=spec.seed, scale=preset.dataset_scale)
    settings = preset.method_settings(spec.dataset, seed=spec.seed)
    p, q = class_linking_probabilities(graph.adjacency, graph.labels)
    model = _vanilla_model(spec, graph, settings, artifact_cache)
    posteriors = model.predict_proba(graph.features, graph.adjacency)
    return {
        "edge_homophily": edge_homophily(graph.adjacency, graph.labels),
        "p_intra": p,
        "q_inter": q,
        "two_hop_ratio_theory": two_hop_ratio_theoretical(p, q),
        "two_hop_ratio_empirical": two_hop_ratio_empirical(graph.adjacency),
        "vanilla_bias": bias_from_graph(posteriors, graph),
    }


def ablation_cell(spec, artifact_cache: Optional[ArtifactCache] = None) -> Dict:
    """Figure 6 cell: the three PPFR ablation panels on one (dataset, model).

    The panels share one vanilla model whose state is rewound between arms;
    the model is therefore *never* taken from the artifact cache (fine-tuning
    a shared cached model would corrupt it for other cells).
    """
    preset: ExperimentPreset = spec.preset
    overrides = dict(spec.overrides)
    epoch_fractions = overrides.get("epoch_fractions", (0.05, 0.1, 0.2, 0.3))
    gammas = overrides.get("gammas", (0.0, 0.1, 0.2, 0.4))

    graph = load_dataset(spec.dataset, seed=spec.seed, scale=preset.dataset_scale)
    settings = preset.method_settings(spec.dataset, seed=spec.seed)
    similarity = graph_similarity(graph)
    attack = LinkStealingAttack(seed=settings.attack_seed)

    from repro.gnn.models import build_model

    # Phase one: a single vanilla model shared by every ablation arm.
    base_model = build_model(
        spec.model,
        in_features=graph.num_features,
        num_classes=graph.num_classes,
        hidden_features=preset.hidden_features,
        rng=settings.model_seed,
    )
    trainer = Trainer(base_model, settings.train)
    trainer.fit(graph)
    base_state = base_model.state_dict()

    weights = compute_fairness_weights(base_model, graph, config=settings.ppfr.reweighting)
    fixed_perturbation = privacy_aware_perturbation(
        base_model, graph, gamma=settings.ppfr.gamma, rng=settings.ppfr.seed
    )

    def evaluate(tag: str, serving_adjacency: np.ndarray, **extras) -> Dict:
        run = MethodRun(
            method=tag, model=base_model, graph=graph, serving_adjacency=serving_adjacency
        )
        evaluation = evaluate_method(
            run, model_name=spec.model, similarity=similarity, attack=attack
        )
        row = {
            "panel": tag,
            "accuracy": evaluation.accuracy,
            "bias": evaluation.bias,
            "risk_auc": evaluation.risk_auc,
        }
        row.update(extras)
        return row

    rows = [evaluate("vanilla", graph.adjacency, sweep_value=0.0)]

    # Panel 1: FR only, sweep the number of fine-tuning epochs.
    for fraction in epoch_fractions:
        base_model.load_state_dict(base_state)
        epochs = max(1, int(round(fraction * settings.train.epochs)))
        trainer.fine_tune(
            graph,
            epochs=epochs,
            sample_weights=weights.loss_multipliers,
            learning_rate_scale=settings.ppfr.fine_tune_lr_scale,
        )
        rows.append(evaluate("fr_epochs", graph.adjacency, sweep_value=float(epochs)))

    # Panel 2: PP + fixed FR, sweep the perturbation ratio γ.
    fixed_epochs = settings.ppfr.fine_tune_epochs(settings.train.epochs)
    for gamma in gammas:
        base_model.load_state_dict(base_state)
        perturbation = privacy_aware_perturbation(
            base_model, graph, gamma=gamma, rng=settings.ppfr.seed
        )
        trainer.fine_tune(
            graph,
            epochs=fixed_epochs,
            sample_weights=weights.loss_multipliers,
            adjacency_override=perturbation.perturbed_adjacency,
            learning_rate_scale=settings.ppfr.fine_tune_lr_scale,
        )
        rows.append(
            evaluate("pp_gamma", perturbation.perturbed_adjacency, sweep_value=float(gamma))
        )

    # Panel 3: fixed PP + FR, sweep the number of fine-tuning epochs.
    for fraction in epoch_fractions:
        base_model.load_state_dict(base_state)
        epochs = max(1, int(round(fraction * settings.train.epochs)))
        trainer.fine_tune(
            graph,
            epochs=epochs,
            sample_weights=weights.loss_multipliers,
            adjacency_override=fixed_perturbation.perturbed_adjacency,
            learning_rate_scale=settings.ppfr.fine_tune_lr_scale,
        )
        rows.append(
            evaluate(
                "ppfr_epochs", fixed_perturbation.perturbed_adjacency, sweep_value=float(epochs)
            )
        )

    base_model.load_state_dict(base_state)
    return {"rows": rows, "model": spec.model}


CELL_KINDS: Dict[str, CellFunction] = {
    "methods": methods_cell,
    "influence": influence_cell,
    "diagnostics": diagnostics_cell,
    "ablation": ablation_cell,
}
"""Cell kind → implementation, the work vocabulary of the grid engine."""


def execute_cell(spec, artifact_cache: Optional[ArtifactCache] = None) -> Dict:
    """Execute one cell spec and return its plain-data payload."""
    if spec.kind not in CELL_KINDS:
        raise KeyError(
            f"unknown cell kind {spec.kind!r}; available: {', '.join(sorted(CELL_KINDS))}"
        )
    return CELL_KINDS[spec.kind](spec, artifact_cache)
