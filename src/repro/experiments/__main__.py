"""Command-line entry point: ``python -m repro.experiments <experiment>``.

Examples
--------
Run the Table IV grid at the quick preset and print the rows::

    python -m repro.experiments table4 --preset quick

Run every experiment at the smoke preset, two cells at a time, and store
JSON outputs (one shared runner means e.g. Figure 4 reuses Table III's
trained cells)::

    python -m repro.experiments all --preset smoke --jobs 2 --output results/
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import List, Optional, Tuple

from repro.core.config import GRID_EXECUTORS
from repro.experiments.grid import GridRunner
from repro.experiments.presets import PRESETS, get_preset
from repro.experiments.runner import EXPERIMENTS, run_experiment, run_experiment_seeds
from repro.sparse.backend import available_backends


def parse_seeds(text: str) -> Tuple[int, ...]:
    """Parse ``--seeds`` values like ``"0,1,2"`` (distinct non-negative ints)."""
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise argparse.ArgumentTypeError("empty seed entry")
        try:
            value = int(part)
        except ValueError as error:
            raise argparse.ArgumentTypeError(
                f"invalid seed {part!r}: expected an integer"
            ) from error
        if value < 0:
            raise argparse.ArgumentTypeError("seeds must be non-negative")
        seeds.append(value)
    if len(set(seeds)) != len(seeds):
        raise argparse.ArgumentTypeError("seeds must be distinct")
    return tuple(seeds)


def parse_fanouts(text: str) -> Tuple[Optional[int], ...]:
    """Parse ``--fanouts`` values like ``"10,10"`` or ``"5,all"``.

    Each comma-separated entry is a per-layer neighbour budget (input layer
    first); ``all``/``full``/``-1`` mean exhaustive sampling at that layer.
    """
    entries: List[Optional[int]] = []
    for part in text.split(","):
        part = part.strip().lower()
        if not part:
            raise argparse.ArgumentTypeError("empty fanout entry")
        if part in ("all", "full", "-1", "none"):
            entries.append(None)
            continue
        try:
            value = int(part)
        except ValueError as error:
            raise argparse.ArgumentTypeError(
                f"invalid fanout {part!r}: expected an integer or 'all'"
            ) from error
        if value <= 0:
            raise argparse.ArgumentTypeError("fanouts must be positive (or 'all')")
        entries.append(value)
    return tuple(entries)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the PPFR paper (ICDE 2024).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=sorted(PRESETS),
        help="size/budget preset (default: quick)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--seeds",
        type=parse_seeds,
        default=None,
        help=(
            "comma-separated seed list for multi-seed replication, e.g. "
            "'0,1,2': every cell is replicated per seed and table cells "
            "report mean ± std (overrides --seed)"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "switch method training to neighbour-sampled mini-batches of this "
            "many seed nodes (default: full-batch training)"
        ),
    )
    parser.add_argument(
        "--fanouts",
        type=parse_fanouts,
        default=None,
        help=(
            "per-layer neighbour budgets for mini-batch training, input layer "
            "first, e.g. '10,10' ('all' = exhaustive; requires --batch-size; "
            "default: exhaustive at every layer)"
        ),
    )
    parser.add_argument(
        "--eval-interval",
        type=int,
        default=None,
        help=(
            "evaluate full-graph only every K training epochs (mini-batch "
            "runs on large graphs stay N-independent between evaluations; "
            "requires --batch-size; default: every epoch)"
        ),
    )
    parser.add_argument(
        "--backend",
        default="auto",
        choices=sorted(available_backends()) + ["auto"],
        help=(
            "graph compute backend: 'dense' (reference), 'sparse' (CSR spmm) "
            "or 'auto' (nnz-density heuristic; default)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "parallel grid-cell workers; > 1 executes independent (dataset, "
            "model) cells concurrently (default: 1, serial)"
        ),
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=GRID_EXECUTORS,
        help=(
            "cell executor; defaults to 'thread' when --jobs > 1 and 'serial' "
            "otherwise ('process' isolates cells in worker processes)"
        ),
    )
    cache = parser.add_mutually_exclusive_group()
    cache.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=True,
        help="enable the artifact/operator caches (default; deterministic)",
    )
    cache.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="disable caching (every cell trains from scratch)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist the artifact cache to DIR (conventionally "
            "'results/cache'): repeated invocations and process-pool workers "
            "reuse trained cells across processes (implies --cache)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help="directory to write <experiment>.json result files into",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.batch_size is not None and args.batch_size <= 0:
        parser.error("--batch-size must be positive")
    if args.fanouts is not None and args.batch_size is None:
        parser.error("--fanouts requires --batch-size")
    if args.eval_interval is not None:
        if args.batch_size is None:
            parser.error("--eval-interval requires --batch-size")
        if args.eval_interval <= 0:
            parser.error("--eval-interval must be positive")
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    preset = get_preset(args.preset)
    if args.batch_size is not None:
        # A modified preset (rather than a side channel) so batched cells key
        # separately in the artifact cache and in process workers.  The name
        # suffix flows into every ExperimentResult's metadata and saved JSON,
        # so batched numbers are never mistaken for full-batch reproductions.
        fanout_tag = (
            "" if args.fanouts is None
            else "x" + ",".join("all" if f is None else str(f) for f in args.fanouts)
        )
        preset = replace(
            preset,
            name=f"{preset.name}-mb{args.batch_size}{fanout_tag}",
            batch_size=args.batch_size,
            fanouts=args.fanouts,
            eval_interval=args.eval_interval if args.eval_interval is not None else 1,
        )
    # One runner for the whole invocation: experiments share trained cells
    # (table3 and figure4 declare identical (gcn, vanilla/reg) grids), and
    # the runner applies --backend around every cell on every executor.
    if args.cache_dir is not None and not args.cache:
        parser.error("--cache-dir conflicts with --no-cache")
    runner = GridRunner(
        executor=args.executor,
        jobs=args.jobs,
        cache=args.cache,
        backend=args.backend,
        cache_dir=args.cache_dir,
    )
    for name in names:
        if args.seeds is not None:
            result = run_experiment_seeds(
                name, seeds=args.seeds, preset=preset, runner=runner
            )
        else:
            result = run_experiment(name, preset=preset, seed=args.seed, runner=runner)
        print(result.formatted())
        print()
        if args.output:
            path = os.path.join(args.output, f"{name}.json")
            result.save_json(path)
            print(f"saved {path}")
    stats = runner.cache_stats
    if stats is not None:
        print(f"artifact cache: {stats}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
