"""Command-line entry point: ``python -m repro.experiments <experiment>``.

Examples
--------
Run the Table IV grid at the quick preset and print the rows::

    python -m repro.experiments table4 --preset quick

Run every experiment at the smoke preset, two cells at a time, and store
JSON outputs (one shared runner means e.g. Figure 4 reuses Table III's
trained cells)::

    python -m repro.experiments all --preset smoke --jobs 2 --output results/
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.config import GRID_EXECUTORS
from repro.experiments.grid import GridRunner
from repro.experiments.presets import PRESETS
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.sparse.backend import available_backends


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the PPFR paper (ICDE 2024).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=sorted(PRESETS),
        help="size/budget preset (default: quick)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--backend",
        default="auto",
        choices=sorted(available_backends()) + ["auto"],
        help=(
            "graph compute backend: 'dense' (reference), 'sparse' (CSR spmm) "
            "or 'auto' (nnz-density heuristic; default)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "parallel grid-cell workers; > 1 executes independent (dataset, "
            "model) cells concurrently (default: 1, serial)"
        ),
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=GRID_EXECUTORS,
        help=(
            "cell executor; defaults to 'thread' when --jobs > 1 and 'serial' "
            "otherwise ('process' isolates cells in worker processes)"
        ),
    )
    cache = parser.add_mutually_exclusive_group()
    cache.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=True,
        help="enable the artifact/operator caches (default; deterministic)",
    )
    cache.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="disable caching (every cell trains from scratch)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="directory to write <experiment>.json result files into",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # One runner for the whole invocation: experiments share trained cells
    # (table3 and figure4 declare identical (gcn, vanilla/reg) grids), and
    # the runner applies --backend around every cell on every executor.
    runner = GridRunner(
        executor=args.executor,
        jobs=args.jobs,
        cache=args.cache,
        backend=args.backend,
    )
    for name in names:
        result = run_experiment(name, preset=args.preset, seed=args.seed, runner=runner)
        print(result.formatted())
        print()
        if args.output:
            path = os.path.join(args.output, f"{name}.json")
            result.save_json(path)
            print(f"saved {path}")
    stats = runner.cache_stats
    if stats is not None:
        print(f"artifact cache: {stats}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
