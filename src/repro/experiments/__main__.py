"""Command-line entry point: ``python -m repro.experiments <experiment>``.

Examples
--------
Run the Table IV grid at the quick preset and print the rows::

    python -m repro.experiments table4 --preset quick

Run every experiment at the smoke preset and store JSON outputs::

    python -m repro.experiments all --preset smoke --output results/
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.presets import PRESETS
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.sparse.backend import available_backends, use_backend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the PPFR paper (ICDE 2024).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=sorted(PRESETS),
        help="size/budget preset (default: quick)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--backend",
        default="auto",
        choices=sorted(available_backends()) + ["auto"],
        help=(
            "graph compute backend: 'dense' (reference), 'sparse' (CSR spmm) "
            "or 'auto' (nnz-density heuristic; default)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help="directory to write <experiment>.json result files into",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    with use_backend(args.backend):
        for name in names:
            result = run_experiment(name, preset=args.preset, seed=args.seed)
            print(result.formatted())
            print()
            if args.output:
                path = os.path.join(args.output, f"{name}.json")
                result.save_json(path)
                print(f"saved {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
