"""Result containers and plain-text table rendering for the experiments."""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dictionaries as an aligned text table.

    Floats are shown with four decimals; the column order defaults to the key
    order of the first row.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    table = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[idx]) for line in table))
        for idx, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[idx]) for idx, col in enumerate(columns))
    separator = "  ".join("-" * widths[idx] for idx in range(len(columns)))
    body = "\n".join(
        "  ".join(line[idx].ljust(widths[idx]) for idx in range(len(columns)))
        for line in table
    )
    return f"{header}\n{separator}\n{body}"


@dataclass
class ExperimentResult:
    """Output of one experiment: identifier, rows and free-form metadata."""

    experiment: str
    rows: List[Dict] = field(default_factory=list)
    metadata: Dict = field(default_factory=dict)

    def formatted(self, columns: Optional[Sequence[str]] = None) -> str:
        """Human-readable rendering of the result rows."""
        title = f"== {self.experiment} =="
        return f"{title}\n{format_table(self.rows, columns)}"

    def save_json(self, path: str) -> None:
        """Persist rows and metadata as JSON (creates parent directories)."""
        directory = os.path.dirname(os.path.abspath(path))
        if directory and not os.path.isdir(directory):
            os.makedirs(directory, exist_ok=True)
        payload = {
            "experiment": self.experiment,
            "rows": self.rows,
            "metadata": self.metadata,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)

    def column(self, name: str) -> List:
        """Extract one column across all rows (missing values become None)."""
        return [row.get(name) for row in self.rows]


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def aggregate_seed_results(
    results: Sequence[ExperimentResult], seeds: Sequence[int]
) -> ExperimentResult:
    """Merge per-seed replications of one experiment into mean ± std cells.

    Every result must come from the same experiment grid, differing only in
    the root seed, so rows align positionally: columns whose values agree
    across all seeds — key columns (dataset, model, method, …) and constant
    numeric descriptors (e.g. node counts) — are kept verbatim, while
    varying numeric columns are replaced by ``"mean ± std"`` strings (the
    population std over seeds).  Non-numeric columns that disagree across
    seeds are an error.  The per-seed numeric rows are preserved under
    ``metadata["rows_by_seed"]`` so downstream consumers keep full numeric
    access.
    """
    results = list(results)
    if not results:
        raise ValueError("aggregate_seed_results needs at least one result")
    if len(results) != len(seeds):
        raise ValueError("one result per seed required")
    first = results[0]
    for other in results[1:]:
        if other.experiment != first.experiment:
            raise ValueError("cannot aggregate results of different experiments")
        if len(other.rows) != len(first.rows):
            raise ValueError(
                "seed replications produced differently shaped grids "
                f"({len(first.rows)} vs {len(other.rows)} rows)"
            )

    rows: List[Dict] = []
    for index, template in enumerate(first.rows):
        merged: Dict = {}
        for column, value in template.items():
            values = [result.rows[index].get(column) for result in results]
            if all(v == value for v in values):
                merged[column] = value
            elif all(_is_numeric(v) for v in values):
                mean = sum(values) / len(values)
                variance = sum((v - mean) ** 2 for v in values) / len(values)
                merged[column] = f"{mean:.4f} ± {math.sqrt(variance):.4f}"
            else:
                raise ValueError(
                    f"non-numeric column {column!r} disagrees across seeds "
                    f"in row {index}"
                )
        rows.append(merged)

    metadata = dict(first.metadata)
    metadata["seeds"] = [int(seed) for seed in seeds]
    metadata["rows_by_seed"] = {
        str(seed): result.rows for seed, result in zip(seeds, results)
    }
    return ExperimentResult(first.experiment, rows, metadata)
