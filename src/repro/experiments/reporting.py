"""Result containers and plain-text table rendering for the experiments."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dictionaries as an aligned text table.

    Floats are shown with four decimals; the column order defaults to the key
    order of the first row.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    table = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[idx]) for line in table))
        for idx, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[idx]) for idx, col in enumerate(columns))
    separator = "  ".join("-" * widths[idx] for idx in range(len(columns)))
    body = "\n".join(
        "  ".join(line[idx].ljust(widths[idx]) for idx in range(len(columns)))
        for line in table
    )
    return f"{header}\n{separator}\n{body}"


@dataclass
class ExperimentResult:
    """Output of one experiment: identifier, rows and free-form metadata."""

    experiment: str
    rows: List[Dict] = field(default_factory=list)
    metadata: Dict = field(default_factory=dict)

    def formatted(self, columns: Optional[Sequence[str]] = None) -> str:
        """Human-readable rendering of the result rows."""
        title = f"== {self.experiment} =="
        return f"{title}\n{format_table(self.rows, columns)}"

    def save_json(self, path: str) -> None:
        """Persist rows and metadata as JSON (creates parent directories)."""
        directory = os.path.dirname(os.path.abspath(path))
        if directory and not os.path.isdir(directory):
            os.makedirs(directory, exist_ok=True)
        payload = {
            "experiment": self.experiment,
            "rows": self.rows,
            "metadata": self.metadata,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)

    def column(self, name: str) -> List:
        """Extract one column across all rows (missing values become None)."""
        return [row.get(name) for row in self.rows]
