"""Experiment dispatcher used by the CLI and the benchmark harness."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from repro.experiments import figures, tables
from repro.experiments.grid import GridRunner
from repro.experiments.presets import ExperimentPreset
from repro.experiments.reporting import ExperimentResult, aggregate_seed_results

ExperimentFunction = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, ExperimentFunction] = {
    "table2": tables.table2_influence_correlation,
    "table3": tables.table3_accuracy_bias,
    "table4": tables.table4_ppfr_effectiveness,
    "table5": tables.table5_weak_homophily,
    "proposition": tables.proposition_tradeoff_diagnostics,
    "figure4": figures.figure4_attack_auc,
    "figure5": figures.figure5_accuracy_cost,
    "figure6": figures.figure6_ablation,
    "figure7": figures.figure7_graphsage_cost,
}
"""Experiment id → function, keyed by the paper's table/figure numbers."""


def run_experiment(
    name: str,
    preset: Union[str, ExperimentPreset] = "quick",
    seed: int = 0,
    runner: Optional[GridRunner] = None,
    **kwargs,
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"table4"``).

    ``runner`` controls grid execution (executor, jobs, caches); sharing one
    runner across calls lets experiments reuse each other's trained cells —
    e.g. Figure 4 resolves Table III's (gcn, vanilla/reg) cells from cache.
    """
    key = name.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key](preset=preset, seed=seed, runner=runner, **kwargs)


def run_experiment_seeds(
    name: str,
    seeds: Sequence[int],
    preset: Union[str, ExperimentPreset] = "quick",
    runner: Optional[GridRunner] = None,
    **kwargs,
) -> ExperimentResult:
    """Replicate one experiment across ``seeds`` and report mean ± std cells.

    The grid engine makes seed replication a one-line spec expansion: each
    seed runs the same declared grid (sharing the runner's caches, so
    cross-experiment cell reuse still applies), and the per-seed rows are
    merged by :func:`~repro.experiments.reporting.aggregate_seed_results` —
    numeric columns become ``"mean ± std"`` strings, per-seed numerics stay
    available under ``metadata["rows_by_seed"]``.
    """
    seeds = [int(seed) for seed in seeds]
    if not seeds:
        raise ValueError("seeds must be non-empty")
    if len(set(seeds)) != len(seeds):
        raise ValueError("seeds must be distinct")
    results = [
        run_experiment(name, preset=preset, seed=seed, runner=runner, **kwargs)
        for seed in seeds
    ]
    return aggregate_seed_results(results, seeds)
