"""Experiment harness reproducing every table and figure of the paper.

Each experiment module exposes a ``run(preset=..., seed=...)`` function that
returns an :class:`repro.experiments.reporting.ExperimentResult` containing
the raw rows and a formatted text rendering of the corresponding paper
table/figure.  The command-line entry point (``python -m repro.experiments``)
dispatches to these functions.

Experiment index (see DESIGN.md §4):

==========  ===========================================================
``table2``   Pearson correlation between bias and risk influences
``table3``   Accuracy and bias of GCN, Vanilla vs Reg
``table4``   Effectiveness of PPFR vs baselines (Δbias, Δrisk, Δ)
``table5``   Weak-homophily datasets (Enzymes, Credit)
``figure4``  Attack AUC per distance, vanilla vs Reg
``figure5``  Accuracy cost of each method (GCN, GAT)
``figure6``  PPFR ablations (FR epochs, PP ratio, PP+FR epochs)
``figure7``  Accuracy cost of each method (GraphSAGE)
``proposition``  Lemma V.1 / Proposition V.2 diagnostics
==========  ===========================================================
"""

from repro.experiments.presets import ExperimentPreset, PRESETS, get_preset
from repro.experiments.reporting import (
    ExperimentResult,
    aggregate_seed_results,
    format_table,
)
from repro.experiments.grid import CellResult, CellSpec, GridRunner, run_grid
from repro.experiments import cells, tables, figures
from repro.experiments.runner import run_experiment, run_experiment_seeds, EXPERIMENTS

__all__ = [
    "ExperimentPreset",
    "PRESETS",
    "get_preset",
    "ExperimentResult",
    "format_table",
    "CellSpec",
    "CellResult",
    "GridRunner",
    "run_grid",
    "cells",
    "tables",
    "figures",
    "run_experiment",
    "run_experiment_seeds",
    "aggregate_seed_results",
    "EXPERIMENTS",
]
