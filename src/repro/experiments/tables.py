"""Reproduction of the paper's tables (II, III, IV, V) plus Prop. V.2 diagnostics."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.pipeline import run_all_methods
from repro.datasets import load_dataset
from repro.experiments.presets import ExperimentPreset, get_preset
from repro.experiments.reporting import ExperimentResult
from repro.fairness.inform import bias_from_graph
from repro.gnn.models import build_model
from repro.gnn.trainer import Trainer
from repro.graphs.homophily import class_linking_probabilities, edge_homophily
from repro.graphs.khop import two_hop_ratio_empirical, two_hop_ratio_theoretical
from repro.graphs.similarity import jaccard_similarity
from repro.influence.correlation import pearson_correlation
from repro.influence.functions import InfluenceConfig, InfluenceEstimator
from repro.privacy.attacks.link_stealing import LinkStealingAttack

PresetLike = Union[str, ExperimentPreset]


def _resolve(preset: PresetLike) -> ExperimentPreset:
    return get_preset(preset) if isinstance(preset, str) else preset


def table2_influence_correlation(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Table II: Pearson r between ``I_fbias`` and ``I_frisk``.

    For every (dataset, model) cell a victim model is vanilla-trained, the
    per-node influences on bias and risk are estimated and their Pearson
    correlation reported.  The paper's headline observation — |r| is mostly
    below the "conformity" threshold of 0.3 or outright negative — motivates
    handling privacy in the data space rather than through the QCLP.
    """
    preset = _resolve(preset)
    datasets = list(datasets or preset.strong_homophily_datasets)
    models = list(models or preset.models)
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, seed=seed, scale=preset.dataset_scale)
        settings = preset.method_settings(dataset, seed=seed)
        for model_name in models:
            model = build_model(
                model_name,
                in_features=graph.num_features,
                num_classes=graph.num_classes,
                hidden_features=preset.hidden_features,
                rng=settings.model_seed,
            )
            Trainer(model, settings.train).fit(graph)
            estimator = InfluenceEstimator(
                model, graph, config=InfluenceConfig(cg_iterations=preset.cg_iterations)
            )
            bias_influence = estimator.bias_influence()
            risk_influence = estimator.risk_influence()
            rows.append(
                {
                    "dataset": dataset,
                    "model": model_name,
                    "pearson_r": pearson_correlation(bias_influence, risk_influence),
                    "num_train_nodes": int(bias_influence.shape[0]),
                }
            )
    return ExperimentResult("table2_influence_correlation", rows, {"preset": preset.name})


def table3_accuracy_bias(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Table III: accuracy and bias of GCN, Vanilla vs Reg.

    Expected shape: on every dataset the fairness-regularised model has lower
    bias *and* lower accuracy than vanilla training.
    """
    preset = _resolve(preset)
    datasets = list(datasets or preset.strong_homophily_datasets)
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, seed=seed, scale=preset.dataset_scale)
        settings = preset.method_settings(dataset, seed=seed)
        outcome = run_all_methods(
            graph,
            "gcn",
            settings,
            methods=["reg"],
            hidden_features=preset.hidden_features,
        )
        for method in ("vanilla", "reg"):
            evaluation = outcome["evaluations"][method]
            rows.append(
                {
                    "dataset": dataset,
                    "method": method,
                    "accuracy_percent": 100.0 * evaluation.accuracy,
                    "bias": evaluation.bias,
                }
            )
    return ExperimentResult("table3_accuracy_bias", rows, {"preset": preset.name})


def table4_ppfr_effectiveness(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    methods: Sequence[str] = ("reg", "dpreg", "dpfr", "ppfr"),
) -> ExperimentResult:
    """Table IV: Δbias, Δrisk and Δ of every method on the strong-homophily grid.

    Expected shape: Reg has Δ < 0 (risk increases); DPReg and PPFR have Δ > 0
    with DPReg paying a much larger accuracy cost; PPFR beats DPFR per unit of
    accuracy lost.
    """
    preset = _resolve(preset)
    datasets = list(datasets or preset.strong_homophily_datasets)
    models = list(models or preset.models)
    rows = []
    evaluations_meta: Dict[str, Dict] = {}
    for dataset in datasets:
        graph = load_dataset(dataset, seed=seed, scale=preset.dataset_scale)
        settings = preset.method_settings(dataset, seed=seed)
        for model_name in models:
            outcome = run_all_methods(
                graph,
                model_name,
                settings,
                methods=list(methods),
                hidden_features=preset.hidden_features,
            )
            vanilla = outcome["evaluations"]["vanilla"]
            evaluations_meta[f"{dataset}/{model_name}/vanilla"] = vanilla.to_dict()
            for method in methods:
                delta = outcome["deltas"][method]
                evaluation = outcome["evaluations"][method]
                rows.append(
                    {
                        "dataset": dataset,
                        "model": model_name,
                        "method": method,
                        "delta_bias_percent": 100.0 * delta.delta_bias,
                        "delta_risk_percent": 100.0 * delta.delta_risk,
                        "delta_combined": delta.delta_combined,
                        "delta_accuracy_percent": 100.0 * delta.delta_accuracy,
                        "accuracy_percent": 100.0 * evaluation.accuracy,
                    }
                )
    return ExperimentResult(
        "table4_ppfr_effectiveness", rows, {"preset": preset.name, "vanilla": evaluations_meta}
    )


def table5_weak_homophily(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    methods: Sequence[str] = ("reg", "dpreg", "dpfr", "ppfr"),
) -> ExperimentResult:
    """Table V: the same method grid on weak-homophily graphs (GCN only).

    Expected shape: the fairness–privacy trade-off is attenuated — Reg's Δ is
    less negative (or positive) than on the strong-homophily datasets, and DP
    becomes competitive with PP.
    """
    preset = _resolve(preset)
    datasets = list(datasets or preset.weak_homophily_datasets)
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, seed=seed, scale=preset.dataset_scale)
        settings = preset.method_settings(dataset, seed=seed)
        outcome = run_all_methods(
            graph, "gcn", settings, methods=list(methods), hidden_features=preset.hidden_features
        )
        for method in methods:
            delta = outcome["deltas"][method]
            rows.append(
                {
                    "dataset": dataset,
                    "method": method,
                    "delta_accuracy_percent": 100.0 * delta.delta_accuracy,
                    "delta_bias_percent": 100.0 * delta.delta_bias,
                    "delta_risk_percent": 100.0 * delta.delta_risk,
                    "delta_combined": delta.delta_combined,
                }
            )
    return ExperimentResult("table5_weak_homophily", rows, {"preset": preset.name})


def proposition_tradeoff_diagnostics(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Diagnostics behind Lemma V.1 / Proposition V.2.

    For each dataset surrogate: the estimated SBM probabilities (p, q), the
    analytic and empirical 2-hop ratios of Eq. (5), the edge homophily, and
    the vanilla-model bias — the quantities the theoretical trade-off argument
    rests on.
    """
    preset = _resolve(preset)
    datasets = list(datasets or (preset.strong_homophily_datasets + preset.weak_homophily_datasets))
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, seed=seed, scale=preset.dataset_scale)
        p, q = class_linking_probabilities(graph.adjacency, graph.labels)
        settings = preset.method_settings(dataset, seed=seed)
        model = build_model(
            "gcn",
            in_features=graph.num_features,
            num_classes=graph.num_classes,
            hidden_features=preset.hidden_features,
            rng=settings.model_seed,
        )
        Trainer(model, settings.train).fit(graph)
        posteriors = model.predict_proba(graph.features, graph.adjacency)
        rows.append(
            {
                "dataset": dataset,
                "edge_homophily": edge_homophily(graph.adjacency, graph.labels),
                "p_intra": p,
                "q_inter": q,
                "two_hop_ratio_theory": two_hop_ratio_theoretical(p, q),
                "two_hop_ratio_empirical": two_hop_ratio_empirical(graph.adjacency),
                "vanilla_bias": bias_from_graph(posteriors, graph),
            }
        )
    return ExperimentResult("proposition_tradeoff_diagnostics", rows, {"preset": preset.name})
