"""Reproduction of the paper's tables (II, III, IV, V) plus Prop. V.2 diagnostics.

Every table *declares* its (dataset × model × method × seed) grid as
:class:`~repro.experiments.grid.CellSpec` lists and executes it through a
:class:`~repro.experiments.grid.GridRunner` — serial by default, thread/
process-parallel via the runner (or the CLI's ``--jobs``), with shared work
deduplicated by the runner's artifact cache.  Row assembly is pure
projection of the cell payloads, so executor choice and cache state never
change results.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.experiments.grid import CellSpec, GridRunner, run_grid
from repro.experiments.presets import ExperimentPreset
from repro.experiments.reporting import ExperimentResult

PresetLike = Union[str, ExperimentPreset]


def _resolve(preset: PresetLike) -> ExperimentPreset:
    return CellSpec.resolve_preset(preset)


def table2_influence_correlation(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    runner: Optional[GridRunner] = None,
) -> ExperimentResult:
    """Table II: Pearson r between ``I_fbias`` and ``I_frisk``.

    For every (dataset, model) cell a victim model is vanilla-trained, the
    per-node influences on bias and risk are estimated and their Pearson
    correlation reported.  The paper's headline observation — |r| is mostly
    below the "conformity" threshold of 0.3 or outright negative — motivates
    handling privacy in the data space rather than through the QCLP.
    """
    preset = _resolve(preset)
    datasets = list(datasets or preset.strong_homophily_datasets)
    models = list(models or preset.models)
    specs = [
        CellSpec(kind="influence", dataset=dataset, preset=preset, model=model, seed=seed)
        for dataset in datasets
        for model in models
    ]
    rows = [
        {
            "dataset": cell.spec.dataset,
            "model": cell.spec.model,
            "pearson_r": cell.payload["pearson_r"],
            "num_train_nodes": cell.payload["num_train_nodes"],
        }
        for cell in run_grid(specs, runner)
    ]
    return ExperimentResult("table2_influence_correlation", rows, {"preset": preset.name})


def table3_accuracy_bias(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    runner: Optional[GridRunner] = None,
) -> ExperimentResult:
    """Table III: accuracy and bias of GCN, Vanilla vs Reg.

    Expected shape: on every dataset the fairness-regularised model has lower
    bias *and* lower accuracy than vanilla training.
    """
    preset = _resolve(preset)
    datasets = list(datasets or preset.strong_homophily_datasets)
    specs = [
        CellSpec(
            kind="methods",
            dataset=dataset,
            preset=preset,
            model="gcn",
            methods=("vanilla", "reg"),
            seed=seed,
        )
        for dataset in datasets
    ]
    rows: List[dict] = []
    for cell in run_grid(specs, runner):
        for method in ("vanilla", "reg"):
            evaluation = cell.payload["evaluations"][method]
            rows.append(
                {
                    "dataset": cell.spec.dataset,
                    "method": method,
                    "accuracy_percent": 100.0 * evaluation["accuracy"],
                    "bias": evaluation["bias"],
                }
            )
    return ExperimentResult("table3_accuracy_bias", rows, {"preset": preset.name})


def table4_ppfr_effectiveness(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    methods: Sequence[str] = ("reg", "dpreg", "dpfr", "ppfr"),
    runner: Optional[GridRunner] = None,
) -> ExperimentResult:
    """Table IV: Δbias, Δrisk and Δ of every method on the strong-homophily grid.

    Expected shape: Reg has Δ < 0 (risk increases); DPReg and PPFR have Δ > 0
    with DPReg paying a much larger accuracy cost; PPFR beats DPFR per unit of
    accuracy lost.
    """
    preset = _resolve(preset)
    datasets = list(datasets or preset.strong_homophily_datasets)
    models = list(models or preset.models)
    methods = tuple(methods)
    specs = [
        CellSpec(
            kind="methods",
            dataset=dataset,
            preset=preset,
            model=model,
            methods=("vanilla",) + methods,
            seed=seed,
        )
        for dataset in datasets
        for model in models
    ]
    rows: List[dict] = []
    evaluations_meta: dict = {}
    for cell in run_grid(specs, runner):
        vanilla = cell.payload["evaluations"]["vanilla"]
        meta_key = f"{cell.spec.dataset}/{cell.spec.model}/vanilla"
        evaluations_meta[meta_key] = {
            key: value for key, value in vanilla.items() if not key.startswith(("auc_", "mean_", "max_"))
        }
        for method in methods:
            delta = cell.payload["deltas"][method]
            evaluation = cell.payload["evaluations"][method]
            rows.append(
                {
                    "dataset": cell.spec.dataset,
                    "model": cell.spec.model,
                    "method": method,
                    "delta_bias_percent": delta["delta_bias_percent"],
                    "delta_risk_percent": delta["delta_risk_percent"],
                    "delta_combined": delta["delta_combined"],
                    "delta_accuracy_percent": delta["delta_accuracy_percent"],
                    "accuracy_percent": 100.0 * evaluation["accuracy"],
                }
            )
    return ExperimentResult(
        "table4_ppfr_effectiveness", rows, {"preset": preset.name, "vanilla": evaluations_meta}
    )


def table5_weak_homophily(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    methods: Sequence[str] = ("reg", "dpreg", "dpfr", "ppfr"),
    runner: Optional[GridRunner] = None,
) -> ExperimentResult:
    """Table V: the same method grid on weak-homophily graphs (GCN only).

    Expected shape: the fairness–privacy trade-off is attenuated — Reg's Δ is
    less negative (or positive) than on the strong-homophily datasets, and DP
    becomes competitive with PP.
    """
    preset = _resolve(preset)
    datasets = list(datasets or preset.weak_homophily_datasets)
    methods = tuple(methods)
    specs = [
        CellSpec(
            kind="methods",
            dataset=dataset,
            preset=preset,
            model="gcn",
            methods=("vanilla",) + methods,
            seed=seed,
        )
        for dataset in datasets
    ]
    rows: List[dict] = []
    for cell in run_grid(specs, runner):
        for method in methods:
            delta = cell.payload["deltas"][method]
            rows.append(
                {
                    "dataset": cell.spec.dataset,
                    "method": method,
                    "delta_accuracy_percent": delta["delta_accuracy_percent"],
                    "delta_bias_percent": delta["delta_bias_percent"],
                    "delta_risk_percent": delta["delta_risk_percent"],
                    "delta_combined": delta["delta_combined"],
                }
            )
    return ExperimentResult("table5_weak_homophily", rows, {"preset": preset.name})


def proposition_tradeoff_diagnostics(
    preset: PresetLike = "quick",
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    runner: Optional[GridRunner] = None,
) -> ExperimentResult:
    """Diagnostics behind Lemma V.1 / Proposition V.2.

    For each dataset surrogate: the estimated SBM probabilities (p, q), the
    analytic and empirical 2-hop ratios of Eq. (5), the edge homophily, and
    the vanilla-model bias — the quantities the theoretical trade-off argument
    rests on.
    """
    preset = _resolve(preset)
    datasets = list(datasets or (preset.strong_homophily_datasets + preset.weak_homophily_datasets))
    specs = [
        CellSpec(kind="diagnostics", dataset=dataset, preset=preset, model="gcn", seed=seed)
        for dataset in datasets
    ]
    rows = [
        {"dataset": cell.spec.dataset, **cell.payload} for cell in run_grid(specs, runner)
    ]
    return ExperimentResult("proposition_tradeoff_diagnostics", rows, {"preset": preset.name})
