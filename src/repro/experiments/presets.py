"""Experiment presets controlling dataset scale and training budgets.

The paper's grid (3 datasets × 3 models × 5 methods, plus ablations) is
reproduced at three sizes:

* ``smoke``  — minutes on a laptop CPU; used by the benchmark suite,
* ``quick``  — the default for interactive runs,
* ``full``   — the full surrogate sizes and training budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.config import MethodSettings, PPFRConfig
from repro.fairness.reweighting import FairnessReweightingConfig
from repro.gnn.trainer import TrainConfig
from repro.influence.functions import InfluenceConfig


@dataclass(frozen=True)
class ExperimentPreset:
    """A bundle of sizes and budgets for one experiment run.

    ``batch_size`` / ``fanouts`` (``None`` = full-batch training, the
    default) switch every method training of the preset to neighbour-sampled
    mini-batches — the CLI's ``--batch-size`` / ``--fanouts`` flags derive a
    modified preset, so batched and full-batch runs key separately in the
    artifact cache.
    """

    name: str
    dataset_scale: float
    epochs: int
    strong_homophily_datasets: Tuple[str, ...] = ("cora", "citeseer", "pubmed")
    weak_homophily_datasets: Tuple[str, ...] = ("enzymes", "credit")
    models: Tuple[str, ...] = ("gcn", "gat", "graphsage")
    hidden_features: int = 16
    fairness_weight: float = 100.0
    dp_epsilon: float = 4.0
    gamma: float = 0.2
    fine_tune_fraction: float = 0.2
    cg_iterations: int = 20
    attack_seed: int = 0
    batch_size: Optional[int] = None
    fanouts: Optional[Tuple[Optional[int], ...]] = None
    eval_interval: int = 1

    def method_settings(self, dataset: str, seed: int = 0) -> MethodSettings:
        """Build the :class:`MethodSettings` for one dataset under this preset.

        Following the paper, EdgeRand is used on Cora / Citeseer and the more
        scalable LapGraph on Pubmed (and on the weak-homophily graphs).
        """
        mechanism = "edge_rand" if dataset in ("cora", "citeseer") else "lap_graph"
        reweighting = FairnessReweightingConfig(
            influence=InfluenceConfig(cg_iterations=self.cg_iterations)
        )
        return MethodSettings(
            train=TrainConfig(
                epochs=self.epochs,
                patience=None,
                batch_size=self.batch_size,
                fanouts=self.fanouts,
                eval_interval=self.eval_interval,
            ),
            fairness_weight=self.fairness_weight,
            dp_epsilon=self.dp_epsilon,
            dp_mechanism=mechanism,
            ppfr=PPFRConfig(
                gamma=self.gamma,
                fine_tune_fraction=self.fine_tune_fraction,
                reweighting=reweighting,
                seed=seed,
            ),
            attack_seed=self.attack_seed,
            model_seed=seed,
        )


PRESETS: Dict[str, ExperimentPreset] = {
    "smoke": ExperimentPreset(
        name="smoke",
        dataset_scale=0.45,
        epochs=40,
        models=("gcn",),
        cg_iterations=10,
    ),
    "quick": ExperimentPreset(
        name="quick",
        dataset_scale=0.6,
        epochs=80,
        models=("gcn", "graphsage"),
        cg_iterations=20,
    ),
    "full": ExperimentPreset(
        name="full",
        dataset_scale=1.0,
        epochs=150,
        models=("gcn", "gat", "graphsage"),
        cg_iterations=30,
    ),
}


def get_preset(name: str) -> ExperimentPreset:
    """Look up a preset by name (case-insensitive)."""
    key = name.lower()
    if key not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}")
    return PRESETS[key]
