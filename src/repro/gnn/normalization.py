"""Adjacency and feature normalisation used by the GNN layers.

All propagation-matrix builders dispatch on the input type: dense arrays
take the original dense path, :class:`repro.sparse.CSRMatrix` inputs are
routed to the CSR kernels.  Models should prefer
:func:`build_propagation`, which additionally consults the active compute
backend (``dense`` / ``sparse`` / ``auto``) so the whole pipeline can be
switched without touching layer code.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.graphs.laplacian import gcn_normalization
from repro.sparse.backend import PropagationOperator, build_propagation
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import mean_aggregation_csr
from repro.utils.validation import check_adjacency

AdjacencyLike = Union[np.ndarray, CSRMatrix]

__all__ = [
    "gcn_norm",
    "left_norm",
    "mean_aggregation_matrix",
    "attention_mask",
    "row_normalize_features",
    "build_propagation",
    "PropagationOperator",
]


def gcn_norm(adjacency: AdjacencyLike) -> AdjacencyLike:
    """Symmetric GCN propagation matrix ``D̃^{-1/2}(A+I)D̃^{-1/2}``."""
    return gcn_normalization(adjacency, mode="symmetric")


def left_norm(adjacency: AdjacencyLike) -> AdjacencyLike:
    """Left-normalised propagation ``D̃^{-1}(A+I)`` (paper's risk model)."""
    return gcn_normalization(adjacency, mode="left")


def mean_aggregation_matrix(
    adjacency: AdjacencyLike, include_self: bool = True
) -> AdjacencyLike:
    """Row-stochastic neighbourhood-mean operator used by GraphSAGE.

    With ``include_self=False`` the matrix averages over neighbours only
    (self information is concatenated separately by the SAGE layer).
    Isolated nodes receive an all-zero row.
    """
    if isinstance(adjacency, CSRMatrix):
        return mean_aggregation_csr(adjacency, include_self=include_self)
    adjacency = check_adjacency(adjacency)
    base = adjacency.copy()
    if include_self:
        base = base + np.eye(base.shape[0])
    degrees = base.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(degrees > 0, base / degrees, 0.0)
    return result


def attention_mask(adjacency: np.ndarray) -> np.ndarray:
    """Boolean mask of *disallowed* attention positions for GAT.

    Attention is restricted to first-order neighbours plus the node itself;
    every other position is masked to ``-inf`` before the softmax.  GAT's
    dense all-pairs attention has no sparse counterpart, so this helper is
    dense-only.
    """
    adjacency = check_adjacency(adjacency)
    allowed = (adjacency > 0) | np.eye(adjacency.shape[0], dtype=bool)
    return ~allowed


def row_normalize_features(features: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-normalise features to unit L1 norm (standard citation-net pre-processing)."""
    features = np.asarray(features, dtype=np.float64)
    norms = np.abs(features).sum(axis=1, keepdims=True)
    return features / np.maximum(norms, eps)
