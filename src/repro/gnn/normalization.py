"""Adjacency and feature normalisation used by the GNN layers."""

from __future__ import annotations

import numpy as np

from repro.graphs.laplacian import gcn_normalization
from repro.utils.validation import check_adjacency


def gcn_norm(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric GCN propagation matrix ``D̃^{-1/2}(A+I)D̃^{-1/2}``."""
    return gcn_normalization(adjacency, mode="symmetric")


def left_norm(adjacency: np.ndarray) -> np.ndarray:
    """Left-normalised propagation ``D̃^{-1}(A+I)`` (paper's risk model)."""
    return gcn_normalization(adjacency, mode="left")


def mean_aggregation_matrix(adjacency: np.ndarray, include_self: bool = True) -> np.ndarray:
    """Row-stochastic neighbourhood-mean operator used by GraphSAGE.

    With ``include_self=False`` the matrix averages over neighbours only
    (self information is concatenated separately by the SAGE layer).
    Isolated nodes receive an all-zero row.
    """
    adjacency = check_adjacency(adjacency)
    base = adjacency.copy()
    if include_self:
        base = base + np.eye(base.shape[0])
    degrees = base.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(degrees > 0, base / degrees, 0.0)
    return result


def attention_mask(adjacency: np.ndarray) -> np.ndarray:
    """Boolean mask of *disallowed* attention positions for GAT.

    Attention is restricted to first-order neighbours plus the node itself;
    every other position is masked to ``-inf`` before the softmax.
    """
    adjacency = check_adjacency(adjacency)
    allowed = (adjacency > 0) | np.eye(adjacency.shape[0], dtype=bool)
    return ~allowed


def row_normalize_features(features: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-normalise features to unit L1 norm (standard citation-net pre-processing)."""
    features = np.asarray(features, dtype=np.float64)
    norms = np.abs(features).sum(axis=1, keepdims=True)
    return features / np.maximum(norms, eps)
