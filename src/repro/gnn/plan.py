"""Trace-compiled fused inference plans for sampled ego-block serving.

The module-tree forward pays pure Python overhead on every cold-miss
request: ``Module.__call__`` traversal, one autodiff tape node per tensor
op, and a backend-registry lookup per propagation.  This module removes all
of it from the serving hot path with the trace-once/replay-many idiom
(drjit's ``JitFlag.LoopRecord`` applied to inference):

* **Recording** — a model exports its inference-time computation once
  through the kernel-extraction hooks (``Module.plan_kernels`` /
  ``GNNModel.record_inference_plan``) into a :class:`PlanRecorder`, which
  assembles a flat :class:`InferencePlan`: an ordered tuple of pre-resolved
  backend kernels (dense matmul, spmm, bias add, ReLU, stable row
  normalisation, fused SAGE layer) bound to the model's parameter arrays.
  Architectures without a flat kernel decomposition (GAT's data-dependent
  attention) raise :class:`PlanUnsupported` and keep their fallback path.

* **Megabatching** — :func:`pack_blocks` packs the per-segment ego-block
  stacks of one coalesced request flush into a single
  :class:`PackedBatch`: per layer, one block-diagonal propagation matrix
  (:func:`repro.sparse.ops.block_diag_csr`) over the vertically stacked
  segment features, so the whole megabatch runs **one** spmm (or dense
  matmul) per layer instead of one per segment.  The per-segment
  propagation weights are built by lean vectorised kernels that replicate
  :func:`repro.gnn.sampling.block_propagation` bit-for-bit without the
  COO round trip.

* **Replay** — :meth:`InferencePlan.replay` executes the kernel list as
  plain NumPy over a :class:`PackedBatch`: no module traversal, no tape, no
  registry lookups, with matmul outputs written into preallocated
  shape-bucketed scratch buffers (:class:`BufferPool`).  On the sparse
  backend each output row is bitwise equal to the unfused
  ``predict_logits_blocks`` row for the same blocks; the dense backend
  agrees to floating-point round-off.

Plans are cached process-wide in :func:`shared_plan_cache` (surfaced as
``ModelRegistry.plan_cache()``) keyed by ``(architecture signature hash,
parameter content hash, backend)`` — a registry hot-swap rebinds parameter
arrays, changes the content hash and therefore records a fresh plan instead
of replaying stale weights.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gnn.sampling import SampledBlock, block_propagation
from repro.obs.profile import active_profiler
from repro.obs.trace import span as obs_span
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import block_diag_csr

__all__ = [
    "PlanUnsupported",
    "PlanRecorder",
    "InferencePlan",
    "PlanCache",
    "BufferPool",
    "PackedLayer",
    "PackedBatch",
    "pack_blocks",
    "record_plan",
    "plan_params_hash",
    "shared_plan_cache",
]


class PlanUnsupported(RuntimeError):
    """The model has no flat inference-kernel decomposition (e.g. GAT)."""


# --------------------------------------------------------------------------- #
# Recording
# --------------------------------------------------------------------------- #
class PlanRecorder:
    """Collects the flat kernel list while a model traces its forward.

    Models append kernels in execution order through the methods below; each
    propagation-consuming kernel (:meth:`propagate`, :meth:`sage`) claims the
    next message-passing layer and fixes that layer's normalisation kind.
    Weight kernels bind the parameter **arrays** (no copy): a plan replays
    exactly the weights it was recorded over, and a ``load_state_dict``
    rebind is caught by the parameter content hash in the cache key.
    """

    def __init__(self) -> None:
        self._ops: List[Tuple[str, object]] = []
        self._kinds: List[str] = []

    def matmul(self, weight) -> None:
        """Dense feature transform ``x ← x @ W``."""
        self._ops.append(("matmul", weight.data))

    def bias(self, bias) -> None:
        """Broadcast bias add ``x ← x + b`` (ignored for ``bias=None``)."""
        if bias is not None:
            self._ops.append(("bias", bias.data))

    def propagate(self, kind: str) -> None:
        """Apply the next layer's propagation operator ``x ← P_l @ x``."""
        self._ops.append(("prop", len(self._kinds)))
        self._kinds.append(str(kind))

    def relu(self) -> None:
        self._ops.append(("relu", None))

    def normalize_stable(self, eps: float = 1e-12) -> None:
        """Zero-row-safe L2 row normalisation (``F.normalize_rows_stable``)."""
        self._ops.append(("normalize", float(eps)))

    def sage(self, weight_self, weight_neighbor, bias, kind: str) -> None:
        """Fused SAGE layer ``x ← x_dst @ W_s + (P_l @ x) @ W_n + b``."""
        layer = len(self._kinds)
        self._kinds.append(str(kind))
        self._ops.append(
            (
                "sage",
                (
                    layer,
                    weight_self.data,
                    weight_neighbor.data,
                    None if bias is None else bias.data,
                ),
            )
        )

    def build(self) -> "InferencePlan":
        if not self._kinds:
            raise PlanUnsupported("recording produced no propagation kernels")
        return InferencePlan(tuple(self._ops), tuple(self._kinds))


def record_plan(model) -> "InferencePlan":
    """Trace ``model``'s sampled inference forward into a flat plan.

    Raises :class:`PlanUnsupported` when the model (or one of its modules)
    has no flat kernel decomposition, or when the recorded layer count
    disagrees with the model's declared sampled depth.
    """
    recorder = PlanRecorder()
    trace = getattr(model, "record_inference_plan", None)
    if trace is None:
        raise PlanUnsupported(
            f"{type(model).__name__} does not record inference plans"
        )
    try:
        trace(recorder)
    except NotImplementedError as error:
        raise PlanUnsupported(str(error)) from error
    plan = recorder.build()
    depth = getattr(model, "message_passing_layers", None)
    if depth is not None and plan.num_layers != depth:
        raise PlanUnsupported(
            f"recorded {plan.num_layers} propagation kernels for a "
            f"{depth}-layer model"
        )
    return plan


def plan_params_hash(model) -> str:
    """Content hash of the model's parameters (plan-cache staleness key)."""
    import hashlib

    digest = hashlib.sha256()
    for name, param in model.named_parameters():
        digest.update(name.encode("utf-8"))
        digest.update(param.data.tobytes())
    return digest.hexdigest()[:16]


# --------------------------------------------------------------------------- #
# Megabatch packing
# --------------------------------------------------------------------------- #
@dataclass
class PackedLayer:
    """One layer's packed propagation operator and dst-row bookkeeping.

    ``matrix`` is the block-diagonal propagation (CSR, or its densified form
    on the dense backend); ``dst_take`` gathers each segment's destination
    prefix out of the stacked source rows (``None`` when a single segment
    makes the prefix a plain ``[:num_dst]`` slice).
    """

    matrix: object
    num_dst: int
    dst_take: Optional[np.ndarray]


@dataclass
class PackedBatch:
    """Everything one replay needs: feature gather + per-layer operators."""

    src_gather: np.ndarray
    layers: Tuple[PackedLayer, ...]
    num_segments: int


def _insert_self_loops_parts(
    adjacency: CSRMatrix,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(indptr, indices, data)`` of the block adjacency plus unit dst
    self-loops, inserted in sorted column position without a COO round trip.

    Bit-for-bit equal to :func:`repro.gnn.sampling._with_self_loops` (same
    entries, same within-row order, same values) at O(nnz) instead of the
    O(nnz log nnz) lexsort.  Valid because dst nodes are a prefix of the
    source set (local self column of dst ``i`` is ``i``) and blocks never
    store self-loops.
    """
    num_dst = adjacency.shape[0]
    counts = np.diff(adjacency.indptr)
    rows = np.repeat(np.arange(num_dst, dtype=np.int64), counts)
    before = np.zeros(num_dst, dtype=np.int64)
    nonempty = np.flatnonzero(counts)
    if nonempty.size:
        before[nonempty] = np.add.reduceat(
            (adjacency.indices < rows).astype(np.int64),
            adjacency.indptr[nonempty],
        )
    insert_at = adjacency.indptr[:-1] + before
    diag = np.arange(num_dst, dtype=np.int64)
    indices = np.insert(adjacency.indices, insert_at, diag)
    data = np.insert(adjacency.data, insert_at, 1.0)
    indptr = adjacency.indptr + np.arange(num_dst + 1, dtype=np.int64)
    return indptr, indices, data


def _segment_propagation(block: SampledBlock, kind: str) -> CSRMatrix:
    """The normalised propagation of one segment's block, built lean.

    Replicates :func:`repro.gnn.sampling.block_propagation` value-for-value
    (same multiplication order, so the products are bitwise identical) while
    skipping the ``from_coo`` lexsorts and the construction-time validation —
    this runs once per segment per layer on the serving hot path.
    """
    degrees = block.src_degrees
    num_dst = block.num_dst
    if kind == "gcn":
        indptr, indices, data = _insert_self_loops_parts(block.adjacency)
        inv_sqrt = 1.0 / np.sqrt(degrees)
        data = data * np.repeat(inv_sqrt[:num_dst], np.diff(indptr))
        data = data * inv_sqrt[indices]
        return CSRMatrix._from_parts(indptr, indices, data, block.adjacency.shape)
    if kind == "mean_noself":
        adjacency = block.adjacency
        counts = np.diff(adjacency.indptr)
        sums = np.zeros(num_dst, dtype=np.float64)
        nonempty = np.flatnonzero(counts)
        if nonempty.size:
            sums[nonempty] = np.add.reduceat(
                adjacency.data, adjacency.indptr[nonempty]
            )
        inverse = np.zeros_like(sums)
        populated = sums > 0
        inverse[populated] = 1.0 / sums[populated]
        data = adjacency.data * np.repeat(inverse, counts)
        return CSRMatrix._from_parts(
            adjacency.indptr, adjacency.indices, data, adjacency.shape
        )
    # Uncommon kinds fall back to the reference builder.
    return block_propagation(block, kind)


def pack_blocks(
    stacks: Sequence[Sequence[SampledBlock]],
    kinds: Sequence[str],
    dense: bool = False,
) -> PackedBatch:
    """Traced wrapper around :func:`_pack_blocks` (``plan.pack`` span)."""
    with obs_span("plan.pack") as pack_span:
        pack_span.set(segments=len(stacks))
        return _pack_blocks(stacks, kinds, dense)


def _pack_blocks(
    stacks: Sequence[Sequence[SampledBlock]],
    kinds: Sequence[str],
    dense: bool = False,
) -> PackedBatch:
    """Pack per-segment ego-block stacks into one replayable megabatch.

    ``stacks`` holds one block stack (input layer first, all the same depth)
    per request segment; ``kinds`` the per-layer normalisation recorded in
    the plan.  Segment outputs stack vertically: row band ``i`` of every
    layer belongs to segment ``i``, and because ``blocks[l].dst_nodes ==
    blocks[l+1].src_nodes`` within a segment, the bands chain across layers
    with no row shuffling.
    """
    if not stacks:
        raise ValueError("pack_blocks needs at least one segment")
    depth = len(kinds)
    for stack in stacks:
        if len(stack) != depth:
            raise ValueError(
                f"segment stack depth {len(stack)} != plan depth {depth}"
            )
    if len(stacks) == 1:
        src_gather = stacks[0][0].src_nodes
    else:
        src_gather = np.concatenate([stack[0].src_nodes for stack in stacks])
    layers: List[PackedLayer] = []
    for level in range(depth):
        matrices = [
            _segment_propagation(stack[level], kinds[level]) for stack in stacks
        ]
        packed = matrices[0] if len(matrices) == 1 else block_diag_csr(matrices)
        matrix: object = packed.to_dense() if dense else packed
        dst_counts = [stack[level].num_dst for stack in stacks]
        if len(stacks) == 1:
            dst_take = None
        else:
            src_counts = np.asarray(
                [stack[level].num_src for stack in stacks], dtype=np.int64
            )
            offsets = np.concatenate(([0], np.cumsum(src_counts)[:-1]))
            dst_take = np.concatenate(
                [
                    offset + np.arange(count, dtype=np.int64)
                    for offset, count in zip(offsets, dst_counts)
                ]
            )
        layers.append(PackedLayer(matrix, int(sum(dst_counts)), dst_take))
    return PackedBatch(src_gather, tuple(layers), len(stacks))


# --------------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------------- #
class BufferPool:
    """Shape-bucketed scratch buffers for replay matmul outputs.

    Row counts round up to the next power of two, so a handful of buffers
    serves every miss-batch size; views stay C-contiguous (row slices of a
    C-order array), which is what ``np.matmul(..., out=...)`` needs.  Not
    thread-safe — the engine serialises replays per pool.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[int, int], np.ndarray] = {}
        self._nbytes = 0

    def take(self, rows: int, cols: int) -> Optional[np.ndarray]:
        if rows <= 0 or cols <= 0:
            return None
        bucket = 1 << (rows - 1).bit_length()
        buffer = self._buffers.get((bucket, cols))
        if buffer is None:
            buffer = np.empty((bucket, cols), dtype=np.float64)
            self._buffers[(bucket, cols)] = buffer
            self._nbytes += buffer.nbytes
            profiler = active_profiler()
            if profiler is not None:
                profiler.memory("plan.buffer_pool", self._nbytes)
        return buffer[:rows]

    @property
    def nbytes(self) -> int:
        """Total bytes resident across all pooled buffers."""
        return self._nbytes

    def __len__(self) -> int:
        return len(self._buffers)


class InferencePlan:
    """A recorded, replayable flat kernel list for one architecture.

    ``ops`` is the ordered kernel tuple; ``kinds`` the per-message-passing-
    layer propagation normalisation (consumed by :func:`pack_blocks`).
    Replay is pure NumPy: the only per-kernel dispatch is one tuple unpack
    and one branch.
    """

    __slots__ = ("ops", "kinds")

    def __init__(
        self, ops: Tuple[Tuple[str, object], ...], kinds: Tuple[str, ...]
    ) -> None:
        self.ops = ops
        self.kinds = kinds

    @property
    def num_layers(self) -> int:
        return len(self.kinds)

    @property
    def op_count(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InferencePlan(ops={self.op_count}, kinds={self.kinds})"

    def replay(
        self,
        features: np.ndarray,
        packed: PackedBatch,
        pool: Optional[BufferPool] = None,
    ) -> np.ndarray:
        """Traced wrapper around :meth:`_replay` (``plan.replay`` span)."""
        with obs_span("plan.replay") as replay_span:
            replay_span.set(
                rows=int(packed.src_gather.size), segments=packed.num_segments
            )
            return self._replay(features, packed, pool)

    def _replay(
        self,
        features: np.ndarray,
        packed: PackedBatch,
        pool: Optional[BufferPool] = None,
    ) -> np.ndarray:
        """Execute the plan over a packed megabatch; returns the logit rows.

        Matmul outputs go to the pool (when given); every other kernel
        operates in place on arrays the replay owns — the initial feature
        gather and every propagation output are fresh allocations, and a
        pooled matmul output is always consumed by the propagation that
        follows it, so no pooled buffer outlives its use or escapes as the
        result.
        """
        x = np.take(
            np.asarray(features, dtype=np.float64), packed.src_gather, axis=0
        )
        profiler = active_profiler()
        frame = x_in = None
        for op, payload in self.ops:
            if profiler is not None:
                frame = profiler.begin()
                x_in = x
            if op == "matmul":
                out = (
                    pool.take(x.shape[0], payload.shape[1])
                    if pool is not None
                    else None
                )
                if out is None:
                    x = x @ payload
                else:
                    x = np.matmul(x, payload, out=out)
            elif op == "prop":
                matrix = packed.layers[payload].matrix
                if isinstance(matrix, CSRMatrix):
                    x = matrix.matmul_dense(x)
                else:
                    x = matrix @ x
            elif op == "bias":
                x = np.add(x, payload, out=x)
            elif op == "relu":
                # Matches Tensor.relu (x * (x > 0)) bit-for-bit.
                x = np.multiply(x, x > 0, out=x)
            elif op == "normalize":
                eps = payload
                norm = ((x * x).sum(axis=1, keepdims=True) + eps * eps) ** 0.5
                x = x / (norm + eps)
            elif op == "sage":
                layer_index, w_self, w_neigh, bias = payload
                layer = packed.layers[layer_index]
                aggregated = (
                    layer.matrix.matmul_dense(x)
                    if isinstance(layer.matrix, CSRMatrix)
                    else layer.matrix @ x
                )
                x_dst = (
                    x[: layer.num_dst]
                    if layer.dst_take is None
                    else x[layer.dst_take]
                )
                x = x_dst @ w_self + aggregated @ w_neigh
                if bias is not None:
                    x = np.add(x, bias, out=x)
            else:  # pragma: no cover - recorder emits only the kinds above
                raise ValueError(f"unknown plan op {op!r}")
            if profiler is not None:
                if op == "matmul":
                    est_args = (x_in, payload)
                elif op in ("prop", "sage"):
                    # CSR propagation fires the nested spmm hook, which
                    # already carries the flops — don't double count.
                    index = payload if op == "prop" else payload[0]
                    matrix = packed.layers[index].matrix
                    est_args = () if isinstance(matrix, CSRMatrix) else (matrix, x_in)
                else:
                    est_args = (x_in,)
                profiler.end(frame, "plan." + op, est_args, x)
        return x


# --------------------------------------------------------------------------- #
# Plan cache
# --------------------------------------------------------------------------- #
class PlanCache:
    """Thread-safe LRU of recorded plans, shared across engine replicas.

    Keys are ``(architecture signature hash, parameter content hash,
    backend)`` — see the module docstring for why the parameter hash makes
    registry hot-swaps self-invalidating.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Tuple, InferencePlan]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._recorded = 0

    def get(self, key: Tuple) -> Optional[InferencePlan]:
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            return plan

    def put(self, key: Tuple, plan: InferencePlan) -> None:
        with self._lock:
            if key not in self._entries:
                self._recorded += 1
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def invalidate(self, signature_hash: Optional[str] = None) -> int:
        """Drop every plan (or only one architecture's); returns the count."""
        with self._lock:
            if signature_hash is None:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            stale = [key for key in self._entries if key[0] == signature_hash]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        self.invalidate()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def recorded(self) -> int:
        with self._lock:
            return self._recorded


_SHARED_PLANS: Optional[PlanCache] = None
_SHARED_PLANS_LOCK = threading.Lock()


def shared_plan_cache() -> PlanCache:
    """The process-wide plan cache every engine uses by default.

    One cache per process means replicas hosting the same registry version
    record a plan once and replay it everywhere (the ``ModelRegistry``
    surfaces this object as ``ModelRegistry.plan_cache()``).
    """
    global _SHARED_PLANS
    with _SHARED_PLANS_LOCK:
        if _SHARED_PLANS is None:
            _SHARED_PLANS = PlanCache()
        return _SHARED_PLANS
