"""Model evaluation helpers (accuracy, probability extraction)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gnn.models import GNNModel
from repro.graphs.graph import Graph
from repro.nn.losses import accuracy


def predict_probabilities(
    model: GNNModel, graph: Graph, adjacency: Optional[np.ndarray] = None
) -> np.ndarray:
    """Softmax predictions of ``model`` on ``graph``.

    ``adjacency`` overrides the graph structure (used when evaluating a model
    that was fine-tuned on a perturbed graph but attacked through the original
    query interface).
    """
    structure = graph.adjacency if adjacency is None else adjacency
    return model.predict_proba(graph.features, structure)


def predict_labels(
    model: GNNModel, graph: Graph, adjacency: Optional[np.ndarray] = None
) -> np.ndarray:
    """Hard label predictions of ``model`` on ``graph``."""
    structure = graph.adjacency if adjacency is None else adjacency
    return model.predict_labels(graph.features, structure)


def evaluate_accuracy(
    model: GNNModel,
    graph: Graph,
    mask: Optional[np.ndarray] = None,
    adjacency: Optional[np.ndarray] = None,
) -> float:
    """Accuracy of ``model`` on the nodes selected by ``mask``.

    ``mask`` defaults to the graph's test mask.  Returns a percentage-free
    fraction in ``[0, 1]``.
    """
    if graph.labels is None:
        raise ValueError("graph has no labels to evaluate against")
    if mask is None:
        if graph.test_mask is None:
            raise ValueError("no mask provided and the graph has no test mask")
        mask = graph.test_mask
    structure = graph.adjacency if adjacency is None else adjacency
    logits = model.predict_logits(graph.features, structure)
    return accuracy(logits[mask], graph.labels[mask])
