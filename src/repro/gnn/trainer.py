"""Training loop for the victim GNNs.

The trainer supports the three training regimes required by the paper:

* **vanilla training** — cross-entropy on the labelled nodes (phase one of
  PPFR and the ``Vanilla`` baseline),
* **regularised training** — cross-entropy plus any number of differentiable
  regularisers such as the InFoRM fairness term (the ``Reg`` / ``DPReg``
  baselines),
* **fine-tuning** — continued training with per-sample loss weights
  ``(1 + w_v)`` and/or a perturbed adjacency matrix (PPFR, DPFR).

Each regime runs either **full-batch** (the default: one whole-graph
forward/backward per epoch, unchanged from the original trainer) or
**mini-batch** when ``batch_size`` is set: seed-node batches with per-layer
neighbour sampling (:mod:`repro.gnn.sampling`), so the per-step cost is
bounded by the batch's receptive field instead of the full graph.
Evaluation always runs full-graph (every ``eval_interval`` epochs).
Mini-batching falls back to the full-batch path when the loss needs
full-graph logits (regularised training — the InFoRM penalty is a global
quadratic form) or the model has no sampled forward path (GAT).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gnn.models import GNNModel
from repro.gnn.sampling import BatchSpec, NeighborSampler
from repro.graphs.graph import Graph
from repro.graphs.revision import ensure_revision
from repro.nn.losses import accuracy, cross_entropy, weighted_cross_entropy
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.tensor import Tensor
from repro.sparse.csr import CSRMatrix

Regularizer = Callable[[Tensor, Graph], Tensor]
"""A differentiable penalty taking (logits, graph) and returning a scalar tensor."""


@dataclass
class TrainConfig:
    """Hyper-parameters of a training run.

    ``batch_size`` switches training to neighbour-sampled mini-batches;
    ``fanouts`` is the per-layer neighbour budget (input layer first, one
    entry per message-passing layer; ``None`` entries — or ``fanouts=None``
    — sample exhaustively), ``batch_seed`` seeds the deterministic batch
    schedule and block sampling, and ``eval_interval`` spaces out the
    full-graph evaluation epochs (early stopping only ticks on evaluated
    epochs).  With ``batch_size=None`` (the default) the original
    full-batch path runs unchanged.

    ``sampled_eval`` routes the periodic train/val evaluation through the
    serving engine's ego-block path (:mod:`repro.gnn.inference`): instead of
    a Θ(N + m) full-graph forward, only the exhaustive receptive field of
    the labelled train/val nodes is computed, making the whole epoch loop
    independent of the unlabelled graph size.  Exhaustive ego blocks equal
    the full-graph forward to 1e-8, so accuracies (and therefore early
    stopping) are unchanged up to round-off; models without a sampled
    forward path (GAT) fall back to full-graph evaluation transparently.
    """

    epochs: int = 200
    learning_rate: float = 0.01
    weight_decay: float = 5e-4
    optimizer: str = "adam"
    patience: Optional[int] = 30
    min_epochs: int = 20
    track_best: bool = True
    verbose: bool = False
    batch_size: Optional[int] = None
    fanouts: Optional[Tuple[Optional[int], ...]] = None
    batch_seed: int = 0
    eval_interval: int = 1
    sampled_eval: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        if self.patience is not None and self.patience <= 0:
            raise ValueError("patience must be positive or None")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ValueError("batch_size must be positive or None")
        if self.fanouts is not None:
            if self.batch_size is None:
                raise ValueError("fanouts require batch_size to be set")
            self.fanouts = tuple(self.fanouts)
            for fanout in self.fanouts:
                if fanout is not None and fanout <= 0:
                    raise ValueError("fanouts must be positive or None (exhaustive)")
        if self.eval_interval <= 0:
            raise ValueError("eval_interval must be positive")

    def batch_spec(self) -> Optional[BatchSpec]:
        """The :class:`~repro.gnn.sampling.BatchSpec` this config describes."""
        if self.batch_size is None:
            return None
        return BatchSpec(
            batch_size=self.batch_size, fanouts=self.fanouts, seed=self.batch_seed
        )


@dataclass
class TrainResult:
    """Outcome of a training run."""

    history: Dict[str, List[float]] = field(default_factory=dict)
    best_val_accuracy: float = float("nan")
    best_epoch: int = -1
    final_train_accuracy: float = float("nan")
    final_val_accuracy: float = float("nan")
    epochs_run: int = 0


class Trainer:
    """Runs (re-)training of a GNN on a graph.

    ``batch_spec`` (or the equivalent ``TrainConfig`` batch fields) switches
    the training step to neighbour-sampled mini-batches; evaluation and
    early stopping stay full-graph.
    """

    def __init__(
        self,
        model: GNNModel,
        config: Optional[TrainConfig] = None,
        batch_spec: Optional[BatchSpec] = None,
    ) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.batch_spec = batch_spec

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def fit(
        self,
        graph: Graph,
        regularizers: Optional[Sequence[Regularizer]] = None,
        sample_weights: Optional[np.ndarray] = None,
        adjacency_override: Optional[np.ndarray] = None,
        epochs: Optional[int] = None,
    ) -> TrainResult:
        """Train ``self.model`` on ``graph``.

        Parameters
        ----------
        graph:
            The attributed graph with at least a train mask and labels.
        regularizers:
            Optional differentiable penalties added to the loss (e.g. the
            InFoRM fairness regulariser).
        sample_weights:
            Optional per-training-node multiplier ``(1 + w_v)`` in the order
            of ``graph.train_indices()``; ``None`` means uniform weighting.
        adjacency_override:
            Optional replacement structure used for *training only* (the
            perturbed graph of PPFR / DP baselines).  Evaluation metrics keep
            using the structure passed here as well, since that is the model
            the developer deploys.
        epochs:
            Optional override of ``config.epochs`` (used for fine-tuning where
            the epoch budget is a fraction of vanilla training).
        """
        if graph.labels is None or graph.train_mask is None:
            raise ValueError("training requires labels and a train mask")
        config = self.config
        total_epochs = epochs if epochs is not None else config.epochs
        if total_epochs <= 0:
            raise ValueError("epochs must be positive")
        regularizers = list(regularizers or [])

        train_idx = graph.train_indices()
        if sample_weights is not None:
            sample_weights = np.asarray(sample_weights, dtype=np.float64)
            if sample_weights.shape != (train_idx.size,):
                raise ValueError(
                    f"sample_weights must have shape ({train_idx.size},), "
                    f"got {sample_weights.shape}"
                )
            if np.any(sample_weights < 0):
                raise ValueError("sample_weights must be non-negative")

        adjacency = graph.adjacency if adjacency_override is None else np.asarray(
            adjacency_override, dtype=np.float64
        )
        # Scope the structure for the operator cache: owned tags (Graph /
        # perturbation producers) are reused, anything else gets a fresh
        # revision so every epoch of this run shares one normalisation while
        # a mutated caller-owned array can never hit a stale entry.
        ensure_revision(adjacency)

        batch_spec = self.batch_spec if self.batch_spec is not None else config.batch_spec()
        sampler: Optional[NeighborSampler] = None
        fanouts: Optional[Tuple[Optional[int], ...]] = None
        weight_lookup: Optional[np.ndarray] = None
        layers = self.model.message_passing_layers
        # Regularised losses need full-graph logits (InFoRM is a global
        # quadratic form) and GAT has no sampled forward path: both fall back
        # to the full-batch step so every method keeps running under a
        # batched configuration.
        if batch_spec is not None and not regularizers and layers is not None:
            fanouts = batch_spec.layer_fanouts(layers)
            structure = (
                graph.csr()
                if adjacency_override is None
                else CSRMatrix.from_dense(adjacency)
            )
            sampler = NeighborSampler(structure, seed=batch_spec.seed)
            if sample_weights is not None:
                weight_lookup = np.zeros(graph.num_nodes, dtype=np.float64)
                weight_lookup[train_idx] = sample_weights

        # Lazily-built ego-block evaluation state (sampled_eval): one sampler
        # per fit() call over the evaluation structure, shared across epochs.
        eval_state: Dict[str, object] = {}
        if config.sampled_eval and self.model.message_passing_layers is not None:
            eval_structure = (
                graph.csr()
                if adjacency_override is None
                else CSRMatrix.from_dense(adjacency)
            )
            eval_state["sampler"] = NeighborSampler(eval_structure, seed=0)

        optimizer = self._build_optimizer()
        history: Dict[str, List[float]] = {
            "loss": [],
            "train_accuracy": [],
            "val_accuracy": [],
        }
        best_val = -np.inf
        best_epoch = -1
        best_state = None
        epochs_without_improvement = 0
        result = TrainResult(history=history)

        for epoch in range(total_epochs):
            if sampler is not None:
                loss_value = self._train_step_batched(
                    graph,
                    sampler,
                    batch_spec,
                    fanouts,
                    train_idx,
                    optimizer,
                    weight_lookup,
                    epoch,
                )
            else:
                loss_value = self._train_step(
                    graph, adjacency, train_idx, optimizer, regularizers, sample_weights
                )
            evaluated = (
                config.eval_interval == 1
                or epoch % config.eval_interval == 0
                or epoch == total_epochs - 1
            )
            if evaluated:
                train_acc, val_acc = self._evaluate_epoch(graph, adjacency, eval_state)
            else:
                train_acc = val_acc = float("nan")
            history["loss"].append(loss_value)
            history["train_accuracy"].append(train_acc)
            history["val_accuracy"].append(val_acc)
            result.epochs_run = epoch + 1

            if config.verbose and (epoch % 20 == 0 or epoch == total_epochs - 1):
                print(
                    f"[{graph.name}] epoch {epoch:4d} loss {loss_value:.4f} "
                    f"train {train_acc:.3f} val {val_acc:.3f}"
                )

            improved = np.isfinite(val_acc) and val_acc > best_val
            if improved:
                best_val = val_acc
                best_epoch = epoch
                epochs_without_improvement = 0
                if config.track_best:
                    best_state = self.model.state_dict()
            elif evaluated:
                # Early stopping only ticks on evaluated epochs, so spacing
                # evaluations out (eval_interval > 1) keeps patience counted
                # in comparable units.
                epochs_without_improvement += 1

            # Break only on evaluated epochs: with eval_interval > 1 the
            # patience counter goes stale in between, and stopping on a
            # skipped epoch would leave NaN final accuracies for a model
            # state nobody measured.  (Default eval_interval=1 evaluates
            # every epoch, preserving the original behaviour exactly.)
            stop_allowed = (
                config.patience is not None
                and epoch + 1 >= config.min_epochs
                and evaluated
            )
            if stop_allowed and epochs_without_improvement >= config.patience:
                break

        if config.track_best and best_state is not None:
            self.model.load_state_dict(best_state)

        result.best_val_accuracy = float(best_val) if np.isfinite(best_val) else float("nan")
        result.best_epoch = best_epoch
        result.final_train_accuracy = history["train_accuracy"][-1]
        result.final_val_accuracy = history["val_accuracy"][-1]
        return result

    def fine_tune(
        self,
        graph: Graph,
        epochs: int,
        sample_weights: Optional[np.ndarray] = None,
        adjacency_override: Optional[np.ndarray] = None,
        regularizers: Optional[Sequence[Regularizer]] = None,
        learning_rate_scale: float = 1.0,
    ) -> TrainResult:
        """Continue training an already-trained model for ``epochs`` epochs.

        Early stopping and best-state tracking are disabled: fine-tuning runs
        for exactly the requested number of epochs, as in the paper where the
        fine-tuning budget is ``e_re = s · e_va``.  ``learning_rate_scale``
        multiplies the base learning rate; fine-tuning from a trained optimum
        typically uses a smaller step size than vanilla training.
        """
        if learning_rate_scale <= 0:
            raise ValueError("learning_rate_scale must be positive")
        original_config = self.config
        self.config = TrainConfig(
            epochs=epochs,
            learning_rate=original_config.learning_rate * learning_rate_scale,
            weight_decay=original_config.weight_decay,
            optimizer=original_config.optimizer,
            patience=None,
            min_epochs=0,
            track_best=False,
            verbose=original_config.verbose,
            batch_size=original_config.batch_size,
            fanouts=original_config.fanouts,
            batch_seed=original_config.batch_seed,
            eval_interval=original_config.eval_interval,
            sampled_eval=original_config.sampled_eval,
        )
        try:
            return self.fit(
                graph,
                regularizers=regularizers,
                sample_weights=sample_weights,
                adjacency_override=adjacency_override,
                epochs=epochs,
            )
        finally:
            self.config = original_config

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _build_optimizer(self) -> Optimizer:
        params = self.model.parameters()
        if self.config.optimizer == "adam":
            return Adam(
                params,
                lr=self.config.learning_rate,
                weight_decay=self.config.weight_decay,
            )
        return SGD(
            params,
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
            momentum=0.9,
        )

    def _train_step(
        self,
        graph: Graph,
        adjacency: np.ndarray,
        train_idx: np.ndarray,
        optimizer: Optimizer,
        regularizers: Sequence[Regularizer],
        sample_weights: Optional[np.ndarray],
    ) -> float:
        self.model.train()
        optimizer.zero_grad()
        logits = self.model(graph.features, adjacency)
        train_logits = logits[train_idx]
        train_labels = graph.labels[train_idx]
        if sample_weights is None:
            loss = cross_entropy(train_logits, train_labels)
        else:
            loss = weighted_cross_entropy(train_logits, train_labels, sample_weights)
        for regularizer in regularizers:
            loss = loss + regularizer(logits, graph)
        loss.backward()
        optimizer.step()
        return float(loss.item())

    def _train_step_batched(
        self,
        graph: Graph,
        sampler: NeighborSampler,
        batch_spec: BatchSpec,
        fanouts: Tuple[Optional[int], ...],
        train_idx: np.ndarray,
        optimizer: Optimizer,
        weight_lookup: Optional[np.ndarray],
        epoch: int,
    ) -> float:
        """One epoch of neighbour-sampled mini-batch training.

        Returns the node-weighted mean loss over the epoch's batches, the
        mini-batch analogue of the full-batch epoch loss.
        """
        self.model.train()
        batches = sampler.epoch_schedule(
            train_idx,
            batch_spec.batch_size,
            epoch=epoch,
            shuffle=batch_spec.shuffle,
            drop_last=batch_spec.drop_last,
        )
        total_loss = 0.0
        total_nodes = 0
        for batch_index, seeds in enumerate(batches):
            optimizer.zero_grad()
            blocks = sampler.sample_blocks(
                seeds, fanouts, epoch=epoch, batch_index=batch_index
            )
            logits = self.model.forward_blocks(graph.features, blocks)
            labels = graph.labels[seeds]
            if weight_lookup is None:
                loss = cross_entropy(logits, labels)
            else:
                loss = weighted_cross_entropy(logits, labels, weight_lookup[seeds])
            loss.backward()
            optimizer.step()
            total_loss += float(loss.item()) * seeds.size
            total_nodes += int(seeds.size)
        return total_loss / max(total_nodes, 1)

    def _evaluate_epoch(
        self,
        graph: Graph,
        adjacency: np.ndarray,
        eval_state: Optional[Dict[str, object]] = None,
    ) -> tuple[float, float]:
        sampler = (eval_state or {}).get("sampler")
        if sampler is not None:
            return self._evaluate_sampled(graph, sampler)
        logits = self.model.predict_logits(graph.features, adjacency)
        train_acc = accuracy(logits[graph.train_mask], graph.labels[graph.train_mask])
        if graph.val_mask is not None and graph.val_mask.any():
            val_acc = accuracy(logits[graph.val_mask], graph.labels[graph.val_mask])
        else:
            val_acc = float("nan")
        return train_acc, val_acc

    def _evaluate_sampled(self, graph: Graph, sampler) -> tuple[float, float]:
        """Ego-block evaluation: exhaustive receptive field of train/val only.

        Train and validation nodes share one block stack (they are disjoint
        by the split construction), so the evaluation costs one sampled
        forward over their union's receptive field instead of Θ(N).
        """
        from repro.gnn.inference import ego_logits

        train_idx = graph.train_indices()
        val_idx = (
            graph.val_indices()
            if graph.val_mask is not None and graph.val_mask.any()
            else np.empty(0, dtype=np.int64)
        )
        nodes = np.concatenate([train_idx, val_idx])
        logits = ego_logits(self.model, graph.features, sampler, nodes)
        train_acc = accuracy(logits[: train_idx.size], graph.labels[train_idx])
        if val_idx.size:
            val_acc = accuracy(logits[train_idx.size :], graph.labels[val_idx])
        else:
            val_acc = float("nan")
        return train_acc, val_acc
