"""Graph neural network models (GCN, GAT, GraphSAGE) and the trainer.

These are the victim models of the paper's experiments.  They are built on
the :mod:`repro.nn` autodiff substrate and operate on dense adjacency
matrices, which is appropriate at the surrogate graph sizes used here.
"""

from repro.gnn.layers import GCNConv, GATConv, SAGEConv
from repro.gnn.models import GCN, GAT, GraphSAGE, build_model, MODEL_REGISTRY
from repro.gnn.normalization import gcn_norm, left_norm, row_normalize_features
from repro.gnn.trainer import Trainer, TrainConfig, TrainResult
from repro.gnn.evaluation import evaluate_accuracy, predict_probabilities, predict_labels

__all__ = [
    "GCNConv",
    "GATConv",
    "SAGEConv",
    "GCN",
    "GAT",
    "GraphSAGE",
    "build_model",
    "MODEL_REGISTRY",
    "gcn_norm",
    "left_norm",
    "row_normalize_features",
    "Trainer",
    "TrainConfig",
    "TrainResult",
    "evaluate_accuracy",
    "predict_probabilities",
    "predict_labels",
]
