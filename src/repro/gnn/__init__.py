"""Graph neural network models (GCN, GAT, GraphSAGE) and the trainer.

These are the victim models of the paper's experiments.  They are built on
the :mod:`repro.nn` autodiff substrate and accept dense or CSR adjacency;
propagation dispatches through the :mod:`repro.sparse` compute backend
(``dense`` / ``sparse`` / ``auto``).
"""

from repro.gnn.layers import GCNConv, GATConv, SAGEConv
from repro.gnn.models import GCN, GAT, GraphSAGE, build_model, MODEL_REGISTRY
from repro.gnn.normalization import (
    build_propagation,
    gcn_norm,
    left_norm,
    mean_aggregation_matrix,
    row_normalize_features,
)
from repro.gnn.sampling import BatchSpec, NeighborSampler, SampledBlock, block_propagation
from repro.gnn.plan import (
    BufferPool,
    InferencePlan,
    PackedBatch,
    PackedLayer,
    PlanCache,
    PlanRecorder,
    PlanUnsupported,
    pack_blocks,
    plan_params_hash,
    record_plan,
    shared_plan_cache,
)
from repro.gnn.inference import ego_logits, resolve_fanouts, sampler_for
from repro.gnn.trainer import Trainer, TrainConfig, TrainResult
from repro.gnn.evaluation import evaluate_accuracy, predict_probabilities, predict_labels

__all__ = [
    "GCNConv",
    "GATConv",
    "SAGEConv",
    "GCN",
    "GAT",
    "GraphSAGE",
    "build_model",
    "MODEL_REGISTRY",
    "build_propagation",
    "gcn_norm",
    "left_norm",
    "mean_aggregation_matrix",
    "row_normalize_features",
    "Trainer",
    "TrainConfig",
    "TrainResult",
    "evaluate_accuracy",
    "predict_probabilities",
    "predict_labels",
    "BatchSpec",
    "NeighborSampler",
    "SampledBlock",
    "block_propagation",
    "BufferPool",
    "InferencePlan",
    "PackedBatch",
    "PackedLayer",
    "PlanCache",
    "PlanRecorder",
    "PlanUnsupported",
    "pack_blocks",
    "plan_params_hash",
    "record_plan",
    "shared_plan_cache",
    "ego_logits",
    "resolve_fanouts",
    "sampler_for",
]
