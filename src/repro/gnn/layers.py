"""Graph convolution layers.

Each layer operates on a dense node-representation tensor ``(N, F)`` and a
graph *propagation operator* derived from the adjacency matrix.  An operator
is anything exposing ``matmul(tensor) -> Tensor`` for a fixed constant
matrix: a plain :class:`~repro.nn.tensor.Tensor`, or a backend-built
:data:`~repro.sparse.backend.PropagationOperator` (dense or CSR).  No
gradient flows through the graph structure, which matches the victim models
of the paper: structure enters only through the fixed propagation matrices.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.nn import functional as F
from repro.nn import init as init_schemes
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concatenate
from repro.sparse.backend import PropagationOperator
from repro.utils.rng import RandomState, ensure_rng

Propagation = Union[Tensor, PropagationOperator]
"""Anything applying a fixed graph operator via ``.matmul(tensor)``."""


class GCNConv(Module):
    """Graph convolution of Kipf & Welling: ``σ(Â X W)``.

    The propagation operator ``Â`` (symmetric-normalised adjacency with
    self-loops, dense or sparse) is supplied at call time so the same layer
    can be used on the original and on a perturbed graph, as PPFR's
    fine-tuning phase requires.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RandomState = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_schemes.glorot_uniform((in_features, out_features), rng=generator),
            name="weight",
        )
        self.bias: Optional[Parameter]
        if bias:
            self.bias = Parameter(init_schemes.zeros((out_features,)), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor, propagation: Propagation) -> Tensor:
        support = x.matmul(self.weight)
        out = propagation.matmul(support)
        if self.bias is not None:
            out = out + self.bias
        return out

    def plan_kernels(self, recorder, kind: str = "gcn") -> None:
        """Record the eval forward: transform, propagate, bias — in order."""
        recorder.matmul(self.weight)
        recorder.propagate(kind)
        recorder.bias(self.bias)


class GATConv(Module):
    """Multi-head graph attention layer (Velickovic et al., 2018).

    Attention coefficients are computed densely and masked to the 1-hop
    neighbourhood (plus self), which is exact and efficient at the surrogate
    graph sizes used in this reproduction.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        heads: int = 2,
        concat_heads: bool = True,
        negative_slope: float = 0.2,
        rng: RandomState = None,
    ) -> None:
        super().__init__()
        if heads <= 0:
            raise ValueError("heads must be positive")
        generator = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.heads = heads
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        for head in range(heads):
            self.register_parameter(
                f"weight_{head}",
                Parameter(
                    init_schemes.glorot_uniform((in_features, out_features), rng=generator)
                ),
            )
            self.register_parameter(
                f"att_src_{head}",
                Parameter(init_schemes.glorot_uniform((out_features, 1), rng=generator)),
            )
            self.register_parameter(
                f"att_dst_{head}",
                Parameter(init_schemes.glorot_uniform((out_features, 1), rng=generator)),
            )

    def _head_forward(self, x: Tensor, mask: np.ndarray, head: int) -> Tensor:
        weight = getattr(self, f"weight_{head}")
        att_src = getattr(self, f"att_src_{head}")
        att_dst = getattr(self, f"att_dst_{head}")
        transformed = x.matmul(weight)  # (N, F')
        source_scores = transformed.matmul(att_src)  # (N, 1)
        target_scores = transformed.matmul(att_dst)  # (N, 1)
        scores = source_scores + target_scores.T  # (N, N) via broadcasting
        scores = F.leaky_relu(scores, self.negative_slope)
        scores = scores.masked_fill(mask, -1e9)
        attention = scores.softmax(axis=1)
        return attention.matmul(transformed)

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        """``mask`` marks positions that are *not* edges (and not self-loops)."""
        outputs = [self._head_forward(x, mask, head) for head in range(self.heads)]
        if self.concat_heads:
            return concatenate(outputs, axis=1)
        total = outputs[0]
        for other in outputs[1:]:
            total = total + other
        return total * (1.0 / self.heads)


class SAGEConv(Module):
    """GraphSAGE layer with mean aggregation.

    ``h_i = W_self x_i + W_neigh mean_{j∈N(i)} x_j``.  The neighbourhood-mean
    operator is supplied at call time (possibly subsampled — GraphSAGE's
    neighbour sampling is the reason edge DP is less effective on it, an
    effect the paper highlights in Table IV).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RandomState = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight_self = Parameter(
            init_schemes.glorot_uniform((in_features, out_features), rng=generator)
        )
        self.weight_neighbor = Parameter(
            init_schemes.glorot_uniform((in_features, out_features), rng=generator)
        )
        self.bias: Optional[Parameter]
        if bias:
            self.bias = Parameter(init_schemes.zeros((out_features,)), name="bias")
        else:
            self.bias = None

    def forward(
        self,
        x: Tensor,
        neighbor_mean: Propagation,
        x_dst: Optional[Tensor] = None,
    ) -> Tensor:
        """Apply the layer; ``x_dst`` supplies the self-term input when the
        aggregation is a rectangular mini-batch block (destination rows are a
        strict subset of the source rows ``x``).  Full-batch callers leave it
        ``None`` and the self term uses ``x`` itself.
        """
        aggregated = neighbor_mean.matmul(x)
        self_input = x if x_dst is None else x_dst
        out = self_input.matmul(self.weight_self) + aggregated.matmul(self.weight_neighbor)
        if self.bias is not None:
            out = out + self.bias
        return out

    def plan_kernels(self, recorder, kind: str = "mean_noself") -> None:
        """Record the fused self+neighbour transform as one SAGE kernel."""
        recorder.sage(self.weight_self, self.weight_neighbor, self.bias, kind)
