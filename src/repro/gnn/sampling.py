"""Neighbour-sampled mini-batch training on CSR structure.

Full-batch training cost scales with the whole graph: every epoch runs one
forward/backward over all ``N`` nodes no matter how many of them carry
labels.  This module adds the GraphSAGE-style alternative — seed-node
mini-batches with per-layer neighbour sampling — so the per-step cost is
bounded by ``batch_size · Π fanouts`` instead of ``N``:

* :class:`NeighborSampler` — a *seeded* sampler over CSR adjacency.  All
  randomness is derived statelessly from ``(seed, epoch, batch_index)``, so
  the batch schedule and every sampled block are identical no matter which
  executor (serial / thread / process) or worker ordering produced them —
  the same determinism contract the experiment grid engine gives.
* :class:`SampledBlock` — one layer's batch-local bipartite structure: a
  ``(num_dst, num_src)`` CSR block with nodes relabelled to block-local ids
  (destination nodes are a prefix of the source nodes, so layers chain and
  the SAGE self-term is ``x[:num_dst]``), plus the global degrees needed to
  normalise it.
* :class:`BatchSpec` — the declarative description of a mini-batch regime
  (batch size, per-layer fanouts, seed); ``fanout=None`` means *exhaustive*
  (take every neighbour), in which case a single batch covering a node set
  reproduces the full-batch forward on those nodes exactly.

Normalisation of sampled blocks follows the conventions that make the
exhaustive mode *equal* to the full-batch operators (asserted to 1e-8 by
the equivalence tests):

* ``gcn`` / ``left`` — per-edge weights use the **global** degrees
  ``d̃ = deg + 1`` (historical-degree convention: sampled edges keep their
  full-graph spectral weight);
* ``mean`` / ``mean_noself`` — rows are averaged over the **sampled**
  neighbourhood (the unbiased subsample mean; equals the full mean when
  sampling is exhaustive).

Blocks are plain batch-local structures: they are never tagged with a graph
revision and never routed through :func:`repro.sparse.backend.build_propagation`,
so they cannot pollute (or be served from) the full-graph propagation
operator cache — the opcache regression tests assert this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sparse.backend import DenseOperator, SparseOperator, resolve_backend
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_adjacency

__all__ = [
    "BatchSpec",
    "SampledBlock",
    "NeighborSampler",
    "block_propagation",
]

AdjacencyLike = Union[np.ndarray, CSRMatrix]

_SCHEDULE_STREAM = 0
_BLOCK_STREAM = 1

_BLOCK_KINDS = ("gcn", "left", "mean", "mean_noself")


@dataclass(frozen=True)
class BatchSpec:
    """Declarative description of a mini-batch training regime.

    Attributes
    ----------
    batch_size:
        Number of seed (training) nodes per batch.
    fanouts:
        Per-layer neighbour budgets, *input layer first* (one entry per
        message-passing layer).  An entry of ``None`` samples exhaustively
        at that layer; ``fanouts=None`` is exhaustive everywhere.
    seed:
        Root seed of the sampler; schedules and blocks are pure functions of
        ``(seed, epoch, batch_index)``.
    shuffle:
        Shuffle the seed nodes every epoch (seeded, deterministic).
    drop_last:
        Drop a trailing batch smaller than ``batch_size``.
    """

    batch_size: int
    fanouts: Optional[Tuple[Optional[int], ...]] = None
    seed: int = 0
    shuffle: bool = True
    drop_last: bool = False

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.fanouts is not None:
            for fanout in self.fanouts:
                if fanout is not None and fanout <= 0:
                    raise ValueError("fanouts must be positive or None (exhaustive)")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    def layer_fanouts(self, num_layers: int) -> Tuple[Optional[int], ...]:
        """Resolve to one fanout per layer (``None`` → exhaustive everywhere)."""
        if self.fanouts is None:
            return (None,) * num_layers
        if len(self.fanouts) != num_layers:
            raise ValueError(
                f"fanouts has {len(self.fanouts)} entries but the model has "
                f"{num_layers} message-passing layers"
            )
        return tuple(self.fanouts)


@dataclass
class SampledBlock:
    """One layer's batch-local bipartite graph block.

    ``adjacency`` is a ``(num_dst, num_src)`` CSR over block-local ids whose
    row ``i`` holds the *sampled* neighbours of global node ``dst_nodes[i]``
    with their original edge weights; self-loops are not stored (the
    propagation builders add them where the kind requires).  ``dst_nodes``
    is always a prefix of ``src_nodes``, so consecutive blocks chain
    (``blocks[l].src_nodes is blocks[l+1]``'s input rows) and the SAGE
    self-term is a plain ``x[:num_dst]`` slice.  ``src_degrees`` carries the
    full-graph self-loop-augmented degrees ``d̃ = deg + 1`` of the source
    nodes (dst degrees are its prefix), which the ``gcn``/``left``
    normalisations need.
    """

    dst_nodes: np.ndarray
    src_nodes: np.ndarray
    adjacency: CSRMatrix
    src_degrees: np.ndarray

    @property
    def num_dst(self) -> int:
        return int(self.dst_nodes.size)

    @property
    def num_src(self) -> int:
        return int(self.src_nodes.size)

    def propagation(self, kind: str) -> CSRMatrix:
        """The normalised ``(num_dst, num_src)`` propagation block for ``kind``."""
        return block_propagation(self, kind)

    def operator(self, kind: str):
        """Backend-wrapped propagation operator for this block.

        Honours the ambient compute-backend selection: the dense backend gets
        a :class:`DenseOperator` over the densified block, everything else
        (sparse, and ``auto`` — the block is already CSR) applies the block
        with the autodiff ``spmm``.  Blocks bypass
        :func:`~repro.sparse.backend.build_propagation` entirely, so the
        full-graph propagation-operator cache never sees batch-local
        structure.
        """
        matrix = self.propagation(kind)
        if resolve_backend(self.adjacency).name == "dense":
            return DenseOperator(matrix.to_dense())
        return SparseOperator(matrix)

    def fingerprint(self) -> bytes:
        """Byte-exact content of the block (determinism tests)."""
        parts = [
            self.dst_nodes.tobytes(),
            self.src_nodes.tobytes(),
            self.adjacency.indptr.tobytes(),
            self.adjacency.indices.tobytes(),
            self.adjacency.data.tobytes(),
            self.src_degrees.tobytes(),
        ]
        return b"|".join(parts)


def _with_self_loops(block: SampledBlock) -> CSRMatrix:
    """The block adjacency plus unit self-loop entries for every dst node."""
    adjacency = block.adjacency
    num_dst = block.num_dst
    rows = np.repeat(np.arange(num_dst, dtype=np.int64), np.diff(adjacency.indptr))
    diag = np.arange(num_dst, dtype=np.int64)
    return CSRMatrix.from_coo(
        np.concatenate([rows, diag]),
        # dst nodes are a prefix of src nodes: local self column of dst i is i
        np.concatenate([adjacency.indices, diag]),
        np.concatenate([adjacency.data, np.ones(num_dst)]),
        adjacency.shape,
    )


def block_propagation(block: SampledBlock, kind: str) -> CSRMatrix:
    """Build the normalised propagation matrix of a sampled block.

    Mirrors the full-graph kernels of :mod:`repro.sparse.ops` restricted to
    the block, with the sampling conventions documented in the module
    docstring.  With exhaustive sampling every weight equals the
    corresponding entry of the full-graph operator.
    """
    if kind not in _BLOCK_KINDS:
        raise ValueError(
            f"unknown propagation kind {kind!r}; expected one of {_BLOCK_KINDS}"
        )
    degrees = block.src_degrees
    if kind == "gcn":
        base = _with_self_loops(block)
        inv_sqrt = 1.0 / np.sqrt(degrees)
        return base.scale_rows(inv_sqrt[: block.num_dst]).scale_cols(inv_sqrt)
    if kind == "left":
        base = _with_self_loops(block)
        return base.scale_rows(1.0 / degrees[: block.num_dst])
    base = _with_self_loops(block) if kind == "mean" else block.adjacency
    sampled = base.row_sums()
    inverse = np.zeros_like(sampled)
    populated = sampled > 0
    inverse[populated] = 1.0 / sampled[populated]
    return base.scale_rows(inverse)


class NeighborSampler:
    """Seeded per-layer neighbour sampler over CSR adjacency.

    The sampler is *stateless* across calls: the epoch schedule is a pure
    function of ``(seed, epoch)`` and each batch's blocks of
    ``(seed, epoch, batch_index)``, so any executor — or any re-run — draws
    the same structures.  Construction computes the global
    self-loop-augmented degrees once (O(m)); each sampled layer then costs
    O(Σ deg(dst)) via the shared frontier gather of the row-slice kernel.
    """

    def __init__(self, adjacency: AdjacencyLike, seed: int = 0) -> None:
        if isinstance(adjacency, CSRMatrix):
            self.csr = adjacency
        else:
            self.csr = CSRMatrix.from_dense(check_adjacency(adjacency))
        if self.csr.shape[0] != self.csr.shape[1]:
            raise ValueError("adjacency must be square")
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.seed = int(seed)
        self.num_nodes = self.csr.shape[0]
        # Full-graph d̃ = deg + 1 (the +1 is the unit self-loop of A + I).
        self.degrees_with_self = self.csr.row_sums() + 1.0

    def with_mutation(self, event) -> "NeighborSampler":
        """A retargeted *copy* of the sampler after a structure mutation.

        Splices the degree vector like :meth:`apply_mutation` but onto a
        fresh sampler object (over a copied degree array), leaving ``self``
        untouched — snapshot semantics for concurrent readers: an in-flight
        ``ego_blocks`` call keeps a consistent (pre-mutation) view while the
        owner swaps in the returned sampler.  Cost: one O(N) degree copy plus
        the O(touched) splice, versus the historical O(m) rebuild.
        """
        clone = object.__new__(type(self))
        clone.csr = self.csr
        clone.seed = self.seed
        clone.num_nodes = self.num_nodes
        clone.degrees_with_self = self.degrees_with_self.copy()
        clone.apply_mutation(event)
        return clone

    def apply_mutation(self, event) -> None:
        """Retarget the sampler *in place* after a structure mutation.

        ``event`` is a :class:`~repro.serve.session.MutationEvent` (or any
        object with ``new_csr`` and ``touched_rows``): the sampler swaps in
        the new CSR and *splices* the cached degree vector — only the rows
        whose content changed are re-summed, instead of the historical O(m)
        full rebuild per mutation.  Appended nodes (``add_node``) enter with
        the empty-row degree ``d̃ = 1`` before their ``touched_rows`` splice.
        Not safe under concurrent readers — use :meth:`with_mutation` when
        other threads may be sampling.
        """
        new_csr = event.new_csr
        if new_csr.shape[0] != new_csr.shape[1]:
            raise ValueError("adjacency must be square")
        grown = new_csr.shape[0] - self.num_nodes
        if grown < 0:
            raise ValueError("structure can only grow or stay the same size")
        if grown:
            self.degrees_with_self = np.concatenate(
                [self.degrees_with_self, np.ones(grown)]
            )
        touched = np.asarray(event.touched_rows, dtype=np.int64).reshape(-1)
        touched = np.unique(touched[touched < new_csr.shape[0]])
        if touched.size:
            self.degrees_with_self[touched] = (
                new_csr.slice_rows(touched).row_sums() + 1.0
            )
        self.csr = new_csr
        self.num_nodes = new_csr.shape[0]

    # ------------------------------------------------------------------ #
    # Batch schedule
    # ------------------------------------------------------------------ #
    def epoch_schedule(
        self,
        nodes: np.ndarray,
        batch_size: int,
        epoch: int = 0,
        shuffle: bool = True,
        drop_last: bool = False,
    ) -> List[np.ndarray]:
        """Seed-node batches of one epoch (deterministic in ``(seed, epoch)``)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        nodes = np.asarray(nodes, dtype=np.int64)
        if shuffle:
            rng = np.random.default_rng([self.seed, _SCHEDULE_STREAM, epoch])
            nodes = nodes[rng.permutation(nodes.size)]
        batches = [
            nodes[start : start + batch_size]
            for start in range(0, nodes.size, batch_size)
        ]
        if drop_last and batches and batches[-1].size < batch_size:
            batches.pop()
        return batches

    # ------------------------------------------------------------------ #
    # Block sampling
    # ------------------------------------------------------------------ #
    def sample_layer(
        self,
        dst_nodes: np.ndarray,
        fanout: Optional[int],
        rng: Optional[np.random.Generator] = None,
    ) -> SampledBlock:
        """Sample one layer's block for ``dst_nodes``.

        ``fanout=None`` takes every neighbour (exhaustive: the block row *is*
        the row slice of the global adjacency); otherwise each destination
        node draws ``min(fanout, degree)`` neighbours without replacement
        from ``rng``.  Destination nodes always appear first in
        ``src_nodes`` (self-loop / self-feature access), followed by the
        newly reached neighbours in ascending global id.
        """
        dst = self._check_dst(dst_nodes)
        sliced = self.csr.slice_rows(dst)  # (D, N): full rows, global columns
        if fanout is not None:
            if fanout <= 0:
                raise ValueError("fanout must be positive or None (exhaustive)")
            if rng is None:
                raise ValueError("sampled fanouts need a random generator")
            sliced = _subsample_rows(sliced, fanout, rng)
        return self._assemble_block(dst, sliced)

    def sample_layer_keyed(
        self, dst_nodes: np.ndarray, fanout: Optional[int], key: int
    ) -> SampledBlock:
        """Sample one layer's block with *per-destination* deterministic keys.

        Each destination row keeps the ``fanout`` neighbours with the smallest
        SplitMix64 priorities of ``(key, dst, neighbour)`` — a pure function
        of the node and the key, independent of which other destinations
        share the batch.  The serving engine uses this so a node's sampled
        prediction does not depend on request coalescing (and therefore stays
        cacheable and reproducible); ``fanout=None`` is exhaustive as usual.
        """
        dst = self._check_dst(dst_nodes)
        sliced = self.csr.slice_rows(dst)
        if fanout is not None:
            if fanout <= 0:
                raise ValueError("fanout must be positive or None (exhaustive)")
            entry_dst = np.repeat(dst, np.diff(sliced.indptr))
            keys = _hash_keys(key, entry_dst, sliced.indices)
            sliced = _select_rows_by_key(sliced, fanout, keys)
        return self._assemble_block(dst, sliced)

    def ego_blocks(
        self,
        nodes: np.ndarray,
        fanouts: Sequence[Optional[int]],
        key: int = 0,
    ) -> List[SampledBlock]:
        """The full layer stack of the k-hop ego graph of ``nodes``.

        Like :meth:`sample_blocks` but with the keyed per-destination sampler
        (layer index mixed into the key), so the blocks are a pure function of
        ``(nodes, fanouts, key)`` — the inference-side counterpart of the
        training-side ``(seed, epoch, batch_index)`` contract.  With
        ``fanouts`` all-``None`` this is the exact receptive field and the
        forward equals the full-graph forward on ``nodes``.
        """
        fanouts = tuple(fanouts)
        blocks: List[SampledBlock] = []
        dst = np.asarray(nodes, dtype=np.int64)
        for depth, fanout in enumerate(reversed(fanouts)):
            layer_index = len(fanouts) - 1 - depth
            block = self.sample_layer_keyed(
                dst, fanout, key=(int(key) << 8) ^ layer_index
            )
            blocks.append(block)
            dst = block.src_nodes
        blocks.reverse()
        return blocks

    def _check_dst(self, dst_nodes: np.ndarray) -> np.ndarray:
        dst = np.asarray(dst_nodes, dtype=np.int64)
        if dst.size and (dst.min() < 0 or dst.max() >= self.num_nodes):
            raise ValueError("destination node index out of bounds")
        if np.unique(dst).size != dst.size:
            # A duplicated destination would appear twice in the source set,
            # making the global→local relabelling ambiguous.
            raise ValueError("dst_nodes must not contain duplicates")
        return dst

    def _assemble_block(self, dst: np.ndarray, sliced: CSRMatrix) -> SampledBlock:
        counts = np.diff(sliced.indptr)
        rows_local = np.repeat(np.arange(dst.size, dtype=np.int64), counts)
        cols_global = sliced.indices
        # Source set: dst prefix, then newly reached nodes in ascending id.
        new_nodes = np.setdiff1d(np.unique(cols_global), dst)
        src = np.concatenate([dst, new_nodes])
        # Global → local relabelling via a sorted view of src, keeping the
        # per-batch cost O(|block| log |src|) — independent of graph size.
        order = np.argsort(src, kind="stable")
        local_cols = order[np.searchsorted(src[order], cols_global)]
        adjacency = CSRMatrix.from_coo(
            rows_local, local_cols, sliced.data, (dst.size, src.size)
        )
        return SampledBlock(
            dst_nodes=dst.copy(),
            src_nodes=src,
            adjacency=adjacency,
            src_degrees=self.degrees_with_self[src],
        )

    def sample_blocks(
        self,
        seeds: np.ndarray,
        fanouts: Sequence[Optional[int]],
        epoch: int = 0,
        batch_index: int = 0,
    ) -> List[SampledBlock]:
        """Sample the full layer stack for one seed batch, *input layer first*.

        Layers are sampled output-to-input (the output layer's source set
        becomes the next layer's destination set), then reversed so the
        returned list aligns with the model's forward order.  The generator
        is seeded from ``(seed, epoch, batch_index)``, never shared across
        batches, so blocks are reproducible under any execution order.
        """
        rng = np.random.default_rng([self.seed, _BLOCK_STREAM, epoch, batch_index])
        blocks: List[SampledBlock] = []
        dst = np.asarray(seeds, dtype=np.int64)
        for fanout in reversed(tuple(fanouts)):
            block = self.sample_layer(dst, fanout, rng)
            blocks.append(block)
            dst = block.src_nodes
        blocks.reverse()
        return blocks


def _select_rows_by_key(sliced: CSRMatrix, fanout: int, keys: np.ndarray) -> CSRMatrix:
    """Keep the ``fanout`` smallest-key entries of every row (vectorised).

    The shared top-k kernel behind both fanout samplers: given one sort key
    per stored entry, each row keeps its ``min(fanout, degree)`` entries with
    the smallest keys — for i.i.d. uniform keys that is a uniform
    without-replacement subset; for hash-derived keys it is a deterministic
    priority sample.  One ``lexsort`` over (row, key) replaces the historical
    per-row ``rng.choice`` python loop; kept entries are re-emitted in their
    original ascending-column order.
    """
    counts = np.diff(sliced.indptr)
    if counts.size == 0 or counts.max(initial=0) <= fanout:
        return sliced
    rows = np.repeat(np.arange(sliced.shape[0], dtype=np.int64), counts)
    order = np.lexsort((keys, rows))
    # lexsort keeps each row's entries inside its own [indptr[r], indptr[r+1])
    # segment, so the within-row rank of sorted position p is p - row_start.
    ranks = np.arange(keys.size, dtype=np.int64) - np.repeat(
        sliced.indptr[:-1], counts
    )
    flat = np.sort(order[ranks < fanout])  # back to row-major / ascending cols
    new_counts = np.minimum(counts, fanout)
    indptr = np.zeros(sliced.shape[0] + 1, dtype=np.int64)
    np.cumsum(new_counts, out=indptr[1:])
    return CSRMatrix(indptr, sliced.indices[flat], sliced.data[flat], sliced.shape)


def _subsample_rows(sliced: CSRMatrix, fanout: int, rng: np.random.Generator) -> CSRMatrix:
    """Per-row neighbour subsampling of a row-sliced block (without replacement).

    Rows with at most ``fanout`` entries are kept whole (degree < fanout is
    the common case on the paper's sparse graphs); larger rows keep a uniform
    ``fanout``-subset.  The subset is chosen by ranking one uniform draw per
    stored entry — a single ``rng.random(nnz)`` call plus the vectorised
    top-k kernel — so the sample remains a pure function of the block
    structure and the generator state, just through a different (documented,
    golden-pinned) stream than the historical per-row ``rng.choice`` loop.
    """
    counts = np.diff(sliced.indptr)
    if counts.size == 0 or counts.max(initial=0) <= fanout:
        return sliced
    return _select_rows_by_key(sliced, fanout, rng.random(sliced.indices.size))


_MIX_CONST_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_CONST_B = np.uint64(0xBF58476D1CE4E5B9)
_MIX_CONST_C = np.uint64(0x94D049BB133111EB)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser: a cheap, high-quality 64-bit mixing function."""
    x = (x + _MIX_CONST_A).astype(np.uint64)
    x = (x ^ (x >> np.uint64(30))) * _MIX_CONST_B
    x = (x ^ (x >> np.uint64(27))) * _MIX_CONST_C
    return x ^ (x >> np.uint64(31))


def _hash_keys(key: int, dst_rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Per-entry sort keys derived from ``(key, dst node, neighbour)`` only.

    Unlike generator-drawn keys, these are independent of batch composition:
    a destination node keeps the *same* sampled neighbourhood no matter which
    other nodes share its request batch — the property that makes sampled
    online serving deterministic, cache-coherent and batcher-independent.
    """
    base = _mix64(np.array([key & 0xFFFFFFFFFFFFFFFF], dtype=np.uint64))[0]
    mixed = _mix64(dst_rows.astype(np.uint64) ^ base)
    return _mix64(mixed ^ cols.astype(np.uint64))
