"""Victim GNN models: GCN, GAT and GraphSAGE.

All models expose the same interface used by the trainer, the attacks and
the influence-function machinery:

``forward(features, adjacency) -> logits`` where ``features`` is an
``(N, F)`` array/tensor, ``adjacency`` an ``(N, N)`` adjacency matrix —
dense or :class:`repro.sparse.CSRMatrix` — and ``logits`` an ``(N, C)``
tensor.  Model outputs for the attacks and fairness metrics are the softmax
probabilities of those logits.

GCN and GraphSAGE build their propagation operators through
:func:`repro.gnn.normalization.build_propagation`, so the active compute
backend (``dense`` / ``sparse`` / ``auto``) decides whether message passing
runs as a dense matmul or a CSR ``spmm``.  GAT's all-pairs attention is
inherently dense and always takes the dense path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.gnn.layers import GATConv, GCNConv, SAGEConv
from repro.gnn.normalization import attention_mask, build_propagation
from repro.nn import functional as F
from repro.nn.module import Dropout, Module
from repro.nn.tensor import Tensor
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, ensure_rng, spawn_children

ArrayOrTensor = Union[np.ndarray, Tensor]
AdjacencyLike = Union[np.ndarray, CSRMatrix]


def _as_tensor(value: ArrayOrTensor) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


class GNNModel(Module):
    """Common functionality shared by the three victim architectures."""

    def __init__(self) -> None:
        super().__init__()

    def forward(self, features: ArrayOrTensor, adjacency: AdjacencyLike) -> Tensor:
        raise NotImplementedError  # pragma: no cover - abstract

    @property
    def message_passing_layers(self) -> Optional[int]:
        """Number of sampled-block layers, or ``None`` when the model has no
        sampled forward path (GAT's all-pairs attention cannot be restricted
        to a bipartite block)."""
        return None

    def forward_blocks(self, features: ArrayOrTensor, blocks: Sequence) -> Tensor:
        """Mini-batch forward over sampled blocks (input layer first).

        ``blocks`` come from :class:`repro.gnn.sampling.NeighborSampler`;
        the returned logits have one row per seed node, aligned with
        ``blocks[-1].dst_nodes``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no neighbour-sampled forward path"
        )

    def record_inference_plan(self, recorder) -> None:
        """Trace the sampled eval-mode forward into ``recorder``.

        Models whose :meth:`forward_blocks` is a fixed kernel sequence
        override this (see ``repro.gnn.plan``); the default declares the
        model untraceable, which keeps it on the unfused serving path.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no flat inference-kernel decomposition"
        )

    def _inference_logits(self, forward: Callable[[], Tensor]) -> np.ndarray:
        """Run ``forward`` in eval mode off the tape, restoring train mode."""
        was_training = self.training
        self.eval()
        try:
            from repro.nn.tensor import no_grad

            with no_grad():
                logits = forward()
        finally:
            if was_training:
                self.train()
        return logits.data.copy()

    def predict_logits_blocks(self, features: ArrayOrTensor, blocks: Sequence) -> np.ndarray:
        """Inference-mode sampled-forward logits as a NumPy array."""
        return self._inference_logits(lambda: self.forward_blocks(features, blocks))

    def predict_logits(self, features: ArrayOrTensor, adjacency: AdjacencyLike) -> np.ndarray:
        """Inference-mode logits as a NumPy array."""
        return self._inference_logits(lambda: self.forward(features, adjacency))

    def predict_proba(self, features: ArrayOrTensor, adjacency: AdjacencyLike) -> np.ndarray:
        """Inference-mode softmax probabilities (what the attacker queries)."""
        logits = self.predict_logits(features, adjacency)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict_labels(self, features: ArrayOrTensor, adjacency: AdjacencyLike) -> np.ndarray:
        """Inference-mode hard label predictions."""
        return self.predict_logits(features, adjacency).argmax(axis=1)


class GCN(GNNModel):
    """Two-layer (by default) graph convolutional network."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        rng: RandomState = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        generator = ensure_rng(rng)
        child_rngs = spawn_children(generator, num_layers + 1)
        self.num_layers = num_layers
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        for index in range(num_layers):
            setattr(
                self,
                f"conv{index}",
                GCNConv(dims[index], dims[index + 1], rng=child_rngs[index]),
            )
        self.dropout = Dropout(dropout, rng=child_rngs[-1])

    def forward(self, features: ArrayOrTensor, adjacency: AdjacencyLike) -> Tensor:
        x = _as_tensor(features)
        propagation = build_propagation(adjacency, kind="gcn")
        for index in range(self.num_layers):
            layer: GCNConv = getattr(self, f"conv{index}")
            x = layer(x, propagation)
            if index < self.num_layers - 1:
                x = F.relu(x)
                x = self.dropout(x)
        return x

    @property
    def message_passing_layers(self) -> int:
        return self.num_layers

    def forward_blocks(self, features: ArrayOrTensor, blocks: Sequence) -> Tensor:
        if len(blocks) != self.num_layers:
            raise ValueError(
                f"expected {self.num_layers} blocks, got {len(blocks)}"
            )
        x = _as_tensor(features)[blocks[0].src_nodes]
        for index, block in enumerate(blocks):
            layer: GCNConv = getattr(self, f"conv{index}")
            x = layer(x, block.operator("gcn"))
            if index < self.num_layers - 1:
                x = F.relu(x)
                x = self.dropout(x)
        return x

    def record_inference_plan(self, recorder) -> None:
        """Mirror :meth:`forward_blocks` in eval mode, kernel by kernel."""
        for index in range(self.num_layers):
            layer: GCNConv = getattr(self, f"conv{index}")
            layer.plan_kernels(recorder, kind="gcn")
            if index < self.num_layers - 1:
                recorder.relu()
                self.dropout.plan_kernels(recorder)


class GAT(GNNModel):
    """Two-layer graph attention network."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        heads: int = 2,
        dropout: float = 0.5,
        rng: RandomState = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        rng_first, rng_second, rng_drop = spawn_children(generator, 3)
        if hidden_features % heads != 0:
            raise ValueError("hidden_features must be divisible by heads")
        per_head = hidden_features // heads
        self.conv0 = GATConv(
            in_features, per_head, heads=heads, concat_heads=True, rng=rng_first
        )
        self.conv1 = GATConv(
            hidden_features, num_classes, heads=1, concat_heads=False, rng=rng_second
        )
        self.dropout = Dropout(dropout, rng=rng_drop)

    def forward(self, features: ArrayOrTensor, adjacency: AdjacencyLike) -> Tensor:
        x = _as_tensor(features)
        if isinstance(adjacency, CSRMatrix):
            adjacency = adjacency.to_dense()
        mask = attention_mask(adjacency)
        x = self.conv0(x, mask)
        x = F.elu(x)
        x = self.dropout(x)
        return self.conv1(x, mask)


class GraphSAGE(GNNModel):
    """Two-layer GraphSAGE with mean aggregation and optional neighbour sampling.

    When ``num_samples`` is set, each training forward pass averages over a
    random subset of at most ``num_samples`` neighbours per node.  This
    reproduces the sampling behaviour that, per the paper, blunts the effect
    of edge-DP noise on GraphSAGE (only a fraction of noisy edges participate
    in any given step).
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        dropout: float = 0.5,
        num_samples: Optional[int] = 10,
        rng: RandomState = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        rng_first, rng_second, rng_drop, rng_sample = spawn_children(generator, 4)
        self.conv0 = SAGEConv(in_features, hidden_features, rng=rng_first)
        self.conv1 = SAGEConv(hidden_features, num_classes, rng=rng_second)
        self.dropout = Dropout(dropout, rng=rng_drop)
        self.num_samples = num_samples
        self._sample_rng = rng_sample

    def _aggregation(self, adjacency: AdjacencyLike):
        if self.training and self.num_samples is not None:
            adjacency = self._sample_neighbors(adjacency)
        return build_propagation(adjacency, kind="mean_noself")

    def _sample_neighbors(self, adjacency: AdjacencyLike) -> AdjacencyLike:
        if isinstance(adjacency, CSRMatrix):
            return self._sample_neighbors_csr(adjacency)
        sampled = np.zeros_like(adjacency)
        for node in range(adjacency.shape[0]):
            neighbors = np.nonzero(adjacency[node])[0]
            if neighbors.size == 0:
                continue
            if neighbors.size > self.num_samples:
                neighbors = self._sample_rng.choice(
                    neighbors, size=self.num_samples, replace=False
                )
            sampled[node, neighbors] = 1.0
        return sampled

    def _sample_neighbors_csr(self, adjacency: CSRMatrix) -> CSRMatrix:
        """Per-node neighbour subsampling on CSR structure.

        The result is intentionally non-symmetric (each node samples its own
        incoming aggregation set), matching the dense sampling path.
        """
        rows: list = []
        cols: list = []
        indptr, indices = adjacency.indptr, adjacency.indices
        for node in range(adjacency.shape[0]):
            neighbors = indices[indptr[node] : indptr[node + 1]]
            if neighbors.size == 0:
                continue
            if neighbors.size > self.num_samples:
                neighbors = self._sample_rng.choice(
                    neighbors, size=self.num_samples, replace=False
                )
            rows.append(np.full(neighbors.size, node, dtype=np.int64))
            cols.append(neighbors)
        if not rows:
            return CSRMatrix.from_coo(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                adjacency.shape,
            )
        row_idx = np.concatenate(rows)
        col_idx = np.concatenate(cols)
        return CSRMatrix.from_coo(
            row_idx, col_idx, np.ones(row_idx.size, dtype=np.float64), adjacency.shape
        )

    def forward(self, features: ArrayOrTensor, adjacency: AdjacencyLike) -> Tensor:
        x = _as_tensor(features)
        aggregation = self._aggregation(adjacency)
        x = self.conv0(x, aggregation)
        x = F.relu(x)
        x = F.normalize_rows(x)
        x = self.dropout(x)
        return self.conv1(x, aggregation)

    @property
    def message_passing_layers(self) -> int:
        return 2

    def forward_blocks(self, features: ArrayOrTensor, blocks: Sequence) -> Tensor:
        """Sampled mini-batch forward.

        The block fanouts replace the model's own per-epoch ``num_samples``
        subsampling: neighbour selection already happened when the blocks
        were drawn, so the aggregation here is the mean over the block rows.
        """
        if len(blocks) != 2:
            raise ValueError(f"expected 2 blocks, got {len(blocks)}")
        x = _as_tensor(features)[blocks[0].src_nodes]
        x = self.conv0(
            x, blocks[0].operator("mean_noself"), x_dst=x[: blocks[0].num_dst]
        )
        x = F.relu(x)
        # Sampled blocks routinely produce exactly-zero post-ReLU rows, whose
        # gradient the plain normalisation cannot handle (see
        # normalize_rows_stable).
        x = F.normalize_rows_stable(x)
        x = self.dropout(x)
        return self.conv1(
            x, blocks[1].operator("mean_noself"), x_dst=x[: blocks[1].num_dst]
        )

    def record_inference_plan(self, recorder) -> None:
        """Mirror :meth:`forward_blocks` in eval mode, kernel by kernel."""
        self.conv0.plan_kernels(recorder, kind="mean_noself")
        recorder.relu()
        recorder.normalize_stable()
        self.dropout.plan_kernels(recorder)
        self.conv1.plan_kernels(recorder, kind="mean_noself")


ModelFactory = Callable[..., GNNModel]

MODEL_REGISTRY: Dict[str, ModelFactory] = {
    "gcn": GCN,
    "gat": GAT,
    "graphsage": GraphSAGE,
}


def build_model(
    name: str,
    in_features: int,
    num_classes: int,
    hidden_features: int = 16,
    rng: RandomState = None,
    **kwargs,
) -> GNNModel:
    """Construct a registered model by name.

    ``hidden_features`` defaults to 16, the hidden width used by the paper.
    Extra keyword arguments are forwarded to the model constructor.
    """
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(sorted(MODEL_REGISTRY))}"
        )
    factory = MODEL_REGISTRY[key]
    return factory(
        in_features=in_features,
        hidden_features=hidden_features,
        num_classes=num_classes,
        rng=rng,
        **kwargs,
    )
