"""Ego-block (sampled k-hop) inference over node subsets.

Full-graph inference costs Θ(N + m) per call no matter how few nodes are
actually being asked about.  This module provides the subset counterpart the
online serving engine and the trainer's sampled evaluation share: build the
(optionally fanout-bounded) k-hop ego blocks of the requested nodes with
:class:`~repro.gnn.sampling.NeighborSampler` and run the model's
``forward_blocks`` path, so the cost is bounded by the nodes' receptive
field — ``O(|nodes| · Π fanouts)`` when sampled — instead of the graph size.

With exhaustive fanouts the result *equals* the full-graph forward restricted
to ``nodes`` (to 1e-8 on both compute backends; asserted by the serving and
sampled-evaluation tests).  Sampled fanouts use the keyed per-destination
sampler, so a node's logits are a pure function of ``(node, fanouts, key)``
— independent of which other nodes share the request batch.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.gnn.models import GNNModel
from repro.gnn.sampling import NeighborSampler
from repro.sparse.csr import CSRMatrix

__all__ = ["resolve_fanouts", "ego_logits", "sampler_for"]

ArrayLike = Union[np.ndarray, object]


def resolve_fanouts(
    model: GNNModel, fanouts: Optional[Sequence[Optional[int]]]
) -> Tuple[Optional[int], ...]:
    """One fanout per message-passing layer (``None`` → exhaustive everywhere).

    Raises for models without a sampled forward path (GAT) — callers that
    want a fallback check ``model.message_passing_layers`` first.
    """
    layers = model.message_passing_layers
    if layers is None:
        raise ValueError(
            f"{type(model).__name__} has no neighbour-sampled forward path"
        )
    if fanouts is None:
        return (None,) * layers
    fanouts = tuple(fanouts)
    if len(fanouts) != layers:
        raise ValueError(
            f"fanouts has {len(fanouts)} entries but the model has "
            f"{layers} message-passing layers"
        )
    return fanouts


def ego_logits(
    model: GNNModel,
    features: ArrayLike,
    sampler: NeighborSampler,
    nodes: np.ndarray,
    fanouts: Optional[Sequence[Optional[int]]] = None,
    key: int = 0,
) -> np.ndarray:
    """Inference-mode logits for ``nodes`` through their (sampled) ego blocks.

    Returns an ``(len(nodes), C)`` array row-aligned with ``nodes`` (which
    must be duplicate-free).  ``fanouts=None`` is exhaustive — the exact
    receptive-field computation; per-layer integer fanouts bound the block
    sizes with the deterministic keyed sampler.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    resolved = resolve_fanouts(model, fanouts)
    blocks = sampler.ego_blocks(nodes, resolved, key=key)
    return model.predict_logits_blocks(features, blocks)


def sampler_for(structure, seed: int = 0) -> NeighborSampler:
    """A :class:`NeighborSampler` over dense or CSR adjacency structure."""
    if isinstance(structure, NeighborSampler):
        return structure
    if isinstance(structure, CSRMatrix):
        return NeighborSampler(structure, seed=seed)
    return NeighborSampler(np.asarray(structure, dtype=np.float64), seed=seed)
