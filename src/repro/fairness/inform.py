"""InFoRM bias metric and training regulariser (Kang et al., KDD 2020).

``Bias(Y, S) = Tr(Yᵀ L_S Y) = ½ Σ_ij S_ij ‖Y_i − Y_j‖²`` — the Laplacian
quadratic form penalising prediction differences between similar nodes.  The
paper plugs this term into the GNN loss (the ``Reg`` baseline) and uses it as
the interested function ``f_bias`` for influence computations.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.laplacian import laplacian
from repro.graphs.similarity import graph_similarity, jaccard_similarity
from repro.nn.tensor import Tensor
from repro.sparse.autodiff import spmm
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_positive

SimilarityLike = Union[np.ndarray, CSRMatrix]


def bias_metric(
    predictions: np.ndarray, similarity: SimilarityLike, normalize: bool = True
) -> float:
    """Individual-fairness bias ``Tr(Yᵀ L_S Y)`` of prediction matrix ``Y``.

    Parameters
    ----------
    predictions:
        ``(N, C)`` model outputs (softmax probabilities in the paper).
    similarity:
        ``(N, N)`` symmetric similarity matrix ``S`` — dense, or a
        :class:`repro.sparse.CSRMatrix` (the sparse attack path), in which
        case the quadratic form is evaluated through the CSR Laplacian in
        O(nnz · C) without densifying.
    normalize:
        When True the trace is divided by the number of nonzero similarity
        entries, making values comparable across graph sizes (the paper
        reports bias on this order of magnitude, e.g. 0.0766 for Cora).
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    if predictions.ndim != 2:
        raise ValueError("predictions must be 2-dimensional")
    if isinstance(similarity, CSRMatrix):
        if similarity.shape != (predictions.shape[0], predictions.shape[0]):
            raise ValueError("similarity shape does not match predictions")
        lap = laplacian(similarity)
        raw = float(np.sum(predictions * lap.matmul_dense(predictions)))
        nonzero = similarity.nnz
    else:
        similarity = np.asarray(similarity, dtype=np.float64)
        if similarity.shape != (predictions.shape[0], predictions.shape[0]):
            raise ValueError("similarity shape does not match predictions")
        lap = laplacian(similarity)
        raw = float(np.trace(predictions.T @ lap @ predictions))
        nonzero = int(np.count_nonzero(similarity))
    if not normalize:
        return raw
    return raw / max(nonzero, 1)


def bias_from_graph(
    predictions: np.ndarray, graph: Graph, normalize: bool = True
) -> float:
    """Bias of ``predictions`` using the graph's (backend-aware) Jaccard similarity."""
    similarity = graph_similarity(graph)
    return bias_metric(predictions, similarity, normalize=normalize)


def bias_tensor(
    probabilities: Tensor,
    laplacian_matrix: SimilarityLike,
    scale: float = 1.0,
) -> Tensor:
    """Differentiable bias ``scale · Tr(Yᵀ L_S Y)`` for use inside losses.

    Accepts the Laplacian in dense or CSR form; the CSR path applies it with
    the tape-integrated ``spmm`` so gradients flow without densification.
    """
    if isinstance(laplacian_matrix, CSRMatrix):
        quadratic = probabilities * spmm(laplacian_matrix, probabilities)
    else:
        lap = Tensor(np.asarray(laplacian_matrix, dtype=np.float64))
        quadratic = probabilities * lap.matmul(probabilities)
    return quadratic.sum() * scale


def inform_regularizer(
    similarity: Optional[SimilarityLike] = None,
    weight: float = 1.0,
    normalize: bool = True,
) -> Callable[[Tensor, Graph], Tensor]:
    """Build the InFoRM fairness regulariser used by the ``Reg`` baselines.

    Parameters
    ----------
    similarity:
        Pre-computed similarity matrix (dense or CSR).  When omitted, the
        Jaccard similarity of the training graph is computed on first use.
    weight:
        Regularisation strength λ added to the task loss.
    normalize:
        Divide the trace by the number of nonzero similarity entries so that
        λ has a comparable meaning across datasets.

    Returns
    -------
    A callable ``(logits, graph) -> Tensor`` compatible with
    :class:`repro.gnn.trainer.Trainer`.  The similarity Laplacian and the
    normalisation scale are memoised per graph revision, so the per-epoch
    cost of the penalty is one Laplacian product instead of a similarity
    rebuild.
    """
    check_positive(weight, name="weight")
    cache: dict = {}

    def _materialise(graph: Graph):
        if similarity is not None:
            sim = (
                similarity
                if isinstance(similarity, CSRMatrix)
                else np.asarray(similarity, dtype=np.float64)
            )
        else:
            sim = jaccard_similarity(graph.adjacency)
        lap = laplacian(sim)
        scale = weight
        if normalize:
            nonzero = sim.nnz if isinstance(sim, CSRMatrix) else int(np.count_nonzero(sim))
            scale = weight / max(nonzero, 1)
        return lap, scale

    def regularizer(logits: Tensor, graph: Graph) -> Tensor:
        key = (id(graph), graph.revision)
        if key not in cache:
            cache.clear()  # one graph per training run; drop stale revisions
            cache[key] = _materialise(graph)
        lap, scale = cache[key]
        probabilities = logits.softmax(axis=1)
        return bias_tensor(probabilities, lap, scale=scale)

    return regularizer
