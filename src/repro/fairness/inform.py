"""InFoRM bias metric and training regulariser (Kang et al., KDD 2020).

``Bias(Y, S) = Tr(Yᵀ L_S Y) = ½ Σ_ij S_ij ‖Y_i − Y_j‖²`` — the Laplacian
quadratic form penalising prediction differences between similar nodes.  The
paper plugs this term into the GNN loss (the ``Reg`` baseline) and uses it as
the interested function ``f_bias`` for influence computations.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.laplacian import laplacian
from repro.graphs.similarity import jaccard_similarity
from repro.nn.tensor import Tensor
from repro.utils.validation import check_positive


def bias_metric(
    predictions: np.ndarray, similarity: np.ndarray, normalize: bool = True
) -> float:
    """Individual-fairness bias ``Tr(Yᵀ L_S Y)`` of prediction matrix ``Y``.

    Parameters
    ----------
    predictions:
        ``(N, C)`` model outputs (softmax probabilities in the paper).
    similarity:
        ``(N, N)`` symmetric similarity matrix ``S``.
    normalize:
        When True the trace is divided by the number of nonzero similarity
        entries, making values comparable across graph sizes (the paper
        reports bias on this order of magnitude, e.g. 0.0766 for Cora).
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    similarity = np.asarray(similarity, dtype=np.float64)
    if predictions.ndim != 2:
        raise ValueError("predictions must be 2-dimensional")
    if similarity.shape != (predictions.shape[0], predictions.shape[0]):
        raise ValueError("similarity shape does not match predictions")
    lap = laplacian(similarity)
    raw = float(np.trace(predictions.T @ lap @ predictions))
    if not normalize:
        return raw
    nonzero = int(np.count_nonzero(similarity))
    return raw / max(nonzero, 1)


def bias_from_graph(
    predictions: np.ndarray, graph: Graph, normalize: bool = True
) -> float:
    """Bias of ``predictions`` using the graph's Jaccard similarity."""
    similarity = jaccard_similarity(graph.adjacency)
    return bias_metric(predictions, similarity, normalize=normalize)


def bias_tensor(
    probabilities: Tensor, laplacian_matrix: np.ndarray, scale: float = 1.0
) -> Tensor:
    """Differentiable bias ``scale · Tr(Yᵀ L_S Y)`` for use inside losses."""
    lap = Tensor(np.asarray(laplacian_matrix, dtype=np.float64))
    quadratic = probabilities * lap.matmul(probabilities)
    return quadratic.sum() * scale


def inform_regularizer(
    similarity: Optional[np.ndarray] = None,
    weight: float = 1.0,
    normalize: bool = True,
) -> Callable[[Tensor, Graph], Tensor]:
    """Build the InFoRM fairness regulariser used by the ``Reg`` baselines.

    Parameters
    ----------
    similarity:
        Pre-computed similarity matrix.  When omitted, the Jaccard similarity
        of the training graph is computed (and cached) on first use.
    weight:
        Regularisation strength λ added to the task loss.
    normalize:
        Divide the trace by the number of nonzero similarity entries so that
        λ has a comparable meaning across datasets.

    Returns
    -------
    A callable ``(logits, graph) -> Tensor`` compatible with
    :class:`repro.gnn.trainer.Trainer`.
    """
    check_positive(weight, name="weight")
    cache: dict[int, np.ndarray] = {}

    def regularizer(logits: Tensor, graph: Graph) -> Tensor:
        if similarity is not None:
            sim = np.asarray(similarity, dtype=np.float64)
        else:
            key = id(graph)
            if key not in cache:
                cache[key] = jaccard_similarity(graph.adjacency)
            sim = cache[key]
        lap = laplacian(sim)
        scale = weight
        if normalize:
            scale = weight / max(int(np.count_nonzero(sim)), 1)
        probabilities = logits.softmax(axis=1)
        return bias_tensor(probabilities, lap, scale=scale)

    return regularizer
