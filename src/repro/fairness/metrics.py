"""Additional individual-fairness diagnostics.

Beyond the headline bias value, these helpers expose per-pair prediction
distances and Lipschitz-style violation counts, which the examples use to
illustrate *why* improving fairness makes the link-stealing attack easier.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.similarity import jaccard_similarity
from repro.fairness.inform import bias_metric


def pairwise_prediction_distance(
    predictions: np.ndarray, pairs: np.ndarray
) -> np.ndarray:
    """Euclidean distance between prediction rows for each node pair."""
    predictions = np.asarray(predictions, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.zeros(0)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must have shape (M, 2)")
    diff = predictions[pairs[:, 0]] - predictions[pairs[:, 1]]
    return np.linalg.norm(diff, axis=1)


def lipschitz_violations(
    predictions: np.ndarray,
    similarity: np.ndarray,
    constant: float = 1.0,
) -> int:
    """Count pairs violating ``‖Y_i − Y_j‖ ≤ constant · (1 − S_ij)``.

    This is the "fairness through awareness" Lipschitz reading of individual
    fairness: very similar nodes (S close to 1) must receive very similar
    predictions.  Only pairs with nonzero similarity are considered.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    similarity = np.asarray(similarity, dtype=np.float64)
    rows, cols = np.nonzero(np.triu(similarity, k=1))
    if rows.size == 0:
        return 0
    distances = np.linalg.norm(predictions[rows] - predictions[cols], axis=1)
    budget = constant * (1.0 - similarity[rows, cols])
    return int(np.count_nonzero(distances > budget))


def individual_fairness_report(
    predictions: np.ndarray,
    graph: Graph,
    similarity: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """Summary of individual-fairness statistics for a prediction matrix."""
    sim = jaccard_similarity(graph.adjacency) if similarity is None else similarity
    rows, cols = np.nonzero(np.triu(sim, k=1))
    pairs = np.stack([rows, cols], axis=1) if rows.size else np.zeros((0, 2), dtype=np.int64)
    distances = pairwise_prediction_distance(predictions, pairs)
    return {
        "bias": bias_metric(predictions, sim),
        "bias_unnormalized": bias_metric(predictions, sim, normalize=False),
        "mean_similar_pair_distance": float(distances.mean()) if distances.size else 0.0,
        "max_similar_pair_distance": float(distances.max()) if distances.size else 0.0,
        "num_similar_pairs": int(rows.size),
        "lipschitz_violations": lipschitz_violations(predictions, sim),
    }
