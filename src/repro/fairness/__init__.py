"""Individual fairness of nodes (InFoRM-style Laplacian bias).

Definition 1 of the paper: given GNN predictions ``Y`` and the Jaccard
similarity matrix ``S``, the bias is ``Tr(Yᵀ L_S Y)``; smaller is fairer.
This subpackage provides the metric, a differentiable training regulariser,
and the fairness-aware reweighting (FR) weight computation used by PPFR.
"""

from repro.fairness.inform import (
    bias_metric,
    bias_from_graph,
    inform_regularizer,
    bias_tensor,
)
from repro.fairness.metrics import (
    individual_fairness_report,
    pairwise_prediction_distance,
    lipschitz_violations,
)
from repro.fairness.reweighting import FairnessReweightingConfig, compute_fairness_weights

__all__ = [
    "bias_metric",
    "bias_from_graph",
    "inform_regularizer",
    "bias_tensor",
    "individual_fairness_report",
    "pairwise_prediction_distance",
    "lipschitz_violations",
    "FairnessReweightingConfig",
    "compute_fairness_weights",
]
