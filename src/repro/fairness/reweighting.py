"""Fairness-aware reweighting (FR) — the weight-space half of PPFR.

Given a vanilla-trained model, FR computes per-training-node influence scores
on bias and utility, solves the QCLP of Eq. (13) for weights ``w ∈ [-1, 1]``
and returns the fine-tuning loss multipliers ``1 + w`` (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gnn.models import GNNModel
from repro.graphs.graph import Graph
from repro.influence.functions import InfluenceConfig, InfluenceEstimator
from repro.optimization.qclp import QCLPProblem, QCLPSolution, solve_qclp


@dataclass
class FairnessReweightingConfig:
    """Hyper-parameters of fairness-aware reweighting.

    ``alpha`` and ``beta`` follow the paper's settings (α = 0.9, β = 0.1).
    """

    alpha: float = 0.9
    beta: float = 0.1
    backend: str = "slsqp"
    influence: InfluenceConfig = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.influence is None:
            self.influence = InfluenceConfig()
        if not 0 < self.alpha:
            raise ValueError("alpha must be positive")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")


@dataclass
class FairnessWeights:
    """Output of the reweighting step."""

    train_indices: np.ndarray
    raw_weights: np.ndarray
    loss_multipliers: np.ndarray
    qclp: QCLPSolution
    bias_influence: np.ndarray
    utility_influence: np.ndarray


def compute_fairness_weights(
    model: GNNModel,
    graph: Graph,
    config: Optional[FairnessReweightingConfig] = None,
    similarity: Optional[np.ndarray] = None,
    adjacency: Optional[np.ndarray] = None,
) -> FairnessWeights:
    """Compute the fairness-aware loss weights for fine-tuning ``model``.

    Parameters
    ----------
    model:
        The vanilla-trained victim model (evaluated at its current θ*).
    graph:
        Training graph with labels and a train mask.
    config:
        QCLP and influence-estimation settings.
    similarity:
        Optional pre-computed similarity matrix (defaults to Jaccard).
    adjacency:
        Optional structure override if the model is being fine-tuned on a
        perturbed graph.

    Returns
    -------
    :class:`FairnessWeights` whose ``loss_multipliers`` (= ``1 + w``) plug
    directly into :meth:`repro.gnn.Trainer.fine_tune`.
    """
    config = config or FairnessReweightingConfig()
    estimator = InfluenceEstimator(
        model, graph, config=config.influence, adjacency=adjacency
    )
    bias_influence = estimator.bias_influence(similarity=similarity)
    utility_influence = estimator.utility_influence()

    problem = QCLPProblem(
        bias_influence=bias_influence,
        utility_influence=utility_influence,
        alpha=config.alpha,
        beta=config.beta,
    )
    solution = solve_qclp(problem, backend=config.backend)
    raw = solution.weights
    multipliers = np.clip(1.0 + raw, 0.0, 2.0)
    return FairnessWeights(
        train_indices=estimator.train_indices.copy(),
        raw_weights=raw,
        loss_multipliers=multipliers,
        qclp=solution,
        bias_influence=bias_influence,
        utility_influence=utility_influence,
    )
