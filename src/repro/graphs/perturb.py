"""Graph-structure perturbation primitives.

Both the edge differential-privacy baselines (EdgeRand / LapGraph) and the
paper's privacy-aware perturbation module (Section VI-B2) modify the
adjacency matrix.  The low-level, method-agnostic edit operations live here;
the method-specific policies live in :mod:`repro.privacy.dp` and
:mod:`repro.core.perturbation`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_adjacency


def _validate_pairs(pairs: np.ndarray, num_nodes: int) -> np.ndarray:
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return pairs.reshape(0, 2)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must have shape (M, 2)")
    if pairs.min() < 0 or pairs.max() >= num_nodes:
        raise ValueError("pair indices out of range")
    if np.any(pairs[:, 0] == pairs[:, 1]):
        raise ValueError("self-loops are not allowed")
    return pairs


def add_edges(adjacency: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Return a copy of ``adjacency`` with the given undirected edges added."""
    adjacency = check_adjacency(adjacency).copy()
    pairs = _validate_pairs(pairs, adjacency.shape[0])
    for i, j in pairs:
        adjacency[i, j] = 1.0
        adjacency[j, i] = 1.0
    return adjacency


def remove_edges(adjacency: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Return a copy of ``adjacency`` with the given undirected edges removed."""
    adjacency = check_adjacency(adjacency).copy()
    pairs = _validate_pairs(pairs, adjacency.shape[0])
    for i, j in pairs:
        adjacency[i, j] = 0.0
        adjacency[j, i] = 0.0
    return adjacency


def random_edge_flip(
    adjacency: np.ndarray, flip_probability: float, rng: RandomState = None
) -> np.ndarray:
    """Flip each potential edge independently with ``flip_probability``.

    This is the randomised-response primitive underlying EdgeRand.
    """
    if not 0.0 <= flip_probability <= 1.0:
        raise ValueError("flip_probability must lie in [0, 1]")
    adjacency = check_adjacency(adjacency)
    generator = ensure_rng(rng)
    n = adjacency.shape[0]
    flips = np.triu(generator.random((n, n)) < flip_probability, k=1)
    upper = np.triu(adjacency > 0, k=1)
    flipped = np.logical_xor(upper, flips)
    result = (flipped | flipped.T).astype(np.float64)
    np.fill_diagonal(result, 0.0)
    return result


def heterophilic_candidates(
    adjacency: np.ndarray,
    predicted_labels: np.ndarray,
    node: int,
) -> np.ndarray:
    """Unconnected nodes whose *predicted* label differs from ``node``'s.

    This is the candidate pool of the paper's privacy-aware perturbation: for
    each node the method samples new "noisy" neighbours from the set of
    currently unconnected nodes predicted to belong to a different class.
    """
    adjacency = check_adjacency(adjacency)
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    n = adjacency.shape[0]
    if predicted_labels.shape != (n,):
        raise ValueError("predicted_labels must have one entry per node")
    if not 0 <= node < n:
        raise IndexError(f"node {node} out of range")
    unconnected = adjacency[node] == 0
    unconnected[node] = False
    different_label = predicted_labels != predicted_labels[node]
    return np.nonzero(unconnected & different_label)[0]


def symmetric_difference(first: np.ndarray, second: np.ndarray) -> int:
    """Number of undirected edges present in exactly one of two adjacencies."""
    first = check_adjacency(first)
    second = check_adjacency(second)
    if first.shape != second.shape:
        raise ValueError("adjacency matrices must have the same shape")
    diff = np.triu((first > 0) != (second > 0), k=1)
    return int(np.count_nonzero(diff))
