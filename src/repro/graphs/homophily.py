"""Homophily and class-linking statistics.

The trade-off analysed in the paper holds on *homophilous, sparse* graphs
(``p > q``, ``1 - p ≫ p``).  Table V investigates weak-homophily graphs, so
the dataset surrogates are calibrated by their edge homophily value; these
helpers measure and invert that calibration.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_adjacency, check_labels


def edge_homophily(adjacency: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of edges whose endpoints share a label.

    This is the homophily measure quoted in the paper (0.81 for Cora, 0.74 for
    Citeseer, 0.80 for Pubmed, 0.66 for Enzymes, 0.62 for Credit).
    """
    adjacency = check_adjacency(adjacency)
    labels = check_labels(labels, num_nodes=adjacency.shape[0])
    rows, cols = np.nonzero(np.triu(adjacency, k=1))
    if rows.size == 0:
        return 0.0
    same = labels[rows] == labels[cols]
    return float(same.mean())


def node_homophily(adjacency: np.ndarray, labels: np.ndarray) -> float:
    """Average over nodes of the fraction of same-label neighbours."""
    adjacency = check_adjacency(adjacency)
    labels = check_labels(labels, num_nodes=adjacency.shape[0])
    fractions = []
    for node in range(adjacency.shape[0]):
        neighbors = np.nonzero(adjacency[node])[0]
        if neighbors.size == 0:
            continue
        fractions.append(float((labels[neighbors] == labels[node]).mean()))
    if not fractions:
        return 0.0
    return float(np.mean(fractions))


def class_linking_probabilities(
    adjacency: np.ndarray, labels: np.ndarray
) -> Tuple[float, float]:
    """Estimate the intra-class ``p`` and inter-class ``q`` linking probabilities.

    These are the SBM parameters of the paper's theoretical model: ``p`` is
    the probability that two same-class nodes are connected, ``q`` the
    probability for different-class nodes.
    """
    adjacency = check_adjacency(adjacency)
    labels = check_labels(labels, num_nodes=adjacency.shape[0])
    n = adjacency.shape[0]
    same_class = labels[:, None] == labels[None, :]
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    intra_pairs = int(np.count_nonzero(same_class & upper))
    inter_pairs = int(np.count_nonzero(~same_class & upper))
    edges = adjacency > 0
    intra_edges = int(np.count_nonzero(edges & same_class & upper))
    inter_edges = int(np.count_nonzero(edges & ~same_class & upper))
    p = intra_edges / intra_pairs if intra_pairs else 0.0
    q = inter_edges / inter_pairs if inter_pairs else 0.0
    return float(p), float(q)


def is_sparse_and_homophilous(
    adjacency: np.ndarray, labels: np.ndarray, sparsity_margin: float = 10.0
) -> bool:
    """Check the assumptions of Proposition V.2: ``p > q`` and ``1 - p ≫ p``.

    ``sparsity_margin`` quantifies "≫": the non-edge probability must exceed
    ``sparsity_margin`` times the intra-class edge probability.
    """
    p, q = class_linking_probabilities(adjacency, labels)
    return p > q and (1.0 - p) > sparsity_margin * p
