"""Graph Laplacians.

``Bias(Y, S) = Tr(Yᵀ L_S Y)`` (Definition 1 of the paper) uses the Laplacian
of the *similarity* matrix; GCN propagation uses symmetric / left-normalised
adjacency with self-loops.  Both live here.

Every function dispatches on the input type: dense ``(N, N)`` arrays take
the original dense path and return dense arrays, while
:class:`repro.sparse.CSRMatrix` inputs are routed to the equivalent sparse
kernels in :mod:`repro.sparse.ops` and return CSR matrices — so callers can
stay backend-agnostic.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    gcn_norm_csr,
    laplacian_csr,
    left_norm_csr,
    normalized_laplacian_csr,
)
from repro.utils.validation import check_adjacency

MatrixLike = Union[np.ndarray, CSRMatrix]


def laplacian(weights: MatrixLike) -> MatrixLike:
    """Combinatorial Laplacian ``L = D - W`` of a weighted symmetric matrix."""
    if isinstance(weights, CSRMatrix):
        return laplacian_csr(weights)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError("weights must be a square matrix")
    degree = np.diag(weights.sum(axis=1))
    return degree - weights


def normalized_laplacian(weights: MatrixLike, eps: float = 1e-12) -> MatrixLike:
    """Symmetric normalised Laplacian ``I - D^{-1/2} W D^{-1/2}``."""
    if isinstance(weights, CSRMatrix):
        return normalized_laplacian_csr(weights, eps=eps)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError("weights must be a square matrix")
    degrees = weights.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, eps))
    inv_sqrt[degrees <= 0] = 0.0
    normalized = weights * inv_sqrt[:, None] * inv_sqrt[None, :]
    return np.eye(weights.shape[0]) - normalized


def gcn_normalization(adjacency: MatrixLike, mode: str = "symmetric") -> MatrixLike:
    """GCN propagation matrix ``Â`` with self-loops.

    ``mode="symmetric"`` gives ``D̃^{-1/2}(A+I)D̃^{-1/2}`` (Kipf & Welling);
    ``mode="left"`` gives ``D̃^{-1}(A+I)``, the variant used in the paper's
    embedding-space risk model (Section VI-B2).
    """
    if isinstance(adjacency, CSRMatrix):
        if mode == "symmetric":
            return gcn_norm_csr(adjacency)
        if mode == "left":
            return left_norm_csr(adjacency)
        raise ValueError(f"unknown normalisation mode {mode!r}")
    adjacency = check_adjacency(adjacency)
    with_loops = adjacency + np.eye(adjacency.shape[0])
    degrees = with_loops.sum(axis=1)
    if mode == "symmetric":
        inv_sqrt = 1.0 / np.sqrt(degrees)
        return with_loops * inv_sqrt[:, None] * inv_sqrt[None, :]
    if mode == "left":
        return with_loops / degrees[:, None]
    raise ValueError(f"unknown normalisation mode {mode!r}")
