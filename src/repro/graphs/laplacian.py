"""Graph Laplacians.

``Bias(Y, S) = Tr(Yᵀ L_S Y)`` (Definition 1 of the paper) uses the Laplacian
of the *similarity* matrix; GCN propagation uses symmetric / left-normalised
adjacency with self-loops.  Both live here.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_adjacency


def laplacian(weights: np.ndarray) -> np.ndarray:
    """Combinatorial Laplacian ``L = D - W`` of a weighted symmetric matrix."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError("weights must be a square matrix")
    degree = np.diag(weights.sum(axis=1))
    return degree - weights


def normalized_laplacian(weights: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Symmetric normalised Laplacian ``I - D^{-1/2} W D^{-1/2}``."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError("weights must be a square matrix")
    degrees = weights.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, eps))
    inv_sqrt[degrees <= 0] = 0.0
    normalized = weights * inv_sqrt[:, None] * inv_sqrt[None, :]
    return np.eye(weights.shape[0]) - normalized


def gcn_normalization(adjacency: np.ndarray, mode: str = "symmetric") -> np.ndarray:
    """GCN propagation matrix ``Â`` with self-loops.

    ``mode="symmetric"`` gives ``D̃^{-1/2}(A+I)D̃^{-1/2}`` (Kipf & Welling);
    ``mode="left"`` gives ``D̃^{-1}(A+I)``, the variant used in the paper's
    embedding-space risk model (Section VI-B2).
    """
    adjacency = check_adjacency(adjacency)
    with_loops = adjacency + np.eye(adjacency.shape[0])
    degrees = with_loops.sum(axis=1)
    if mode == "symmetric":
        inv_sqrt = 1.0 / np.sqrt(degrees)
        return with_loops * inv_sqrt[:, None] * inv_sqrt[None, :]
    if mode == "left":
        return with_loops / degrees[:, None]
    raise ValueError(f"unknown normalisation mode {mode!r}")
