"""k-hop node-pair utilities (Lemma V.1, Proposition V.2).

The paper's theoretical argument partitions node pairs by the hop distance
``k`` of the shortest path between them:

* ``k = 1`` — connected pairs (Jaccard similarity strictly positive),
* ``k = 2`` — unconnected pairs that share a neighbour (similarity > 0),
* ``k > 2`` — unconnected pairs with zero similarity,
* ``k = ∞`` — disconnected pairs.

These helpers compute hop distances with a BFS over the adjacency structure
and expose the analytic 2-hop ratio of Eq. (5).  BFS dispatches through the
compute backend: CSR inputs (and dense graphs the ``auto`` heuristic deems
large and sparse) use the frontier BFS over CSR adjacency lists, everything
else takes the original dense-row scan.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Tuple, Union

import numpy as np

from repro.sparse.backend import resolve_backend
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import INF_HOPS, gather_neighbors, shortest_path_hops_csr
from repro.utils.validation import check_adjacency

AdjacencyLike = Union[np.ndarray, CSRMatrix]

__all__ = [
    "INF_HOPS",
    "shortest_path_hops",
    "khop_frontier",
    "khop_pairs",
    "pair_hop_histogram",
    "two_hop_ratio_empirical",
    "two_hop_ratio_theoretical",
    "connected_unconnected_split",
]
# INF_HOPS (the marker for node pairs with no connecting path) is defined in
# repro.sparse.ops — the layer both BFS implementations share — and
# re-exported here, its historical public home.


def shortest_path_hops(adjacency: AdjacencyLike) -> np.ndarray:
    """All-pairs shortest-path hop counts via per-node BFS.

    Returns an ``(N, N)`` integer matrix whose ``(i, j)`` entry is the number
    of edges on the shortest path, ``0`` on the diagonal and :data:`INF_HOPS`
    for unreachable pairs.  The result is identical on both backends (integer
    hop counts have no round-off).
    """
    if isinstance(adjacency, CSRMatrix):
        return shortest_path_hops_csr(adjacency)
    adjacency = check_adjacency(adjacency)
    if resolve_backend(adjacency).name == "sparse":
        return shortest_path_hops_csr(CSRMatrix.from_dense(adjacency))
    n = adjacency.shape[0]
    neighbors = [np.nonzero(adjacency[i])[0] for i in range(n)]
    hops = np.full((n, n), INF_HOPS, dtype=np.int64)
    for source in range(n):
        hops[source, source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            next_hop = hops[source, node] + 1
            for neighbor in neighbors[node]:
                if hops[source, neighbor] == INF_HOPS:
                    hops[source, neighbor] = next_hop
                    queue.append(neighbor)
    return hops


def khop_frontier(adjacency: AdjacencyLike, seeds: np.ndarray, hops: int) -> np.ndarray:
    """Sorted unique nodes within ``hops`` edges of ``seeds`` (seeds included).

    This is the receptive field of an ``hops``-layer message-passing model
    over the seed set, computed by the same frontier expansion the BFS and
    the mini-batch neighbour sampler use
    (:func:`repro.sparse.ops.gather_neighbors`): each level gathers the
    concatenated adjacency lists of the still-unvisited frontier, so the cost
    is O(Σ deg(visited)) instead of any dense scan.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    csr = adjacency if isinstance(adjacency, CSRMatrix) else CSRMatrix.from_dense(
        check_adjacency(adjacency)
    )
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size and (seeds.min() < 0 or seeds.max() >= csr.shape[0]):
        raise ValueError("seed index out of bounds")
    visited = np.unique(seeds)
    frontier = visited
    for _ in range(hops):
        if frontier.size == 0:
            break
        candidates = np.unique(gather_neighbors(csr.indptr, csr.indices, frontier))
        frontier = candidates[~np.isin(candidates, visited, assume_unique=True)]
        visited = np.union1d(visited, frontier)
    return visited


def khop_pairs(adjacency: AdjacencyLike, k: int) -> np.ndarray:
    """Return the ``(M, 2)`` array of node pairs (i < j) at hop distance ``k``.

    ``k = -1`` (:data:`INF_HOPS`) selects disconnected pairs.
    """
    hops = shortest_path_hops(adjacency)
    mask = np.triu(hops == k, k=1)
    rows, cols = np.nonzero(mask)
    return np.stack([rows, cols], axis=1)


def pair_hop_histogram(adjacency: AdjacencyLike) -> Dict[int, int]:
    """Histogram of hop distances over all unordered node pairs."""
    hops = shortest_path_hops(adjacency)
    n = hops.shape[0]
    upper = hops[np.triu_indices(n, k=1)]
    values, counts = np.unique(upper, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def two_hop_ratio_empirical(adjacency: AdjacencyLike) -> float:
    """Fraction of *unconnected* pairs that are exactly 2 hops apart.

    This is the empirical counterpart of Eq. (5): the paper argues this ratio
    is close to zero for sparse homophilous graphs, which is why improving
    fairness leaves the unconnected-pair distance ``d0`` nearly invariant.
    """
    histogram = pair_hop_histogram(adjacency)
    unconnected = sum(count for hop, count in histogram.items() if hop != 1 and hop != 0)
    if unconnected == 0:
        return 0.0
    return histogram.get(2, 0) / unconnected


def two_hop_ratio_theoretical(p: float, q: float) -> float:
    """Analytic 2-hop ratio ``(p+q)² / (1-(p+q))`` from Eq. (5).

    ``p`` and ``q`` are the intra-class and inter-class linking probabilities
    of the homophilous SBM used in the paper's analysis.
    """
    if not 0.0 <= q <= p <= 1.0:
        raise ValueError("probabilities must satisfy 0 <= q <= p <= 1")
    total = p + q
    if total >= 1.0:
        raise ValueError("p + q must be < 1 for the sparse-graph approximation")
    return total**2 / (1.0 - total)


def connected_unconnected_split(
    adjacency: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return (connected_pairs, unconnected_pairs) as ``(M, 2)`` index arrays.

    Disconnected (infinite-hop) pairs count as unconnected, matching the
    attack model where any non-edge is a negative example.
    """
    adjacency = check_adjacency(adjacency)
    n = adjacency.shape[0]
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    connected_mask = (adjacency > 0) & upper
    unconnected_mask = (adjacency == 0) & upper
    connected = np.stack(np.nonzero(connected_mask), axis=1)
    unconnected = np.stack(np.nonzero(unconnected_mask), axis=1)
    return connected, unconnected
