"""Revision tagging of adjacency structures for operator caching.

The compute backend memoises propagation operators (GCN normalisation,
Laplacians, neighbourhood means) so that repeated forward passes over the
same structure — every epoch of vanilla training, every PPFR fine-tune step —
stop rebuilding them.  Caching a derived operator is only sound if the cache
key changes whenever the underlying structure changes, so this module
maintains a process-wide *revision registry*:

* every :class:`repro.graphs.Graph` tags its adjacency with a fresh,
  monotonically increasing revision id at construction and bumps it on any
  mutation (``bump_revision``; structure-deriving helpers like
  ``with_adjacency`` construct a new ``Graph`` and therefore a new revision);
* perturbation producers (:mod:`repro.core.perturbation`,
  :mod:`repro.privacy.dp`) tag the arrays they return as *owned* — they
  allocate them and never mutate them afterwards;
* arrays of unknown provenance get a *session* tag that is refreshed every
  time a consumer (e.g. the trainer) re-enters them, so a stale operator can
  never be served for an array that was mutated between uses.

The registry is keyed by object identity and cleaned up through weak
references, so tagging never extends an array's lifetime.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from typing import Optional

__all__ = [
    "next_revision",
    "tag_adjacency",
    "adjacency_revision",
    "ensure_revision",
]

_COUNTER = itertools.count(1)
_LOCK = threading.Lock()

# id(obj) -> (revision, owned).  Entries are evicted by a weakref.finalize
# callback when the tagged object is garbage collected.
_REGISTRY: dict = {}


def next_revision() -> int:
    """Return a fresh process-unique revision id (thread-safe, monotonic)."""
    with _LOCK:
        return next(_COUNTER)


def _evict(key: int) -> None:
    with _LOCK:
        _REGISTRY.pop(key, None)


def tag_adjacency(obj, revision: Optional[int] = None, owned: bool = True) -> int:
    """Tag ``obj`` (dense array or CSR matrix) with a revision id.

    Parameters
    ----------
    obj:
        The adjacency structure.  Must support weak references (NumPy arrays
        and :class:`repro.sparse.CSRMatrix` both do).
    revision:
        Explicit revision to assign; a fresh one is drawn when omitted.
    owned:
        ``True`` when the caller owns ``obj`` and guarantees it is never
        mutated while tagged (the :class:`Graph` / perturbation contract).
        Unowned tags are refreshed by :func:`ensure_revision` on re-entry.
    """
    key = id(obj)
    if revision is None:
        revision = next_revision()
    with _LOCK:
        fresh = key not in _REGISTRY
        _REGISTRY[key] = (int(revision), bool(owned))
    if fresh:
        # Register cleanup once per object; re-tagging reuses the finalizer.
        weakref.finalize(obj, _evict, key)
    return int(revision)


def adjacency_revision(obj) -> Optional[int]:
    """The revision currently tagged on ``obj``, or ``None`` when untagged."""
    with _LOCK:
        entry = _REGISTRY.get(id(obj))
    return None if entry is None else entry[0]


def ensure_revision(obj) -> int:
    """Return a revision for ``obj``, suitable for scoping a training run.

    Owned tags (assigned by :class:`Graph` or a perturbation producer) are
    returned unchanged.  Untagged objects and objects carrying an unowned
    session tag get a *fresh* revision: the caller cannot prove the array was
    not mutated since the previous tag, so refreshing guarantees the operator
    cache can never serve a stale normalisation at the cost of one rebuild.
    """
    key = id(obj)
    with _LOCK:
        entry = _REGISTRY.get(key)
        if entry is not None and entry[1]:
            return entry[0]
    return tag_adjacency(obj, owned=False)
