"""Graph data structures, similarity matrices and random-graph generators.

This subpackage is the graph substrate of the reproduction: it provides the
:class:`Graph` container used throughout the library, the Jaccard similarity
matrix and Laplacians that define individual fairness (Section III of the
paper), k-hop node-pair utilities used by Lemma V.1 / Proposition V.2, the
homophily and sparsity statistics the theory depends on, and stochastic
block-model generators used to synthesise dataset surrogates.
"""

from repro.graphs.graph import Graph
from repro.graphs.revision import (
    adjacency_revision,
    ensure_revision,
    next_revision,
    tag_adjacency,
)
from repro.graphs.similarity import (
    cosine_feature_similarity,
    graph_similarity,
    jaccard_for_pairs,
    jaccard_similarity,
)
from repro.graphs.laplacian import laplacian, normalized_laplacian
from repro.graphs.khop import (
    shortest_path_hops,
    khop_pairs,
    pair_hop_histogram,
    two_hop_ratio_theoretical,
)
from repro.graphs.homophily import edge_homophily, class_linking_probabilities
from repro.graphs.generators import (
    stochastic_block_model,
    planted_partition_graph,
    sbm_probabilities_for_homophily,
    sparse_planted_partition_edges,
    gaussian_class_features,
    binary_class_features,
)
from repro.graphs.perturb import (
    add_edges,
    remove_edges,
    random_edge_flip,
    heterophilic_candidates,
)
from repro.graphs.io import save_graph, load_graph

__all__ = [
    "Graph",
    "adjacency_revision",
    "ensure_revision",
    "next_revision",
    "tag_adjacency",
    "jaccard_similarity",
    "jaccard_for_pairs",
    "graph_similarity",
    "cosine_feature_similarity",
    "laplacian",
    "normalized_laplacian",
    "shortest_path_hops",
    "khop_pairs",
    "pair_hop_histogram",
    "two_hop_ratio_theoretical",
    "edge_homophily",
    "class_linking_probabilities",
    "stochastic_block_model",
    "planted_partition_graph",
    "sbm_probabilities_for_homophily",
    "sparse_planted_partition_edges",
    "gaussian_class_features",
    "binary_class_features",
    "add_edges",
    "remove_edges",
    "random_edge_flip",
    "heterophilic_candidates",
    "save_graph",
    "load_graph",
]
