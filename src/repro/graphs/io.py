"""Saving and loading :class:`repro.graphs.Graph` objects as ``.npz`` archives.

Surrogate graphs are cheap to regenerate from a seed, but persisting the exact
graph used in a run makes experiment artefacts self-contained (e.g. to attach
the attacked graph to an audit report).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.graphs.graph import Graph


def save_graph(graph: Graph, path: str) -> None:
    """Write ``graph`` to ``path`` as a compressed NumPy archive.

    Metadata is stored as JSON; non-serialisable entries (e.g. the generating
    :class:`DatasetSpec`) are stringified.
    """
    directory = os.path.dirname(os.path.abspath(path))
    if directory and not os.path.isdir(directory):
        os.makedirs(directory, exist_ok=True)
    arrays = {
        "adjacency": graph.adjacency,
        "features": graph.features,
        "name": np.array(graph.name),
        "metadata_json": np.array(json.dumps(graph.metadata, default=str)),
    }
    for key in ("labels", "train_mask", "val_mask", "test_mask"):
        value = getattr(graph, key)
        if value is not None:
            arrays[key] = value
    np.savez_compressed(path, **arrays)


def load_graph(path: str) -> Graph:
    """Load a graph previously written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as archive:
        def optional(key):
            return archive[key].copy() if key in archive.files else None

        metadata = {}
        if "metadata_json" in archive.files:
            metadata = json.loads(str(archive["metadata_json"]))
        return Graph(
            adjacency=archive["adjacency"].copy(),
            features=archive["features"].copy(),
            labels=optional("labels"),
            train_mask=optional("train_mask"),
            val_mask=optional("val_mask"),
            test_mask=optional("test_mask"),
            name=str(archive["name"]) if "name" in archive.files else "graph",
            metadata=metadata,
        )
