"""Random-graph and feature generators.

The reproduction environment has no network access, so the public benchmark
graphs (Cora, Citeseer, Pubmed, Enzymes, Credit) are replaced by calibrated
stochastic-block-model surrogates (see DESIGN.md §2).  The generators here
produce the structure (degree-corrected SBM / planted partition) and node
features (class-conditional Gaussian or sparse binary "bag of words") used by
:mod:`repro.datasets`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_in_range, check_positive, check_probability


def sbm_probabilities_for_homophily(
    num_nodes: int,
    num_classes: int,
    average_degree: float,
    homophily: float,
) -> Tuple[float, float]:
    """Solve for SBM probabilities ``(p, q)`` matching degree and homophily.

    Given a balanced ``num_classes``-block SBM, the expected degree of a node
    is ``(n_c - 1) p + (n - n_c) q`` where ``n_c = n / C`` is the block size,
    and the expected edge homophily is the fraction of intra-class edges.
    Solving those two equations for the target ``average_degree`` and
    ``homophily`` gives the intra-class probability ``p`` and the inter-class
    probability ``q``.
    """
    check_positive(average_degree, name="average_degree")
    check_probability(homophily, name="homophily")
    if num_classes < 2:
        raise ValueError("num_classes must be at least 2")
    if num_nodes < num_classes * 2:
        raise ValueError("num_nodes too small for the requested number of classes")
    block = num_nodes / num_classes
    intra_slots = block - 1.0
    inter_slots = num_nodes - block
    # expected intra-degree = homophily * average_degree, inter likewise.
    p = homophily * average_degree / intra_slots
    q = (1.0 - homophily) * average_degree / inter_slots
    if p > 1.0 or q > 1.0:
        raise ValueError(
            "requested average degree / homophily are infeasible for this graph size"
        )
    return float(p), float(q)


def stochastic_block_model(
    block_sizes: Sequence[int],
    intra_probability: float,
    inter_probability: float,
    rng: RandomState = None,
    degree_heterogeneity: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a (degree-corrected) stochastic block model.

    Parameters
    ----------
    block_sizes:
        Number of nodes in each block/class.
    intra_probability / inter_probability:
        Edge probabilities within / across blocks (``p`` and ``q``).
    degree_heterogeneity:
        When positive, per-node propensities are drawn from a log-normal with
        this sigma, yielding the heavy-tailed degree distributions of citation
        networks (degree-corrected SBM).  Zero gives the vanilla SBM.

    Returns
    -------
    (adjacency, labels):
        Dense symmetric 0/1 adjacency without self-loops and the block label
        of every node.
    """
    check_probability(intra_probability, name="intra_probability")
    check_probability(inter_probability, name="inter_probability")
    check_in_range(degree_heterogeneity, 0.0, 5.0, name="degree_heterogeneity")
    if any(size <= 0 for size in block_sizes):
        raise ValueError("block sizes must be positive")
    generator = ensure_rng(rng)

    labels = np.concatenate(
        [np.full(size, block, dtype=np.int64) for block, size in enumerate(block_sizes)]
    )
    n = labels.shape[0]

    if degree_heterogeneity > 0:
        propensity = generator.lognormal(mean=0.0, sigma=degree_heterogeneity, size=n)
        propensity /= propensity.mean()
    else:
        propensity = np.ones(n)

    same_block = labels[:, None] == labels[None, :]
    base = np.where(same_block, intra_probability, inter_probability)
    probabilities = base * propensity[:, None] * propensity[None, :]
    np.clip(probabilities, 0.0, 1.0, out=probabilities)

    upper = np.triu(generator.random((n, n)) < probabilities, k=1)
    adjacency = (upper | upper.T).astype(np.float64)
    np.fill_diagonal(adjacency, 0.0)
    return adjacency, labels


def planted_partition_graph(
    num_nodes: int,
    num_classes: int,
    average_degree: float,
    homophily: float,
    rng: RandomState = None,
    degree_heterogeneity: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Balanced SBM parameterised directly by average degree and homophily."""
    p, q = sbm_probabilities_for_homophily(
        num_nodes, num_classes, average_degree, homophily
    )
    base = num_nodes // num_classes
    sizes = [base] * num_classes
    for extra in range(num_nodes - base * num_classes):
        sizes[extra] += 1
    return stochastic_block_model(
        sizes, p, q, rng=rng, degree_heterogeneity=degree_heterogeneity
    )


def sparse_planted_partition_edges(
    num_nodes: int,
    num_classes: int,
    average_degree: float,
    homophily: float,
    rng: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """O(m) edge-list sampler for the balanced planted partition.

    The dense :func:`planted_partition_graph` materialises an ``(N, N)``
    probability and coin-flip matrix, which caps it at a few thousand nodes.
    This sampler draws, for every block pair, the edge *count* from the exact
    binomial and then samples that many endpoint pairs uniformly (with
    replacement, de-duplicated afterwards), touching only O(m) memory — the
    scalability benchmarks use it for graphs up to 50k+ nodes.

    The marginal edge distribution matches the SBM up to the de-duplication
    of collided samples, a vanishing correction at the sparse densities the
    paper studies (expected collision fraction ≈ edge probability).

    Returns
    -------
    (edges, labels):
        ``(E, 2)`` int64 array of unique undirected edges with ``i < j`` and
        the block label of every node.
    """
    p, q = sbm_probabilities_for_homophily(
        num_nodes, num_classes, average_degree, homophily
    )
    generator = ensure_rng(rng)
    base = num_nodes // num_classes
    sizes = [base] * num_classes
    for extra in range(num_nodes - base * num_classes):
        sizes[extra] += 1
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    labels = np.concatenate(
        [np.full(size, block, dtype=np.int64) for block, size in enumerate(sizes)]
    )

    chunks = []
    for a in range(num_classes):
        for b in range(a, num_classes):
            size_a, size_b = sizes[a], sizes[b]
            if a == b:
                pair_count = size_a * (size_a - 1) // 2
                probability = p
            else:
                pair_count = size_a * size_b
                probability = q
            if pair_count == 0 or probability == 0.0:
                continue
            count = int(generator.binomial(pair_count, probability))
            if count == 0:
                continue
            left = generator.integers(0, size_a, size=count) + starts[a]
            right = generator.integers(0, size_b, size=count) + starts[b]
            keep = left != right
            low = np.minimum(left[keep], right[keep])
            high = np.maximum(left[keep], right[keep])
            chunks.append(np.stack([low, high], axis=1))

    if not chunks:
        return np.empty((0, 2), dtype=np.int64), labels
    edges = np.concatenate(chunks, axis=0)
    linear = edges[:, 0] * np.int64(num_nodes) + edges[:, 1]
    _, unique_idx = np.unique(linear, return_index=True)
    return edges[np.sort(unique_idx)], labels


def gaussian_class_features(
    labels: np.ndarray,
    num_features: int,
    class_separation: float = 1.0,
    noise_scale: float = 1.0,
    rng: RandomState = None,
) -> np.ndarray:
    """Class-conditional Gaussian features.

    Each class receives a mean vector drawn on a sphere of radius
    ``class_separation``; node features are that mean plus isotropic Gaussian
    noise.  This mirrors the embedding model of Section VI-B2 of the paper
    where class embeddings are ``N(μ_i, σ²)``.
    """
    check_positive(num_features, name="num_features")
    check_positive(noise_scale, name="noise_scale", strict=False)
    generator = ensure_rng(rng)
    labels = np.asarray(labels, dtype=np.int64)
    num_classes = int(labels.max()) + 1 if labels.size else 0
    means = generator.normal(size=(num_classes, num_features))
    norms = np.linalg.norm(means, axis=1, keepdims=True)
    means = class_separation * means / np.maximum(norms, 1e-12)
    noise = generator.normal(scale=noise_scale, size=(labels.shape[0], num_features))
    return means[labels] + noise


def binary_class_features(
    labels: np.ndarray,
    num_features: int,
    active_fraction: float = 0.05,
    class_signal: float = 0.6,
    rng: RandomState = None,
) -> np.ndarray:
    """Sparse binary "bag-of-words" features, as in citation networks.

    Each class owns a random subset of "topic" words that fire with elevated
    probability for its nodes; the remaining words fire at a background rate.

    Parameters
    ----------
    active_fraction:
        Background probability that any word is active for a node.
    class_signal:
        Probability that a class-topic word is active for nodes of that class.
    """
    check_probability(active_fraction, name="active_fraction")
    check_probability(class_signal, name="class_signal")
    generator = ensure_rng(rng)
    labels = np.asarray(labels, dtype=np.int64)
    num_classes = int(labels.max()) + 1 if labels.size else 0
    n = labels.shape[0]

    words_per_class = max(1, num_features // max(num_classes, 1) // 2)
    topic_words = [
        generator.choice(num_features, size=words_per_class, replace=False)
        for _ in range(num_classes)
    ]

    probabilities = np.full((n, num_features), active_fraction)
    for cls in range(num_classes):
        members = labels == cls
        probabilities[np.ix_(members, topic_words[cls])] = class_signal
    return (generator.random((n, num_features)) < probabilities).astype(np.float64)


def ensure_connected_to_giant(
    adjacency: np.ndarray, rng: RandomState = None
) -> np.ndarray:
    """Attach isolated nodes to a random node so every node has degree ≥ 1.

    GNN training and Jaccard similarity are ill-behaved for isolated nodes;
    real citation graphs are pre-processed the same way (largest connected
    component).  The returned matrix is a copy.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64).copy()
    generator = ensure_rng(rng)
    degrees = adjacency.sum(axis=1)
    isolated = np.nonzero(degrees == 0)[0]
    n = adjacency.shape[0]
    for node in isolated:
        target = int(generator.integers(0, n - 1))
        if target >= node:
            target += 1
        adjacency[node, target] = 1.0
        adjacency[target, node] = 1.0
    return adjacency
