"""Node-similarity matrices.

The paper's individual-fairness definition uses the Jaccard similarity of
node neighbourhoods *after adding self-loops* — this detail matters because
Lemma V.1 relies on the fact that connected nodes share at least the two
endpoints themselves once self-loops are included.  The feature-based cosine
similarity of InFoRM is also provided for completeness and ablations.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import jaccard_pairs_csr, jaccard_similarity_csr
from repro.utils.validation import check_adjacency, check_features

MatrixLike = Union[np.ndarray, CSRMatrix]


def jaccard_similarity(
    adjacency: MatrixLike, include_self_loops: bool = True
) -> MatrixLike:
    """Jaccard similarity matrix ``S`` with ``S_ij = |N(i)∩N(j)| / |N(i)∪N(j)|``.

    Parameters
    ----------
    adjacency:
        ``(N, N)`` symmetric binary adjacency matrix — dense, or a
        :class:`repro.sparse.CSRMatrix`, in which case the similarity is
        computed through CSR neighbour intersections and returned in CSR form
        (bitwise-equal stored values, O(Σ deg²) instead of O(N²) work).
    include_self_loops:
        When True (the paper's setting, via the GCN normalisation ``A + I``)
        each node is a member of its own neighbourhood, so 1-hop neighbours
        always share at least two common members (Lemma V.1, case k=1).

    Returns
    -------
    ``(N, N)`` similarity matrix with zero diagonal, in the input's format.
    """
    if isinstance(adjacency, CSRMatrix):
        return jaccard_similarity_csr(adjacency, include_self_loops=include_self_loops)
    adjacency = check_adjacency(adjacency)
    binary = (adjacency > 0).astype(np.float64)
    if include_self_loops:
        binary = binary + np.eye(binary.shape[0])
        np.clip(binary, 0.0, 1.0, out=binary)
    intersection = binary @ binary.T
    sizes = binary.sum(axis=1)
    union = sizes[:, None] + sizes[None, :] - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        similarity = np.where(union > 0, intersection / union, 0.0)
    np.fill_diagonal(similarity, 0.0)
    return similarity


def jaccard_for_pairs(
    adjacency: MatrixLike,
    pairs: np.ndarray,
    include_self_loops: bool = True,
) -> np.ndarray:
    """Jaccard similarity of explicit ``(M, 2)`` candidate pairs.

    The pair-restricted companion of :func:`jaccard_similarity` (mirroring
    ``pairwise_posterior_distance`` vs ``distance_matrix`` on the attack
    side): structural scores for attack candidate pairs are computed by CSR
    neighbour intersection at O(deg) per pair, never materialising an
    ``(N, N)`` matrix.  Dense inputs are converted to CSR once.
    """
    csr = adjacency if isinstance(adjacency, CSRMatrix) else CSRMatrix.from_dense(
        check_adjacency(adjacency)
    )
    return jaccard_pairs_csr(csr, pairs, include_self_loops=include_self_loops)


def graph_similarity(graph) -> MatrixLike:
    """Backend-aware Jaccard similarity of a :class:`repro.graphs.Graph`.

    Resolves the active compute backend for the graph's adjacency: the sparse
    backend (or ``auto`` on a large low-density graph) computes the similarity
    from the graph's cached CSR view and keeps it in CSR form, everything else
    takes the dense reference path.  This is the single entry point the
    evaluation pipeline uses, so ``--backend`` switches the whole
    similarity/bias path along with propagation.
    """
    from repro.sparse.backend import resolve_backend

    if resolve_backend(graph.adjacency).name == "sparse":
        return jaccard_similarity(graph.csr())
    return jaccard_similarity(graph.adjacency)


def cosine_feature_similarity(features: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity of node features (alternative InFoRM similarity)."""
    features = check_features(features)
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    normalized = features / np.maximum(norms, eps)
    similarity = normalized @ normalized.T
    np.fill_diagonal(similarity, 0.0)
    # numerical noise can push values slightly outside [-1, 1]
    return np.clip(similarity, -1.0, 1.0)


def top_k_sparsify(similarity: np.ndarray, k: int) -> np.ndarray:
    """Keep only the ``k`` largest similarities per row (symmetrised).

    InFoRM often sparsifies the similarity matrix for scalability; exposing it
    here allows ablations on how sparsification affects the fairness metric.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    similarity = np.asarray(similarity, dtype=np.float64)
    n = similarity.shape[0]
    keep = np.zeros_like(similarity)
    for row in range(n):
        if k >= n - 1:
            keep[row] = similarity[row]
            continue
        idx = np.argpartition(similarity[row], -k)[-k:]
        keep[row, idx] = similarity[row, idx]
    symmetric = np.maximum(keep, keep.T)
    np.fill_diagonal(symmetric, 0.0)
    return symmetric
