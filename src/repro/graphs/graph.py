"""The :class:`Graph` container used across the library.

A graph is ``G = {A, X}`` with an optional label vector and train/val/test
masks, mirroring the notation of Section III of the paper.  The container is
immutable by convention: structure-modifying operations return new ``Graph``
instances (see :mod:`repro.graphs.perturb`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graphs.revision import next_revision, tag_adjacency
from repro.utils.validation import (
    check_adjacency,
    check_features,
    check_labels,
    check_mask,
    check_symmetric,
)


@dataclass
class Graph:
    """An undirected attributed graph.

    Attributes
    ----------
    adjacency:
        ``(N, N)`` symmetric binary (or weighted) adjacency matrix without
        self-loops.
    features:
        ``(N, F)`` node-feature matrix.
    labels:
        Optional ``(N,)`` integer class labels.
    train_mask / val_mask / test_mask:
        Optional boolean masks selecting labelled splits.
    name:
        Human-readable dataset name (used in experiment reports).
    metadata:
        Free-form dictionary (e.g. generator parameters for surrogates).
    """

    adjacency: np.ndarray
    features: np.ndarray
    labels: Optional[np.ndarray] = None
    train_mask: Optional[np.ndarray] = None
    val_mask: Optional[np.ndarray] = None
    test_mask: Optional[np.ndarray] = None
    name: str = "graph"
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.adjacency = check_adjacency(self.adjacency)
        check_symmetric(self.adjacency, name="adjacency")
        if np.any(np.diag(self.adjacency) != 0):
            raise ValueError("adjacency must not contain self-loops")
        self.features = check_features(self.features, num_nodes=self.num_nodes)
        if self.labels is not None:
            self.labels = check_labels(self.labels, num_nodes=self.num_nodes)
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(self, mask_name)
            if mask is not None:
                setattr(
                    self,
                    mask_name,
                    check_mask(np.asarray(mask), num_nodes=self.num_nodes, name=mask_name),
                )
        self._revision = tag_adjacency(self.adjacency, owned=True)
        self._csr_cache: Optional[Tuple[int, object]] = None

    # ------------------------------------------------------------------ #
    # Structure revision (operator-cache key)
    # ------------------------------------------------------------------ #
    @property
    def revision(self) -> int:
        """Monotonically increasing id of this graph's structure.

        Every constructed ``Graph`` receives a fresh process-unique revision
        (so structure-deriving helpers such as :meth:`with_adjacency` never
        alias an older graph's operators), and any in-place mutation of
        ``adjacency`` must call :meth:`bump_revision`.  Derived caches — the
        CSR view below and the propagation-operator cache in
        :mod:`repro.sparse.opcache` — key on this value, which is what makes
        serving a stale normalisation impossible.
        """
        return self._revision

    def bump_revision(self) -> int:
        """Declare an in-place mutation of ``adjacency``.

        Assigns a fresh revision, re-tags the adjacency array and drops the
        cached CSR view.  Mutating ``adjacency`` without calling this voids
        the operator-cache contract.
        """
        self._revision = tag_adjacency(self.adjacency, owned=True)
        self._csr_cache = None
        return self._revision

    def attach_csr(self, matrix) -> None:
        """Install an externally maintained CSR view of the current structure.

        The incremental-update path (``repro.serve.GraphSession``) edits CSR
        structure directly instead of round-tripping through the dense array;
        after mutating ``adjacency`` in place and calling
        :meth:`bump_revision`, it attaches the spliced CSR here so
        :meth:`csr` keeps serving an O(m) view instead of rebuilding from the
        dense matrix.  The caller guarantees ``matrix`` equals the dense
        structure; the matrix is tagged with the current revision so operator
        caches treat both representations as one structure.
        """
        from repro.sparse.csr import CSRMatrix

        if not isinstance(matrix, CSRMatrix):
            raise TypeError("attach_csr expects a CSRMatrix")
        if matrix.shape != self.adjacency.shape:
            raise ValueError(
                f"CSR shape {matrix.shape} does not match adjacency "
                f"{self.adjacency.shape}"
            )
        tag_adjacency(matrix, revision=self._revision, owned=True)
        self._csr_cache = (self._revision, matrix)

    def csr(self):
        """CSR view of the adjacency, cached per :attr:`revision`.

        The view is tagged with the same revision as the dense array, so
        propagation operators built from either representation share cache
        entries.  Edge extraction (:meth:`edge_list`, :meth:`non_edge_sample`)
        goes through this view: repeated attack evaluations touch O(m)
        adjacency lists instead of re-scanning the dense ``(N, N)`` matrix.
        """
        from repro.sparse.csr import CSRMatrix

        cached = self._csr_cache
        if cached is not None and cached[0] == self._revision:
            return cached[1]
        matrix = CSRMatrix.from_dense(self.adjacency)
        tag_adjacency(matrix, revision=self._revision, owned=True)
        self._csr_cache = (self._revision, matrix)
        return matrix

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict:
        state = dict(self.__dict__)
        # Revisions are process-local counter values; a pickled one would
        # collide with unrelated structures in the loading process.  Drop the
        # CSR cache with it (it is keyed by the stale revision).
        state.pop("_revision", None)
        state.pop("_csr_cache", None)
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._revision = tag_adjacency(self.adjacency, owned=True)
        self._csr_cache = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.adjacency.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(np.count_nonzero(np.triu(self.adjacency, k=1)))

    @property
    def num_features(self) -> int:
        return int(self.features.shape[1])

    @property
    def num_classes(self) -> int:
        if self.labels is None:
            raise ValueError("graph has no labels")
        return int(self.labels.max()) + 1

    @property
    def degrees(self) -> np.ndarray:
        """Node degrees computed from the adjacency matrix."""
        return self.adjacency.sum(axis=1)

    def density(self) -> float:
        """Edge density ``2|E| / (N(N-1))``."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    # ------------------------------------------------------------------ #
    # Edge views
    # ------------------------------------------------------------------ #
    def edge_list(self) -> np.ndarray:
        """Return a ``(E, 2)`` array of undirected edges with ``i < j``.

        Extracted from the cached CSR view — row-major with ascending columns,
        i.e. exactly the ordering of ``np.nonzero(np.triu(adjacency, k=1))`` —
        so repeated attack-pair extraction costs O(m), not O(N²).
        """
        csr = self.csr()
        rows, cols, _ = csr.to_coo()
        upper = rows < cols
        return np.stack([rows[upper], cols[upper]], axis=1)

    def non_edge_sample(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``count`` unconnected node pairs (i < j) uniformly.

        Sampling is rejection-based, which is efficient for sparse graphs.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        n = self.num_nodes
        csr = self.csr()
        indptr, indices = csr.indptr, csr.indices

        def connected(a: int, b: int) -> bool:
            row = indices[indptr[a] : indptr[a + 1]]
            position = int(np.searchsorted(row, b))
            return position < row.size and row[position] == b

        seen: set[tuple[int, int]] = set()
        result = []
        max_attempts = 50 * max(count, 1) + 1000
        attempts = 0
        while len(result) < count and attempts < max_attempts:
            attempts += 1
            i = int(rng.integers(0, n))
            j = int(rng.integers(0, n))
            if i == j:
                continue
            a, b = (i, j) if i < j else (j, i)
            if (a, b) in seen or connected(a, b):
                continue
            seen.add((a, b))
            result.append((a, b))
        if len(result) < count:
            raise RuntimeError("could not sample enough non-edges; graph too dense")
        return np.asarray(result, dtype=np.int64)

    def neighbors(self, node: int) -> np.ndarray:
        """Indices of nodes adjacent to ``node``."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range")
        return np.nonzero(self.adjacency[node])[0]

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def with_adjacency(self, adjacency: np.ndarray) -> "Graph":
        """Return a copy of this graph with a different structure."""
        return replace(self, adjacency=np.asarray(adjacency, dtype=np.float64).copy())

    def with_masks(
        self,
        train_mask: np.ndarray,
        val_mask: np.ndarray,
        test_mask: np.ndarray,
    ) -> "Graph":
        """Return a copy of this graph with new split masks."""
        return replace(
            self,
            train_mask=np.asarray(train_mask, dtype=bool).copy(),
            val_mask=np.asarray(val_mask, dtype=bool).copy(),
            test_mask=np.asarray(test_mask, dtype=bool).copy(),
        )

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        return Graph(
            adjacency=self.adjacency.copy(),
            features=self.features.copy(),
            labels=None if self.labels is None else self.labels.copy(),
            train_mask=None if self.train_mask is None else self.train_mask.copy(),
            val_mask=None if self.val_mask is None else self.val_mask.copy(),
            test_mask=None if self.test_mask is None else self.test_mask.copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def train_indices(self) -> np.ndarray:
        """Indices of training nodes (requires ``train_mask``)."""
        if self.train_mask is None:
            raise ValueError("graph has no train mask")
        return np.nonzero(self.train_mask)[0]

    def val_indices(self) -> np.ndarray:
        """Indices of validation nodes (requires ``val_mask``)."""
        if self.val_mask is None:
            raise ValueError("graph has no val mask")
        return np.nonzero(self.val_mask)[0]

    def test_indices(self) -> np.ndarray:
        """Indices of test nodes (requires ``test_mask``)."""
        if self.test_mask is None:
            raise ValueError("graph has no test mask")
        return np.nonzero(self.test_mask)[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(name={self.name!r}, nodes={self.num_nodes}, edges={self.num_edges}, "
            f"features={self.num_features})"
        )
