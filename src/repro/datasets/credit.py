"""Credit surrogate specification (weak homophily, Table V).

The Credit defaulter graph (Agarwal et al., 2021) has 30 000 nodes, 2 classes,
13 tabular features and edge homophily ≈ 0.62.  The surrogate is a binary
classification weak-homophily SBM with continuous tabular-style features.
"""

from __future__ import annotations

from repro.datasets.spec import DatasetSpec

CREDIT_SPEC = DatasetSpec(
    name="credit",
    num_nodes=640,
    num_classes=2,
    num_features=16,
    average_degree=5.0,
    homophily=0.62,
    feature_model="gaussian",
    degree_heterogeneity=0.20,
    train_per_class=30,
    val_fraction=0.15,
    test_fraction=0.35,
    class_separation=1.4,
    feature_noise=1.2,
    original_statistics={
        "num_nodes": 30000,
        "num_classes": 2,
        "num_features": 13,
        "edge_homophily": 0.62,
    },
)
