"""Synthetic surrogate generation from a :class:`DatasetSpec`."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.datasets.spec import DatasetSpec
from repro.datasets.splits import make_planetoid_split
from repro.graphs.generators import (
    binary_class_features,
    ensure_connected_to_giant,
    gaussian_class_features,
    planted_partition_graph,
    sparse_planted_partition_edges,
)
from repro.graphs.graph import Graph
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RandomState, ensure_rng, spawn_children


def generate_surrogate(spec: DatasetSpec, seed: RandomState = 0) -> Graph:
    """Generate the surrogate graph described by ``spec``.

    The generation pipeline is:

    1. sample a degree-corrected planted-partition graph with the target
       average degree and homophily,
    2. attach isolated nodes so every node participates in message passing,
    3. sample class-conditional features (binary bag-of-words or Gaussian),
    4. draw a Planetoid-style train/val/test split.

    All randomness is derived from ``seed`` so repeated calls with the same
    seed return identical graphs.
    """
    structure_rng, feature_rng, split_rng, repair_rng = spawn_children(ensure_rng(seed), 4)

    adjacency, labels = planted_partition_graph(
        num_nodes=spec.num_nodes,
        num_classes=spec.num_classes,
        average_degree=spec.average_degree,
        homophily=spec.homophily,
        rng=structure_rng,
        degree_heterogeneity=spec.degree_heterogeneity,
    )
    adjacency = ensure_connected_to_giant(adjacency, rng=repair_rng)

    if spec.feature_model == "binary":
        features = binary_class_features(
            labels,
            num_features=spec.num_features,
            active_fraction=spec.feature_active_fraction,
            class_signal=spec.feature_class_signal,
            rng=feature_rng,
        )
    else:
        features = gaussian_class_features(
            labels,
            num_features=spec.num_features,
            class_separation=spec.class_separation,
            noise_scale=spec.feature_noise,
            rng=feature_rng,
        )

    train_mask, val_mask, test_mask = make_planetoid_split(
        labels,
        train_per_class=spec.train_per_class,
        val_fraction=spec.val_fraction,
        test_fraction=spec.test_fraction,
        rng=split_rng,
    )

    metadata = {
        "spec": spec,
        "surrogate": True,
        "original_statistics": dict(spec.original_statistics),
    }
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        name=spec.name,
        metadata=metadata,
    )


def generate_scaling_graph(
    num_nodes: int,
    num_classes: int = 4,
    average_degree: float = 20.0,
    homophily: float = 0.8,
    num_features: int = 16,
    seed: RandomState = 0,
) -> Tuple[CSRMatrix, np.ndarray, np.ndarray]:
    """SBM surrogate at benchmark scale, never materialising dense structure.

    The :class:`~repro.graphs.graph.Graph` container is dense by design (it
    validates an ``(N, N)`` array), which is fine at the paper's surrogate
    sizes but not at the 1k–50k+ nodes the scalability benchmarks probe.
    This helper samples edges with the O(m)
    :func:`~repro.graphs.generators.sparse_planted_partition_edges` sampler
    and returns ``(adjacency_csr, features, labels)`` directly.
    """
    structure_rng, feature_rng = spawn_children(ensure_rng(seed), 2)
    edges, labels = sparse_planted_partition_edges(
        num_nodes=num_nodes,
        num_classes=num_classes,
        average_degree=average_degree,
        homophily=homophily,
        rng=structure_rng,
    )
    adjacency = CSRMatrix.from_edges(edges, num_nodes)
    features = gaussian_class_features(
        labels, num_features=num_features, class_separation=2.0, rng=feature_rng
    )
    return adjacency, features, labels


def summarize(graph: Graph) -> dict:
    """Return basic statistics of a generated surrogate (for reports)."""
    from repro.graphs.homophily import class_linking_probabilities, edge_homophily

    labels = graph.labels
    stats = {
        "name": graph.name,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_features": graph.num_features,
        "density": graph.density(),
        "average_degree": float(graph.degrees.mean()),
    }
    if labels is not None:
        stats["num_classes"] = graph.num_classes
        stats["edge_homophily"] = edge_homophily(graph.adjacency, labels)
        p, q = class_linking_probabilities(graph.adjacency, labels)
        stats["intra_class_probability"] = p
        stats["inter_class_probability"] = q
    if graph.train_mask is not None:
        stats["num_train"] = int(graph.train_mask.sum())
    if graph.val_mask is not None:
        stats["num_val"] = int(graph.val_mask.sum())
    if graph.test_mask is not None:
        stats["num_test"] = int(graph.test_mask.sum())
    return stats
