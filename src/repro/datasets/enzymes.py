"""Enzymes surrogate specification (weak homophily, Table V).

The paper uses an Enzymes-derived node-classification graph with edge
homophily ≈ 0.66.  The surrogate is a 3-class weak-homophily SBM with
continuous structural features.
"""

from __future__ import annotations

from repro.datasets.spec import DatasetSpec

ENZYMES_SPEC = DatasetSpec(
    name="enzymes",
    num_nodes=480,
    num_classes=3,
    num_features=32,
    average_degree=3.8,
    homophily=0.66,
    feature_model="gaussian",
    degree_heterogeneity=0.25,
    train_per_class=20,
    val_fraction=0.15,
    test_fraction=0.35,
    class_separation=1.6,
    feature_noise=1.2,
    original_statistics={
        "source": "Dobson & Doig protein graphs",
        "edge_homophily": 0.66,
    },
)
