"""Dataset specification dataclass."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters describing a synthetic surrogate of a benchmark graph.

    Attributes
    ----------
    name:
        Dataset identifier (``"cora"``, ``"citeseer"``, ...).
    num_nodes / num_classes / num_features:
        Size of the surrogate.  Node counts are scaled down from the original
        datasets so the full experiment grid runs quickly on CPU; class count
        and the homophily/sparsity regime follow the originals.
    average_degree:
        Target mean degree, controlling sparsity.
    homophily:
        Target edge homophily (fraction of intra-class edges), the key
        quantity in the paper's analysis (Table V studies low values).
    feature_model:
        ``"binary"`` for sparse bag-of-words features (citation networks) or
        ``"gaussian"`` for continuous features (Enzymes / Credit surrogates).
    degree_heterogeneity:
        Log-normal sigma of the degree-corrected SBM (0 = homogeneous).
    train_per_class / val_fraction / test_fraction:
        Split sizes in the Planetoid style (fixed labelled nodes per class).
    class_separation / feature_noise:
        Parameters of the Gaussian feature model.
    feature_active_fraction / feature_class_signal:
        Parameters of the binary feature model.
    original_statistics:
        Reference statistics of the real dataset (for documentation and
        reporting, not used by the generator).
    """

    name: str
    num_nodes: int
    num_classes: int
    num_features: int
    average_degree: float
    homophily: float
    feature_model: str = "binary"
    degree_heterogeneity: float = 0.35
    train_per_class: int = 20
    val_fraction: float = 0.15
    test_fraction: float = 0.35
    class_separation: float = 2.0
    feature_noise: float = 1.0
    feature_active_fraction: float = 0.04
    feature_class_signal: float = 0.45
    original_statistics: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.feature_model not in ("binary", "gaussian"):
            raise ValueError("feature_model must be 'binary' or 'gaussian'")
        if self.num_nodes < self.num_classes * (self.train_per_class + 2):
            raise ValueError(
                f"{self.name}: num_nodes too small for the requested split sizes"
            )
        if not 0.0 < self.homophily <= 1.0:
            raise ValueError("homophily must lie in (0, 1]")
        if self.average_degree <= 0:
            raise ValueError("average_degree must be positive")

    def scaled(self, factor: float) -> "DatasetSpec":
        """Return a spec with the node count scaled by ``factor``.

        Used by the benchmark presets to run reduced-size versions of each
        experiment while preserving class structure and homophily.  The node
        count is clamped from below so that the Planetoid-style split (fixed
        training nodes per class plus the val/test fractions) always fits.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        labelled_budget = 1.0 - self.val_fraction - self.test_fraction
        min_nodes_for_split = int(
            np.ceil(self.num_classes * self.train_per_class / max(labelled_budget, 1e-9))
        ) + self.num_classes
        new_nodes = max(int(self.num_nodes * factor), min_nodes_for_split)
        return replace(self, num_nodes=new_nodes)
