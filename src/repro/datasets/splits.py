"""Train/validation/test split construction."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_labels, check_probability


def make_planetoid_split(
    labels: np.ndarray,
    train_per_class: int,
    val_fraction: float,
    test_fraction: float,
    rng: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Planetoid-style split: a fixed number of training nodes per class.

    The remaining nodes are split into validation and test sets according to
    the requested fractions (of the total node count); any leftover nodes stay
    unlabelled, as in the semi-supervised node-classification setting used by
    the paper.
    """
    labels = check_labels(labels)
    check_probability(val_fraction, name="val_fraction")
    check_probability(test_fraction, name="test_fraction")
    if train_per_class <= 0:
        raise ValueError("train_per_class must be positive")
    generator = ensure_rng(rng)
    n = labels.shape[0]
    num_classes = int(labels.max()) + 1

    train_mask = np.zeros(n, dtype=bool)
    for cls in range(num_classes):
        members = np.nonzero(labels == cls)[0]
        if members.size < train_per_class:
            raise ValueError(
                f"class {cls} has only {members.size} nodes, cannot draw {train_per_class}"
            )
        chosen = generator.choice(members, size=train_per_class, replace=False)
        train_mask[chosen] = True

    remaining = np.nonzero(~train_mask)[0]
    generator.shuffle(remaining)
    num_val = int(round(val_fraction * n))
    num_test = int(round(test_fraction * n))
    if num_val + num_test > remaining.size:
        raise ValueError("val_fraction + test_fraction too large for this split")
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    val_mask[remaining[:num_val]] = True
    test_mask[remaining[num_val : num_val + num_test]] = True
    return train_mask, val_mask, test_mask


def make_fraction_split(
    num_nodes: int,
    train_fraction: float,
    val_fraction: float,
    rng: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random split by fractions; the remainder becomes the test set."""
    check_probability(train_fraction, name="train_fraction")
    check_probability(val_fraction, name="val_fraction")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train_fraction + val_fraction must be < 1")
    generator = ensure_rng(rng)
    order = generator.permutation(num_nodes)
    num_train = int(round(train_fraction * num_nodes))
    num_val = int(round(val_fraction * num_nodes))
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    train_mask[order[:num_train]] = True
    val_mask[order[num_train : num_train + num_val]] = True
    test_mask[order[num_train + num_val :]] = True
    return train_mask, val_mask, test_mask
