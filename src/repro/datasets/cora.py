"""Cora surrogate specification.

The real Cora citation network has 2 708 nodes, 5 429 edges, 7 classes,
1 433 binary bag-of-words features and edge homophily ≈ 0.81 (as quoted in
Section VII-D of the paper).  The surrogate keeps the class count, feature
style, average degree (≈ 4) and homophily while scaling the node count down
for CPU-only experiments.
"""

from __future__ import annotations

from repro.datasets.spec import DatasetSpec

CORA_SPEC = DatasetSpec(
    name="cora",
    num_nodes=560,
    num_classes=7,
    num_features=256,
    average_degree=4.0,
    homophily=0.81,
    feature_model="binary",
    degree_heterogeneity=0.35,
    train_per_class=20,
    val_fraction=0.15,
    test_fraction=0.35,
    feature_active_fraction=0.03,
    feature_class_signal=0.40,
    original_statistics={
        "num_nodes": 2708,
        "num_edges": 5429,
        "num_classes": 7,
        "num_features": 1433,
        "edge_homophily": 0.81,
    },
)
