"""Dataset surrogates calibrated to the paper's benchmark graphs.

The paper evaluates on Cora, Citeseer, Pubmed (strong homophily) and Enzymes,
Credit (weak homophily).  Those datasets cannot be downloaded in this
environment, so each is replaced by a stochastic-block-model surrogate whose
class count, feature dimensionality, sparsity and edge homophily match the
published statistics (scaled down in node count so the full experiment grid
runs on CPU).  See DESIGN.md §2 for why this substitution preserves the
paper's qualitative results.
"""

from repro.datasets.registry import (
    DATASET_SPECS,
    available_datasets,
    get_spec,
    load_dataset,
)
from repro.datasets.spec import DatasetSpec
from repro.datasets.splits import make_planetoid_split, make_fraction_split
from repro.datasets.synthetic import generate_scaling_graph, generate_surrogate

__all__ = [
    "DATASET_SPECS",
    "available_datasets",
    "get_spec",
    "load_dataset",
    "DatasetSpec",
    "make_planetoid_split",
    "make_fraction_split",
    "generate_scaling_graph",
    "generate_surrogate",
]
