"""Citeseer surrogate specification.

The real Citeseer network has 3 327 nodes, 4 732 edges, 6 classes, 3 703
binary features and edge homophily ≈ 0.74.  Citeseer is the hardest of the
three citation benchmarks (the paper reports ≈ 64 % accuracy), which the
surrogate mirrors by using weaker feature signal and a lower average degree.
"""

from __future__ import annotations

from repro.datasets.spec import DatasetSpec

CITESEER_SPEC = DatasetSpec(
    name="citeseer",
    num_nodes=540,
    num_classes=6,
    num_features=256,
    average_degree=2.8,
    homophily=0.74,
    feature_model="binary",
    degree_heterogeneity=0.30,
    train_per_class=20,
    val_fraction=0.15,
    test_fraction=0.35,
    feature_active_fraction=0.05,
    feature_class_signal=0.22,
    original_statistics={
        "num_nodes": 3327,
        "num_edges": 4732,
        "num_classes": 6,
        "num_features": 3703,
        "edge_homophily": 0.74,
    },
)
