"""Pubmed surrogate specification.

The real Pubmed network has 19 717 nodes, 44 338 edges, 3 classes, 500
TF-IDF features and edge homophily ≈ 0.80.  The surrogate keeps the 3-class
structure and homophily; features are continuous (Gaussian) to mimic TF-IDF.
"""

from __future__ import annotations

from repro.datasets.spec import DatasetSpec

PUBMED_SPEC = DatasetSpec(
    name="pubmed",
    num_nodes=720,
    num_classes=3,
    num_features=128,
    average_degree=4.5,
    homophily=0.80,
    feature_model="gaussian",
    degree_heterogeneity=0.40,
    train_per_class=20,
    val_fraction=0.15,
    test_fraction=0.35,
    class_separation=2.2,
    feature_noise=1.3,
    original_statistics={
        "num_nodes": 19717,
        "num_edges": 44338,
        "num_classes": 3,
        "num_features": 500,
        "edge_homophily": 0.80,
    },
)
