"""Dataset registry and the public ``load_dataset`` entry point."""

from __future__ import annotations

from typing import Dict, List

from repro.datasets.citeseer import CITESEER_SPEC
from repro.datasets.cora import CORA_SPEC
from repro.datasets.credit import CREDIT_SPEC
from repro.datasets.enzymes import ENZYMES_SPEC
from repro.datasets.pubmed import PUBMED_SPEC
from repro.datasets.spec import DatasetSpec
from repro.datasets.synthetic import generate_surrogate
from repro.graphs.graph import Graph
from repro.utils.rng import RandomState

DATASET_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (CORA_SPEC, CITESEER_SPEC, PUBMED_SPEC, ENZYMES_SPEC, CREDIT_SPEC)
}


def available_datasets() -> List[str]:
    """Names of all registered dataset surrogates."""
    return sorted(DATASET_SPECS)


def get_spec(name: str) -> DatasetSpec:
    """Look up the :class:`DatasetSpec` registered under ``name``."""
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    return DATASET_SPECS[key]


def load_dataset(
    name: str, seed: RandomState = 0, scale: float = 1.0
) -> Graph:
    """Generate the surrogate graph for ``name``.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case-insensitive).
    seed:
        Root seed controlling structure, features and split.
    scale:
        Optional node-count scale factor (< 1 for faster benchmark presets).
    """
    spec = get_spec(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    return generate_surrogate(spec, seed=seed)
