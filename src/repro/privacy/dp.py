"""Edge differential-privacy mechanisms (Wu et al., S&P 2022).

The paper's privacy baselines perturb the training graph with ε-edge-DP
mechanisms before (DPReg) or during fine-tuning (DPFR):

* **EdgeRand** — randomised response: every potential edge is flipped
  independently with a probability derived from ε.
* **LapGraph** — Laplace noise is added to the adjacency matrix and the
  top-``|E|`` noisy entries are kept as edges (preserving the edge count in
  expectation), which scales better for large graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.revision import tag_adjacency
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_adjacency, check_positive


def dp_flip_probability(epsilon: float) -> float:
    """Randomised-response flip probability ``1 / (1 + e^ε)`` for ε-edge-DP."""
    check_positive(epsilon, name="epsilon")
    return 1.0 / (1.0 + np.exp(epsilon))


def edge_rand(
    adjacency: np.ndarray, epsilon: float, rng: RandomState = None
) -> np.ndarray:
    """EdgeRand: randomised response on every potential edge.

    Each upper-triangular cell is flipped with probability ``1/(1+e^ε)``; the
    result is symmetrised and the diagonal cleared.  Smaller ε means stronger
    privacy and more structural noise.
    """
    adjacency = check_adjacency(adjacency)
    check_positive(epsilon, name="epsilon")
    generator = ensure_rng(rng)
    flip_probability = dp_flip_probability(epsilon)
    n = adjacency.shape[0]
    flips = np.triu(generator.random((n, n)) < flip_probability, k=1)
    upper = np.triu(adjacency > 0, k=1)
    noisy = np.logical_xor(upper, flips)
    result = (noisy | noisy.T).astype(np.float64)
    np.fill_diagonal(result, 0.0)
    tag_adjacency(result, owned=True)
    return result


def lap_graph(
    adjacency: np.ndarray, epsilon: float, rng: RandomState = None
) -> np.ndarray:
    """LapGraph: Laplace perturbation of the adjacency with edge-count preservation.

    Laplace noise of scale ``1/ε`` is added to the upper triangle; the
    ``|E|`` cells with the largest noisy values become the edges of the
    perturbed graph (where ``|E|`` itself is estimated under DP with a small
    fraction of the budget, as in the original mechanism — here the true edge
    count is used directly because the surrogate graphs are released by the
    model developer, not the attacker).
    """
    adjacency = check_adjacency(adjacency)
    check_positive(epsilon, name="epsilon")
    generator = ensure_rng(rng)
    n = adjacency.shape[0]
    num_edges = int(np.count_nonzero(np.triu(adjacency, k=1)))
    if num_edges == 0:
        return np.zeros_like(adjacency)

    noise = generator.laplace(loc=0.0, scale=1.0 / epsilon, size=(n, n))
    noisy = np.triu(adjacency + noise, k=1)
    # Select the |E| largest noisy entries as the perturbed edge set.
    flat = noisy[np.triu_indices(n, k=1)]
    if num_edges >= flat.size:
        threshold = -np.inf
    else:
        threshold = np.partition(flat, -num_edges)[-num_edges]
    keep = np.triu(noisy >= threshold, k=1)
    result = (keep | keep.T).astype(np.float64)
    np.fill_diagonal(result, 0.0)
    tag_adjacency(result, owned=True)
    return result


def expected_flipped_edges(adjacency: np.ndarray, epsilon: float) -> float:
    """Expected number of structural changes EdgeRand makes at privacy level ε."""
    adjacency = check_adjacency(adjacency)
    n = adjacency.shape[0]
    total_cells = n * (n - 1) / 2
    return float(total_cells * dp_flip_probability(epsilon))
