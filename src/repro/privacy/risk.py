"""Privacy-risk metrics for edges.

Definition 2 of the paper: ``f_risk = ‖ E[d0] − E[d1] ‖`` where ``d1`` / ``d0``
are the posterior distances of connected / unconnected node pairs.  For the
influence computations the paper uses the variance-normalised variant
``2‖d0 − d1‖ / (var(d0) + var(d1))`` which estimates more stably; both are
provided, together with the embedding-space sensitivity model of Eq. (20).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.khop import connected_unconnected_split
from repro.privacy.distances import pairwise_posterior_distance
from repro.utils.rng import RandomState, ensure_rng


def _pair_distances(
    posteriors: np.ndarray,
    graph: Graph,
    metric: str,
    num_unconnected: Optional[int],
    rng: RandomState,
) -> Tuple[np.ndarray, np.ndarray]:
    """Distances of connected pairs (d1) and unconnected pairs (d0)."""
    connected = graph.edge_list()
    if connected.shape[0] == 0:
        raise ValueError("graph has no edges")
    if num_unconnected is None:
        _, unconnected = connected_unconnected_split(graph.adjacency)
    else:
        unconnected = graph.non_edge_sample(num_unconnected, ensure_rng(rng))
    d1 = pairwise_posterior_distance(posteriors, connected, metric)
    d0 = pairwise_posterior_distance(posteriors, unconnected, metric)
    return d0, d1


def edge_privacy_risk(
    posteriors: np.ndarray,
    graph: Graph,
    metric: str = "cosine",
    num_unconnected: Optional[int] = None,
    rng: RandomState = 0,
) -> float:
    """``f_risk = ‖ mean(d0) − mean(d1) ‖`` (Definition 2).

    ``num_unconnected`` caps the number of sampled non-edges (``None`` uses
    every unconnected pair, which is exact but quadratic in the node count).
    """
    d0, d1 = _pair_distances(posteriors, graph, metric, num_unconnected, rng)
    return float(abs(d0.mean() - d1.mean()))


def normalized_edge_privacy_risk(
    posteriors: np.ndarray,
    graph: Graph,
    metric: str = "cosine",
    num_unconnected: Optional[int] = None,
    rng: RandomState = 0,
    eps: float = 1e-12,
) -> float:
    """Variance-normalised risk ``2‖d0 − d1‖ / (var(d0) + var(d1))``.

    This is the instantiation of ``f_risk`` the paper uses when computing
    influence functions (Section VI-B1, final remark), because normalising by
    the within-group variances stabilises the estimate.
    """
    d0, d1 = _pair_distances(posteriors, graph, metric, num_unconnected, rng)
    separation = abs(d0.mean() - d1.mean())
    spread = d0.var() + d1.var()
    return float(2.0 * separation / max(spread, eps))


def risk_report(
    posteriors: np.ndarray,
    graph: Graph,
    metric: str = "cosine",
    num_unconnected: Optional[int] = None,
    rng: RandomState = 0,
) -> Dict[str, float]:
    """Detailed distance-distribution statistics for connected/unconnected pairs."""
    d0, d1 = _pair_distances(posteriors, graph, metric, num_unconnected, rng)
    return {
        "mean_unconnected_distance": float(d0.mean()),
        "mean_connected_distance": float(d1.mean()),
        "var_unconnected_distance": float(d0.var()),
        "var_connected_distance": float(d1.var()),
        "risk": float(abs(d0.mean() - d1.mean())),
        "normalized_risk": float(
            2.0 * abs(d0.mean() - d1.mean()) / max(d0.var() + d1.var(), 1e-12)
        ),
        "num_connected_pairs": int(d1.size),
        "num_unconnected_pairs": int(d0.size),
    }


def embedding_sensitivity(
    degree_i: int,
    degree_j: int,
    inter_class_degree_i: int,
    inter_class_degree_j: int,
    class_mean_distance: float,
) -> float:
    """Expected edge sensitivity ``E[Δd] = ‖(μ1 − μ0)‖ · |δ|`` of Eq. (20).

    ``δ = d^{y1}_i / ((d_i+1)(d_i+2)) − d^{y1}_j / ((d_j+1)(d_j+2))`` where
    ``d^{y1}`` counts the neighbours from the *other* class.  The quantity
    predicts how much adding the edge ``(i, j)`` moves the pair's embedding
    distance — larger class separation (better-performing GNNs) leaks more.
    """
    if degree_i < 0 or degree_j < 0:
        raise ValueError("degrees must be non-negative")
    if inter_class_degree_i > degree_i or inter_class_degree_j > degree_j:
        raise ValueError("inter-class degree cannot exceed the total degree")
    delta = inter_class_degree_i / ((degree_i + 1) * (degree_i + 2)) - (
        inter_class_degree_j / ((degree_j + 1) * (degree_j + 2))
    )
    return float(abs(class_mean_distance * delta))


def empirical_embedding_sensitivity(
    embeddings: np.ndarray,
    adjacency: np.ndarray,
    pair: Tuple[int, int],
) -> float:
    """Measured change of a pair's embedding distance when their edge is toggled.

    Used by the tests to validate the analytic model of Eq. (20) on synthetic
    graphs: the function aggregates one mean-aggregation step (left-normalised,
    as in the paper's derivation) with and without the edge and reports the
    difference of the two pair distances.
    """
    from repro.gnn.normalization import left_norm

    i, j = pair
    adjacency = np.asarray(adjacency, dtype=np.float64)
    with_edge = adjacency.copy()
    with_edge[i, j] = with_edge[j, i] = 1.0
    without_edge = adjacency.copy()
    without_edge[i, j] = without_edge[j, i] = 0.0

    agg_with = left_norm(with_edge) @ embeddings
    agg_without = left_norm(without_edge) @ embeddings
    d1 = np.linalg.norm(agg_with[i] - agg_with[j])
    d0 = np.linalg.norm(agg_without[i] - agg_without[j])
    return float(abs(d0 - d1))
