"""Link-stealing Attack-0 (He et al., USENIX Security 2021).

This is the attack used throughout the paper's evaluation: the adversary only
needs black-box query access to the victim GNN's posteriors.  For a candidate
node pair the attack computes a posterior distance; small distances indicate
a likely edge.  Two decision procedures are provided:

* **scoring** — negative distance as a continuous score, evaluated with AUC
  (the paper's privacy-risk measure in Figure 4 and Tables IV/V);
* **clustering** — the unsupervised 2-means split of the distances into a
  "close" and a "far" cluster described in Section IV of the paper, which
  yields hard connected/unconnected decisions without any threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.privacy.auc import roc_auc_score
from repro.privacy.distances import DISTANCE_METRICS, pairwise_posterior_distance
from repro.utils.rng import RandomState, ensure_rng

DEFAULT_METRICS: Tuple[str, ...] = tuple(sorted(DISTANCE_METRICS))


def sample_attack_pairs(
    graph: Graph,
    num_negative: Optional[int] = None,
    rng: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the attack evaluation set: all edges plus sampled non-edges.

    Following the attack literature, the negative class is a uniform sample of
    unconnected pairs of the same size as the edge set (balanced evaluation),
    unless ``num_negative`` overrides the count.

    Returns
    -------
    (pairs, labels):
        ``pairs`` is an ``(M, 2)`` index array, ``labels`` the binary edge
        indicator (1 = edge in the training graph).
    """
    generator = ensure_rng(rng)
    positive_pairs = graph.edge_list()
    if positive_pairs.shape[0] == 0:
        raise ValueError("graph has no edges to attack")
    count = positive_pairs.shape[0] if num_negative is None else int(num_negative)
    negative_pairs = graph.non_edge_sample(count, generator)
    pairs = np.concatenate([positive_pairs, negative_pairs], axis=0)
    labels = np.concatenate(
        [np.ones(positive_pairs.shape[0], dtype=np.int64), np.zeros(count, dtype=np.int64)]
    )
    return pairs, labels


def _two_means_split(values: np.ndarray, max_iterations: int = 100) -> np.ndarray:
    """1-D 2-means clustering; returns True for members of the lower cluster."""
    values = np.asarray(values, dtype=np.float64)
    low, high = float(values.min()), float(values.max())
    if np.isclose(low, high):
        return np.ones(values.shape[0], dtype=bool)
    centers = np.array([low, high])
    assignment = np.zeros(values.shape[0], dtype=np.int64)
    for _ in range(max_iterations):
        distances = np.abs(values[:, None] - centers[None, :])
        new_assignment = distances.argmin(axis=1)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for cluster in (0, 1):
            members = values[assignment == cluster]
            if members.size:
                centers[cluster] = members.mean()
    lower_cluster = int(np.argmin(centers))
    return assignment == lower_cluster


@dataclass
class AttackResult:
    """Outcome of a link-stealing attack evaluation."""

    auc_per_metric: Dict[str, float] = field(default_factory=dict)
    accuracy_per_metric: Dict[str, float] = field(default_factory=dict)
    num_pairs: int = 0
    num_positive: int = 0

    @property
    def mean_auc(self) -> float:
        """Average AUC over the evaluated distance metrics (paper's risk score)."""
        if not self.auc_per_metric:
            return float("nan")
        return float(np.mean(list(self.auc_per_metric.values())))

    @property
    def max_auc(self) -> float:
        """Worst-case (most successful) AUC over distance metrics."""
        if not self.auc_per_metric:
            return float("nan")
        return float(np.max(list(self.auc_per_metric.values())))

    def to_dict(self) -> Dict[str, float]:
        """Flatten the result for tabular reporting."""
        flat: Dict[str, float] = {"mean_auc": self.mean_auc, "max_auc": self.max_auc}
        for metric, value in self.auc_per_metric.items():
            flat[f"auc_{metric}"] = value
        return flat


class LinkStealingAttack:
    """Black-box link-stealing attack (Attack-0).

    Parameters
    ----------
    metrics:
        Distance metrics to evaluate (defaults to the paper's eight).
    num_negative:
        Number of unconnected pairs to sample; ``None`` balances with the
        number of edges.
    seed:
        Seed for the negative-pair sampling, making the evaluation
        deterministic for a fixed victim model.
    """

    def __init__(
        self,
        metrics: Optional[Sequence[str]] = None,
        num_negative: Optional[int] = None,
        seed: RandomState = 0,
    ) -> None:
        self.metrics = tuple(metrics) if metrics is not None else DEFAULT_METRICS
        unknown = [m for m in self.metrics if m not in DISTANCE_METRICS]
        if unknown:
            raise KeyError(f"unknown distance metrics: {unknown}")
        self.num_negative = num_negative
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Attack primitives
    # ------------------------------------------------------------------ #
    def scores(
        self, posteriors: np.ndarray, pairs: np.ndarray, metric: str
    ) -> np.ndarray:
        """Attack scores for ``pairs`` (higher = more likely connected)."""
        distances = pairwise_posterior_distance(posteriors, pairs, metric)
        return -distances

    def predict_edges(
        self, posteriors: np.ndarray, pairs: np.ndarray, metric: str = "cosine"
    ) -> np.ndarray:
        """Hard edge predictions via the unsupervised 2-means split."""
        distances = pairwise_posterior_distance(posteriors, pairs, metric)
        return _two_means_split(distances)

    def structural_scores(self, graph: Graph, pairs: np.ndarray) -> np.ndarray:
        """Jaccard structural baseline scores for ``pairs``.

        The classical unsupervised link-prediction baseline He et al. compare
        Attack-0 against: an attacker with partial *structural* knowledge
        scores a candidate pair by the Jaccard similarity of the endpoints'
        neighbourhoods.  Computed by CSR neighbour intersection on the
        graph's cached sparse view — only the candidate pairs are touched,
        never an ``(N, N)`` matrix.
        """
        from repro.graphs.similarity import jaccard_for_pairs

        return jaccard_for_pairs(graph.csr(), pairs)

    def evaluate_structural_baseline(
        self,
        graph: Graph,
        pairs: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
    ) -> float:
        """AUC of the structural Jaccard baseline on the attack pair set.

        With ``pairs``/``labels`` omitted, the same balanced candidate set as
        :meth:`evaluate` is sampled, so the number is directly comparable to
        the posterior-distance AUCs.  ``pairs`` and ``labels`` must be given
        together.
        """
        if (pairs is None) != (labels is None):
            raise ValueError("pass pairs and labels together, or neither")
        if pairs is None:
            pairs, labels = sample_attack_pairs(
                graph, num_negative=self.num_negative, rng=ensure_rng(self.seed)
            )
        return roc_auc_score(
            np.asarray(labels, dtype=np.int64), self.structural_scores(graph, pairs)
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate_posteriors(
        self,
        posteriors: np.ndarray,
        pairs: np.ndarray,
        labels: np.ndarray,
    ) -> AttackResult:
        """Evaluate the attack on explicit candidate pairs and labels."""
        labels = np.asarray(labels, dtype=np.int64)
        result = AttackResult(num_pairs=int(labels.size), num_positive=int(labels.sum()))
        for metric in self.metrics:
            scores = self.scores(posteriors, pairs, metric)
            result.auc_per_metric[metric] = roc_auc_score(labels, scores)
            predictions = self.predict_edges(posteriors, pairs, metric)
            result.accuracy_per_metric[metric] = float((predictions == labels.astype(bool)).mean())
        return result

    def evaluate(self, victim_model, graph: Graph) -> AttackResult:
        """Query ``victim_model`` on ``graph`` and evaluate edge leakage.

        The victim is queried through its public prediction interface
        (``predict_proba``), matching the black-box threat model.
        """
        posteriors = victim_model.predict_proba(graph.features, graph.adjacency)
        pairs, labels = sample_attack_pairs(
            graph, num_negative=self.num_negative, rng=ensure_rng(self.seed)
        )
        return self.evaluate_posteriors(posteriors, pairs, labels)
