"""LinkTeller influence-analysis attack (Wu et al., S&P 2022).

The paper's evaluation uses the cheaper Attack-0; LinkTeller is implemented
here because it motivates the edge-DP baselines (EdgeRand / LapGraph come
from the LinkTeller paper) and it enables extension experiments comparing the
two attack families under the same defences.

The attack perturbs the features of a candidate "source" node and measures
how much the victim's prediction for a "target" node changes; a large
influence indicates an edge.  It requires two queries per probe instead of
one, i.e. a stronger attacker than Attack-0.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.privacy.auc import roc_auc_score
from repro.utils.rng import RandomState, ensure_rng


class LinkTellerAttack:
    """Influence-based edge inference.

    Parameters
    ----------
    perturbation:
        Relative magnitude Δ of the feature perturbation applied to the probed
        node (the attack estimates ∂posterior_target / ∂feature_source).
    """

    def __init__(self, perturbation: float = 1e-3) -> None:
        if perturbation <= 0:
            raise ValueError("perturbation must be positive")
        self.perturbation = perturbation

    def influence_score(
        self,
        victim_model,
        graph: Graph,
        source: int,
        target: int,
        adjacency: Optional[np.ndarray] = None,
    ) -> float:
        """Norm of the change in the target posterior when perturbing the source."""
        structure = graph.adjacency if adjacency is None else adjacency
        baseline = victim_model.predict_proba(graph.features, structure)
        perturbed_features = graph.features.copy()
        perturbed_features[source] = perturbed_features[source] * (1.0 + self.perturbation)
        perturbed = victim_model.predict_proba(perturbed_features, structure)
        return float(np.linalg.norm(perturbed[target] - baseline[target], ord=1))

    def evaluate_pairs(
        self,
        victim_model,
        graph: Graph,
        pairs: np.ndarray,
        labels: np.ndarray,
    ) -> float:
        """AUC of the influence scores on explicit candidate pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        scores = np.array(
            [self.influence_score(victim_model, graph, int(i), int(j)) for i, j in pairs]
        )
        return roc_auc_score(labels, scores)

    def evaluate(
        self,
        victim_model,
        graph: Graph,
        num_pairs: int = 100,
        rng: RandomState = 0,
    ) -> float:
        """Evaluate on a balanced sample of ``num_pairs`` edges and non-edges.

        LinkTeller needs one model query per probed pair, so the evaluation
        subsamples pairs instead of using every edge.
        """
        generator = ensure_rng(rng)
        edges = graph.edge_list()
        if edges.shape[0] == 0:
            raise ValueError("graph has no edges to attack")
        half = max(1, num_pairs // 2)
        chosen = generator.choice(edges.shape[0], size=min(half, edges.shape[0]), replace=False)
        positive = edges[chosen]
        negative = graph.non_edge_sample(positive.shape[0], generator)
        pairs = np.concatenate([positive, negative], axis=0)
        labels = np.concatenate(
            [np.ones(positive.shape[0], dtype=np.int64), np.zeros(negative.shape[0], dtype=np.int64)]
        )
        return self.evaluate_pairs(victim_model, graph, pairs, labels)
