"""Edge-inference attacks against trained GNNs."""

from repro.privacy.attacks.link_stealing import (
    LinkStealingAttack,
    AttackResult,
    sample_attack_pairs,
)
from repro.privacy.attacks.linkteller import LinkTellerAttack

__all__ = ["LinkStealingAttack", "AttackResult", "sample_attack_pairs", "LinkTellerAttack"]
