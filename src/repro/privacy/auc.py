"""ROC-AUC computation (no scikit-learn dependency).

The attack evaluation of the paper reports AUC of the link-stealing scores
against the ground-truth edge labels.  AUC is computed with the rank-sum
(Mann–Whitney U) formulation, which handles ties by mid-ranking.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import stats


def roc_auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve.

    Parameters
    ----------
    labels:
        Binary ground-truth labels (1 = positive class, i.e. "edge exists").
    scores:
        Real-valued scores where *larger* means "more likely positive".
    """
    labels = np.asarray(labels).astype(np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    if labels.ndim != 1:
        raise ValueError("labels and scores must be 1-dimensional")
    positives = int(np.count_nonzero(labels == 1))
    negatives = int(np.count_nonzero(labels == 0))
    if positives == 0 or negatives == 0:
        raise ValueError("AUC requires at least one positive and one negative sample")
    ranks = stats.rankdata(scores)
    rank_sum = float(ranks[labels == 1].sum())
    u_statistic = rank_sum - positives * (positives + 1) / 2.0
    return u_statistic / (positives * negatives)


def roc_curve(
    labels: np.ndarray, scores: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (false_positive_rate, true_positive_rate, thresholds).

    Thresholds are the unique score values in decreasing order; a point of the
    curve corresponds to predicting positive for ``score >= threshold``.
    """
    labels = np.asarray(labels).astype(np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape or labels.ndim != 1:
        raise ValueError("labels and scores must be 1-dimensional and aligned")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]

    distinct = np.nonzero(np.diff(sorted_scores))[0]
    threshold_idx = np.concatenate([distinct, [labels.size - 1]])

    true_positive = np.cumsum(sorted_labels)[threshold_idx]
    false_positive = (threshold_idx + 1) - true_positive

    positives = max(int(labels.sum()), 1)
    negatives = max(int((1 - labels).sum()), 1)
    tpr = np.concatenate([[0.0], true_positive / positives])
    fpr = np.concatenate([[0.0], false_positive / negatives])
    thresholds = np.concatenate([[np.inf], sorted_scores[threshold_idx]])
    return fpr, tpr, thresholds
