"""Edge privacy: link-stealing attacks, risk metrics and edge-DP defences.

The attacker model follows He et al. (USENIX Security 2021) Attack-0: the
adversary queries the victim GNN once per node, computes a distance between
the posteriors of a candidate node pair, and predicts "connected" when the
distance is small.  The privacy risk of edges (Definition 2 of the paper) is
the separation between the distance distributions of connected and
unconnected pairs; the operational risk measure in the experiments is the
attack AUC averaged over eight distance metrics.
"""

from repro.privacy.distances import (
    DISTANCE_METRICS,
    pairwise_posterior_distance,
    distance_matrix,
)
from repro.privacy.auc import roc_auc_score, roc_curve
from repro.privacy.attacks.link_stealing import (
    LinkStealingAttack,
    AttackResult,
    sample_attack_pairs,
)
from repro.privacy.attacks.linkteller import LinkTellerAttack
from repro.privacy.risk import (
    edge_privacy_risk,
    normalized_edge_privacy_risk,
    embedding_sensitivity,
    risk_report,
)
from repro.privacy.dp import edge_rand, lap_graph, dp_flip_probability

__all__ = [
    "DISTANCE_METRICS",
    "pairwise_posterior_distance",
    "distance_matrix",
    "roc_auc_score",
    "roc_curve",
    "LinkStealingAttack",
    "AttackResult",
    "sample_attack_pairs",
    "LinkTellerAttack",
    "edge_privacy_risk",
    "normalized_edge_privacy_risk",
    "embedding_sensitivity",
    "risk_report",
    "edge_rand",
    "lap_graph",
    "dp_flip_probability",
]
