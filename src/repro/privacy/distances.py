"""The eight posterior-distance metrics used by the link-stealing attack.

He et al. (and the paper, Section VII-A) evaluate the attack with Cosine,
Euclidean, Correlation, Chebyshev, Braycurtis, Canberra, Cityblock and
Squared-Euclidean distances between the victim model's posteriors for the two
nodes of a candidate pair.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

DistanceFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _cosine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    dot = np.sum(a * b, axis=1)
    norms = np.linalg.norm(a, axis=1) * np.linalg.norm(b, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        similarity = np.where(norms > 0, dot / norms, 0.0)
    return 1.0 - similarity


def _euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.linalg.norm(a - b, axis=1)


def _sqeuclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.sum((a - b) ** 2, axis=1)


def _correlation(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a_centered = a - a.mean(axis=1, keepdims=True)
    b_centered = b - b.mean(axis=1, keepdims=True)
    dot = np.sum(a_centered * b_centered, axis=1)
    norms = np.linalg.norm(a_centered, axis=1) * np.linalg.norm(b_centered, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = np.where(norms > 0, dot / norms, 0.0)
    return 1.0 - corr


def _chebyshev(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.max(np.abs(a - b), axis=1)


def _braycurtis(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    numerator = np.sum(np.abs(a - b), axis=1)
    denominator = np.sum(np.abs(a + b), axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(denominator > 0, numerator / denominator, 0.0)


def _canberra(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    numerator = np.abs(a - b)
    denominator = np.abs(a) + np.abs(b)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(denominator > 0, numerator / denominator, 0.0)
    return np.sum(terms, axis=1)


def _cityblock(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.sum(np.abs(a - b), axis=1)


DISTANCE_METRICS: Dict[str, DistanceFunction] = {
    "cosine": _cosine,
    "euclidean": _euclidean,
    "correlation": _correlation,
    "chebyshev": _chebyshev,
    "braycurtis": _braycurtis,
    "canberra": _canberra,
    "cityblock": _cityblock,
    "sqeuclidean": _sqeuclidean,
}
"""Name → vectorised distance function over row-aligned ``(M, C)`` arrays."""


def pairwise_posterior_distance(
    posteriors: np.ndarray, pairs: np.ndarray, metric: str = "cosine"
) -> np.ndarray:
    """Distance between the posterior rows of each node pair.

    Parameters
    ----------
    posteriors:
        ``(N, C)`` victim-model outputs.
    pairs:
        ``(M, 2)`` node index pairs.
    metric:
        One of :data:`DISTANCE_METRICS`.
    """
    if metric not in DISTANCE_METRICS:
        raise KeyError(
            f"unknown distance metric {metric!r}; available: {', '.join(sorted(DISTANCE_METRICS))}"
        )
    posteriors = np.asarray(posteriors, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.zeros(0)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must have shape (M, 2)")
    if pairs.min() < 0 or pairs.max() >= posteriors.shape[0]:
        raise ValueError("pair indices out of range for posterior matrix")
    return DISTANCE_METRICS[metric](posteriors[pairs[:, 0]], posteriors[pairs[:, 1]])


def distance_matrix(
    posteriors: np.ndarray, metric: str = "cosine", block_size: int = 1024
) -> np.ndarray:
    """Full ``(N, N)`` pairwise distance matrix (used by small examples only).

    The attack pipeline never calls this — candidate pairs are scored
    directly through :func:`pairwise_posterior_distance`, which touches only
    the sampled pairs.  For callers that do want the full matrix, rows are
    produced in blocks of ``block_size`` sources against all targets, so peak
    scratch memory is ``O(block_size · N · C)`` instead of the ``(N², 2)``
    all-pairs index expansion this function used to materialise.
    """
    posteriors = np.asarray(posteriors, dtype=np.float64)
    if posteriors.ndim != 2:
        raise ValueError("posteriors must be 2-dimensional")
    if metric not in DISTANCE_METRICS:
        raise KeyError(
            f"unknown distance metric {metric!r}; available: {', '.join(sorted(DISTANCE_METRICS))}"
        )
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    function = DISTANCE_METRICS[metric]
    n = posteriors.shape[0]
    out = np.empty((n, n), dtype=np.float64)
    targets = np.arange(n, dtype=np.int64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = stop - start
        # Row-aligned (block · N, C) views: each source repeated against all
        # targets; identical arithmetic to the pair-based path.
        sources = np.repeat(np.arange(start, stop, dtype=np.int64), n)
        out[start:stop] = function(
            posteriors[sources], posteriors[np.tile(targets, block)]
        ).reshape(block, n)
    return out
