"""Correlation analysis between fairness and privacy influences (Table II).

The paper motivates its design by showing that the Pearson correlation
between ``I_fbias`` and ``I_frisk`` over training nodes is weak or negative
(|r| < 0.3 counts as "inconformity"), which is why PPFR handles privacy in
the *data space* (edge perturbation) rather than the *weight space* (QCLP).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def pearson_correlation(first: np.ndarray, second: np.ndarray) -> float:
    """Pearson correlation coefficient between two influence vectors."""
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise ValueError("influence vectors must have the same shape")
    if first.size < 2:
        raise ValueError("need at least two samples for a correlation")
    first_std = first.std()
    second_std = second.std()
    if first_std == 0 or second_std == 0:
        return 0.0
    centered_first = first - first.mean()
    centered_second = second - second.mean()
    return float((centered_first @ centered_second) / (first.size * first_std * second_std))


def influence_correlation_table(
    influences: Dict[str, Dict[str, np.ndarray]]
) -> Dict[str, Dict[str, float]]:
    """Build a Table-II-style nested mapping ``dataset -> model -> r``.

    ``influences[dataset][model]`` must contain a dict with ``"bias"`` and
    ``"risk"`` influence vectors (e.g. from
    :meth:`repro.influence.InfluenceEstimator.compute_all`).
    """
    table: Dict[str, Dict[str, float]] = {}
    for dataset, per_model in influences.items():
        table[dataset] = {}
        for model_name, vectors in per_model.items():
            table[dataset][model_name] = pearson_correlation(
                vectors["bias"], vectors["risk"]
            )
    return table


def is_conforming(correlation: float, threshold: float = 0.3) -> bool:
    """Whether two influence directions agree strongly enough to share weights.

    The paper treats ``r < 0.3`` as inconformity (citing the standard
    correlation-strength guideline), justifying why ``I_frisk`` is *not* added
    to the QCLP.
    """
    return correlation >= threshold
