"""Gradients of losses and interested functions with respect to parameters.

Every gradient is returned as a flat 1-D vector aligned with
``parameters_to_vector(model.parameters())`` so the Hessian / CG machinery can
treat the model as a single parameter vector θ.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.fairness.inform import bias_tensor
from repro.gnn.models import GNNModel
from repro.graphs.graph import Graph
from repro.graphs.laplacian import laplacian
from repro.graphs.similarity import jaccard_similarity
from repro.nn.losses import cross_entropy
from repro.nn.parameters import gradients_to_vector, zero_gradients
from repro.nn.tensor import Tensor
from repro.utils.rng import RandomState, ensure_rng


def _forward_logits(model: GNNModel, graph: Graph, adjacency: Optional[np.ndarray]) -> Tensor:
    """Deterministic (eval-mode) differentiable forward pass."""
    was_training = model.training
    model.eval()  # disable dropout: influence functions are defined at θ*, not on noisy passes
    try:
        structure = graph.adjacency if adjacency is None else adjacency
        logits = model(graph.features, structure)
    finally:
        if was_training:
            model.train()
    return logits


def _collect_gradient(model: GNNModel, scalar: Tensor) -> np.ndarray:
    zero_gradients(model.parameters())
    scalar.backward()
    gradient = gradients_to_vector(model.parameters())
    zero_gradients(model.parameters())
    return gradient


def training_loss_gradient(
    model: GNNModel,
    graph: Graph,
    indices: Optional[np.ndarray] = None,
    adjacency: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Gradient of the mean training cross-entropy at the current parameters."""
    if graph.labels is None:
        raise ValueError("graph has no labels")
    indices = graph.train_indices() if indices is None else np.asarray(indices, dtype=np.int64)
    logits = _forward_logits(model, graph, adjacency)
    loss = cross_entropy(logits[indices], graph.labels[indices])
    return _collect_gradient(model, loss)


def per_node_loss_gradients(
    model: GNNModel,
    graph: Graph,
    indices: Optional[np.ndarray] = None,
    adjacency: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Gradient of each individual node's loss ``∇_θ L(ŷ_v, y_v; θ)``.

    One backward pass per node; the graph forward is recomputed each time so
    the autodiff tape stays small.
    """
    if graph.labels is None:
        raise ValueError("graph has no labels")
    indices = graph.train_indices() if indices is None else np.asarray(indices, dtype=np.int64)
    gradients: List[np.ndarray] = []
    for node in indices:
        logits = _forward_logits(model, graph, adjacency)
        loss = cross_entropy(logits[np.array([node])], graph.labels[np.array([node])])
        gradients.append(_collect_gradient(model, loss))
    return gradients


def function_gradient(
    model: GNNModel,
    graph: Graph,
    function: Callable[[Tensor, Graph], Tensor],
    adjacency: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Gradient ``∇_θ f(θ)`` of any differentiable function of the logits."""
    logits = _forward_logits(model, graph, adjacency)
    value = function(logits, graph)
    return _collect_gradient(model, value)


def bias_gradient(
    model: GNNModel,
    graph: Graph,
    similarity: Optional[np.ndarray] = None,
    adjacency: Optional[np.ndarray] = None,
    normalize: bool = True,
) -> np.ndarray:
    """Gradient of the InFoRM bias ``f_bias(θ) = Tr(Yᵀ L_S Y)``."""
    sim = jaccard_similarity(graph.adjacency) if similarity is None else np.asarray(similarity)
    lap = laplacian(sim)
    scale = 1.0 / max(int(np.count_nonzero(sim)), 1) if normalize else 1.0

    def fairness_term(logits: Tensor, _graph: Graph) -> Tensor:
        return bias_tensor(logits.softmax(axis=1), lap, scale=scale)

    return function_gradient(model, graph, fairness_term, adjacency=adjacency)


def risk_gradient(
    model: GNNModel,
    graph: Graph,
    num_unconnected: Optional[int] = None,
    adjacency: Optional[np.ndarray] = None,
    rng: RandomState = 0,
    eps: float = 1e-12,
) -> np.ndarray:
    """Gradient of the normalised edge privacy risk ``f_risk(θ)``.

    ``f_risk(θ) = 2‖mean(d0) − mean(d1)‖ / (var(d0) + var(d1))`` with
    Euclidean posterior distances (the differentiable instantiation named in
    Section VI-B1 of the paper).  Unconnected pairs are subsampled to
    ``num_unconnected`` (defaults to the number of edges) for tractability.
    """
    generator = ensure_rng(rng)
    connected = graph.edge_list()
    if connected.shape[0] == 0:
        raise ValueError("graph has no edges")
    count = connected.shape[0] if num_unconnected is None else int(num_unconnected)
    unconnected = graph.non_edge_sample(count, generator)

    def risk_term(logits: Tensor, _graph: Graph) -> Tensor:
        probabilities = logits.softmax(axis=1)

        def pair_distances(pairs: np.ndarray) -> Tensor:
            left = probabilities[pairs[:, 0]]
            right = probabilities[pairs[:, 1]]
            diff = left - right
            return ((diff * diff).sum(axis=1) + eps) ** 0.5

        d1 = pair_distances(connected)
        d0 = pair_distances(unconnected)
        separation = ((d0.mean() - d1.mean()) ** 2 + eps) ** 0.5
        d0_centered = d0 - d0.mean().detach()
        d1_centered = d1 - d1.mean().detach()
        spread = (d0_centered * d0_centered).mean() + (d1_centered * d1_centered).mean()
        return separation * 2.0 / (spread + eps)

    return function_gradient(model, graph, risk_term, adjacency=adjacency)
