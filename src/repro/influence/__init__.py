"""Influence functions on GNN training nodes (Section VI-A of the paper).

The fairness-aware reweighting module needs, for every labelled node ``v``,
the first-order effect of down-weighting ``v`` on

* the model utility (training loss)  — ``I_futil(w_v)``,
* the prediction bias ``f_bias``      — ``I_fbias(w_v)``,
* the edge privacy risk ``f_risk``    — ``I_frisk(w_v)``,

computed as ``I_f(w_v) = −∇_θ f(θ*)ᵀ H⁻¹ ∇_θ L(v; θ*)`` (Eqs. 8–12).  This
subpackage provides per-node loss gradients, Hessian-vector products, a
conjugate-gradient ``H⁻¹v`` solver, a dense Hessian for small models (used by
tests), and the Pearson-correlation analysis behind Table II.
"""

from repro.influence.gradients import (
    training_loss_gradient,
    per_node_loss_gradients,
    function_gradient,
    bias_gradient,
    risk_gradient,
)
from repro.influence.hessian import (
    hessian_vector_product,
    conjugate_gradient_solve,
    dense_hessian,
    inverse_hvp,
)
from repro.influence.functions import InfluenceEstimator, InfluenceConfig, InfluenceScores
from repro.influence.correlation import pearson_correlation, influence_correlation_table

__all__ = [
    "training_loss_gradient",
    "per_node_loss_gradients",
    "function_gradient",
    "bias_gradient",
    "risk_gradient",
    "hessian_vector_product",
    "conjugate_gradient_solve",
    "dense_hessian",
    "inverse_hvp",
    "InfluenceEstimator",
    "InfluenceConfig",
    "InfluenceScores",
    "pearson_correlation",
    "influence_correlation_table",
]
