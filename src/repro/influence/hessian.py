"""Hessian-vector products and ``H⁻¹v`` solvers.

The influence formula needs ``H⁻¹ ∇_θ f`` where ``H`` is the Hessian of the
mean training loss at the trained parameters.  Three tools are provided:

* :func:`hessian_vector_product` — central finite difference of the loss
  gradient, which avoids second-order autodiff,
* :func:`conjugate_gradient_solve` — damped CG solver using only HVPs (the
  scalable path used in the experiments, following Koh & Liang 2017),
* :func:`dense_hessian` — explicit Hessian for small models, used by tests to
  validate the CG estimates.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.gnn.models import GNNModel
from repro.graphs.graph import Graph
from repro.influence.gradients import training_loss_gradient
from repro.nn.parameters import parameters_to_vector, vector_to_parameters

GradientFunction = Callable[[np.ndarray], np.ndarray]
"""Maps a parameter vector θ to the gradient ∇_θ L(θ) as a flat vector."""


def make_loss_gradient_function(
    model: GNNModel,
    graph: Graph,
    indices: Optional[np.ndarray] = None,
    adjacency: Optional[np.ndarray] = None,
) -> GradientFunction:
    """Return ``θ ↦ ∇_θ L(θ)`` for the mean training loss of ``model``.

    The function temporarily writes θ into the model, evaluates the gradient
    and restores the original parameters, so it is side-effect free.
    """
    original = parameters_to_vector(model.parameters())

    def gradient_at(theta: np.ndarray) -> np.ndarray:
        vector_to_parameters(theta, model.parameters())
        try:
            return training_loss_gradient(model, graph, indices=indices, adjacency=adjacency)
        finally:
            vector_to_parameters(original, model.parameters())

    return gradient_at


def hessian_vector_product(
    gradient_function: GradientFunction,
    theta: np.ndarray,
    vector: np.ndarray,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central-difference Hessian-vector product ``H(θ) v``.

    ``H v ≈ (∇L(θ + εv̂) − ∇L(θ − εv̂)) / (2ε)`` with the perturbation scaled
    to the norm of ``v`` for numerical stability.
    """
    theta = np.asarray(theta, dtype=np.float64)
    vector = np.asarray(vector, dtype=np.float64)
    norm = np.linalg.norm(vector)
    if norm == 0:
        return np.zeros_like(vector)
    unit = vector / norm
    step = eps
    plus = gradient_function(theta + step * unit)
    minus = gradient_function(theta - step * unit)
    return (plus - minus) / (2.0 * step) * norm


def conjugate_gradient_solve(
    hvp: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    damping: float = 0.01,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> np.ndarray:
    """Solve ``(H + damping·I) x = rhs`` with conjugate gradients.

    ``damping`` regularises the (possibly indefinite at a non-exact optimum)
    Hessian, the standard practice for influence functions on neural models.
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    if damping < 0:
        raise ValueError("damping must be non-negative")

    def operator(x: np.ndarray) -> np.ndarray:
        return hvp(x) + damping * x

    x = np.zeros_like(rhs)
    residual = rhs - operator(x)
    direction = residual.copy()
    residual_norm_sq = float(residual @ residual)
    threshold = tolerance * max(float(np.linalg.norm(rhs)), 1e-12)

    for _ in range(max_iterations):
        if np.sqrt(residual_norm_sq) <= threshold:
            break
        candidate = operator(direction)
        curvature = float(direction @ candidate)
        if curvature <= 0:
            # Negative curvature: stop with the current (damped) solution, as
            # recommended for truncated-Newton style solvers.
            break
        alpha = residual_norm_sq / curvature
        x = x + alpha * direction
        residual = residual - alpha * candidate
        new_norm_sq = float(residual @ residual)
        direction = residual + (new_norm_sq / residual_norm_sq) * direction
        residual_norm_sq = new_norm_sq
    return x


def inverse_hvp(
    model: GNNModel,
    graph: Graph,
    vector: np.ndarray,
    indices: Optional[np.ndarray] = None,
    adjacency: Optional[np.ndarray] = None,
    damping: float = 0.01,
    max_iterations: int = 50,
    eps: float = 1e-4,
) -> np.ndarray:
    """Compute ``(H + damping I)⁻¹ vector`` for the model's training loss."""
    gradient_function = make_loss_gradient_function(
        model, graph, indices=indices, adjacency=adjacency
    )
    theta = parameters_to_vector(model.parameters())

    def hvp(v: np.ndarray) -> np.ndarray:
        return hessian_vector_product(gradient_function, theta, v, eps=eps)

    return conjugate_gradient_solve(
        hvp, vector, damping=damping, max_iterations=max_iterations
    )


def dense_hessian(
    gradient_function: GradientFunction,
    theta: np.ndarray,
    eps: float = 1e-4,
) -> np.ndarray:
    """Explicit Hessian via finite differences of the gradient.

    Cost is one gradient evaluation per parameter — only suitable for the
    small models used in unit tests.
    """
    theta = np.asarray(theta, dtype=np.float64)
    dim = theta.shape[0]
    hessian = np.zeros((dim, dim))
    for index in range(dim):
        direction = np.zeros(dim)
        direction[index] = 1.0
        plus = gradient_function(theta + eps * direction)
        minus = gradient_function(theta - eps * direction)
        hessian[:, index] = (plus - minus) / (2.0 * eps)
    # Symmetrise to remove finite-difference noise.
    return 0.5 * (hessian + hessian.T)
